// Protocol-conformance suite: contracts every Algorithm in the registry
// (and key wrappers) must satisfy, parameterized over all of them.
//
//   * make_node never returns null, for any id;
//   * behaviour is a pure function of (id, rng, feedback history):
//     identical inputs give identical action sequences;
//   * fresh nodes are contending (they just joined the contention);
//   * protocols tolerate arbitrary feedback without crashing;
//   * capability flags match the registry spec.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/registry.hpp"
#include "core/fading_cr.hpp"
#include "ext/faults.hpp"
#include "ext/interleave.hpp"
#include "ext/staggered.hpp"
#include "sim/subset.hpp"

namespace fcr {
namespace {

/// Builders for the wrappers, so they get conformance coverage too.
std::unique_ptr<Algorithm> make_conformance_subject(const std::string& key) {
  if (key == "wrap-interleave") {
    return std::make_unique<InterleavedAlgorithm>(
        std::make_shared<FadingContentionResolution>(),
        std::make_shared<FadingContentionResolution>(0.1));
  }
  if (key == "wrap-staggered") {
    return std::make_unique<StaggeredActivation>(
        std::make_shared<FadingContentionResolution>(), linear_activation(2));
  }
  if (key == "wrap-crash") {
    return std::make_unique<CrashFaults>(
        std::make_shared<FadingContentionResolution>(), 0.05);
  }
  if (key == "wrap-subset") {
    return std::make_unique<ActiveSubsetAlgorithm>(
        std::make_shared<FadingContentionResolution>(),
        std::vector<NodeId>{0, 2, 5});
  }
  return make_algorithm(key, 64);
}

std::vector<std::string> conformance_keys() {
  std::vector<std::string> keys;
  for (const AlgorithmSpec& spec : algorithm_catalog()) keys.push_back(spec.key);
  keys.insert(keys.end(), {"wrap-interleave", "wrap-staggered", "wrap-crash",
                           "wrap-subset"});
  return keys;
}

class Conformance : public ::testing::TestWithParam<std::string> {};

TEST_P(Conformance, MakeNodeNeverNull) {
  const auto algo = make_conformance_subject(GetParam());
  for (const NodeId id : {0u, 1u, 63u, 1000000u}) {
    EXPECT_NE(algo->make_node(id, Rng(id)), nullptr) << id;
  }
}

TEST_P(Conformance, ActionsAreDeterministicGivenInputs) {
  const auto algo = make_conformance_subject(GetParam());
  for (const NodeId id : {0u, 7u}) {
    const auto a = algo->make_node(id, Rng(42));
    const auto b = algo->make_node(id, Rng(42));
    for (std::uint64_t round = 1; round <= 300; ++round) {
      ASSERT_EQ(a->on_round_begin(round), b->on_round_begin(round))
          << "id " << id << " round " << round;
      Feedback f;
      f.received = round % 7 == 0;
      f.sender = f.received ? 3 : kInvalidNode;
      a->on_round_end(f);
      b->on_round_end(f);
      ASSERT_EQ(a->is_contending(), b->is_contending());
    }
  }
}

TEST_P(Conformance, ToleratesArbitraryFeedback) {
  const auto algo = make_conformance_subject(GetParam());
  const auto node = algo->make_node(1, Rng(9));
  Rng rng(10);
  for (std::uint64_t round = 1; round <= 500; ++round) {
    node->on_round_begin(round);
    Feedback f;
    f.transmitted = rng.bernoulli(0.3);
    f.received = !f.transmitted && rng.bernoulli(0.3);
    f.sender = f.received ? static_cast<NodeId>(rng.uniform_int(64)) : kInvalidNode;
    f.observation = f.received ? RadioObservation::kMessage
                    : rng.bernoulli(0.2) ? RadioObservation::kCollision
                                         : RadioObservation::kSilence;
    EXPECT_NO_THROW(node->on_round_end(f));
  }
  SUCCEED();
}

TEST_P(Conformance, CapabilityFlagsMatchSpecWhereRegistered) {
  const std::string key = GetParam();
  if (key.rfind("wrap-", 0) == 0) return;  // wrappers delegate; tested elsewhere
  const AlgorithmSpec& spec = algorithm_spec(key);
  const auto algo = make_conformance_subject(key);
  EXPECT_EQ(algo->uses_size_bound(), spec.needs_size_bound);
  EXPECT_EQ(algo->requires_collision_detection(),
            spec.needs_collision_detection);
  EXPECT_FALSE(algo->name().empty());
}

std::string conformance_name(const ::testing::TestParamInfo<std::string>& pi) {
  std::string s = pi.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Conformance,
                         ::testing::ValuesIn(conformance_keys()),
                         conformance_name);

}  // namespace
}  // namespace fcr
