// Deployment and generator tests: link statistics against brute force,
// normalization semantics, and the contract of every generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "deploy/deployment.hpp"
#include "deploy/generators.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

double brute_min_link(const std::vector<Vec2>& pts) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::min(best, dist(pts[i], pts[j]));
    }
  }
  return best;
}

double brute_max_link(const std::vector<Vec2>& pts) {
  double best = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::max(best, dist(pts[i], pts[j]));
    }
  }
  return best;
}

TEST(Deployment, LinkStatisticsMatchBruteForce) {
  Rng rng(100);
  for (int trial = 0; trial < 10; ++trial) {
    const Deployment dep = uniform_square(60, 25.0, rng);
    EXPECT_NEAR(dep.min_link(), brute_min_link(dep.positions()), 1e-9);
    EXPECT_NEAR(dep.max_link(), brute_max_link(dep.positions()), 1e-9);
  }
}

TEST(Deployment, SingleNodeHasTrivialStatistics) {
  const Deployment dep({{3.0, 4.0}});
  EXPECT_EQ(dep.size(), 1u);
  EXPECT_DOUBLE_EQ(dep.link_ratio(), 1.0);
  EXPECT_EQ(dep.link_class_count(), 1u);
  EXPECT_TRUE(dep.is_normalized());
}

TEST(Deployment, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(Deployment({}), std::invalid_argument);
  EXPECT_THROW(Deployment({{1, 1}, {1, 1}}), std::invalid_argument);
}

TEST(Deployment, PositionAccessIsBoundsChecked) {
  const Deployment dep({{0, 0}, {1, 0}});
  EXPECT_EQ(dep.position(1), (Vec2{1, 0}));
  EXPECT_THROW(dep.position(2), std::invalid_argument);
}

TEST(Deployment, NormalizationSetsShortestLinkToOne) {
  const Deployment dep({{0, 0}, {0, 0.25}, {0, 10.0}});
  EXPECT_FALSE(dep.is_normalized());
  const Deployment norm = dep.normalized();
  EXPECT_TRUE(norm.is_normalized());
  EXPECT_NEAR(norm.min_link(), 1.0, 1e-12);
  // The ratio R is scale invariant.
  EXPECT_NEAR(norm.link_ratio(), dep.link_ratio(), 1e-9);
}

TEST(Deployment, LinkRatioIsScaleInvariant) {
  Rng rng(101);
  const Deployment dep = uniform_square(40, 10.0, rng);
  const Deployment big = dep.scaled(1000.0);
  EXPECT_NEAR(big.link_ratio(), dep.link_ratio(), 1e-6);
  EXPECT_THROW(dep.scaled(0.0), std::invalid_argument);
}

TEST(Deployment, LinkClassCountCoversRatio) {
  // R = 8 exactly: distances 1 and 8 -> classes 0..3 (floor(log2 8) = 3).
  const Deployment dep({{0, 0}, {1, 0}, {9, 0}});
  EXPECT_NEAR(dep.link_ratio(), 9.0, 1e-12);
  EXPECT_EQ(dep.link_class_count(),
            static_cast<std::size_t>(std::floor(std::log2(9.0))) + 1);
}

// ----------------------------------------------------------------generators

TEST(Generators, UniformSquareBounds) {
  Rng rng(102);
  const Deployment dep = uniform_square(500, 42.0, rng);
  EXPECT_EQ(dep.size(), 500u);
  for (const Vec2 p : dep.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 42.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 42.0);
  }
}

TEST(Generators, UniformDiskBounds) {
  Rng rng(103);
  const Deployment dep = uniform_disk(500, 7.0, rng);
  for (const Vec2 p : dep.positions()) {
    EXPECT_LE(p.norm(), 7.0 + 1e-12);
  }
}

TEST(Generators, UniformDiskIsAreaUniform) {
  // Half the points should fall within radius R/sqrt(2).
  Rng rng(104);
  const Deployment dep = uniform_disk(20000, 1.0, rng);
  std::size_t inner = 0;
  for (const Vec2 p : dep.positions()) {
    if (p.norm() <= 1.0 / std::sqrt(2.0)) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / 20000.0, 0.5, 0.02);
}

TEST(Generators, PerturbedGridShapeAndSpacing) {
  Rng rng(105);
  const Deployment dep = perturbed_grid(8, 6, 5.0, 1.0, rng);
  EXPECT_EQ(dep.size(), 48u);
  // Jitter 1.0 < spacing/2, so the minimum link stays >= spacing - 2*jitter.
  EXPECT_GE(dep.min_link(), 5.0 - 2.0 - 1e-12);
  EXPECT_THROW(perturbed_grid(2, 2, 5.0, 2.5, rng), std::invalid_argument);
}

TEST(Generators, ExponentialChainHitsExactSpan) {
  Rng rng(106);
  for (const double span : {64.0, 1024.0, 1048576.0}) {
    const Deployment dep = exponential_chain(32, span, rng);
    EXPECT_EQ(dep.size(), 32u);
    EXPECT_NEAR(dep.min_link(), 1.0, 1e-6);
    EXPECT_NEAR(dep.link_ratio(), span, span * 1e-6);
  }
}

TEST(Generators, ExponentialChainRejectsTightSpan) {
  Rng rng(107);
  EXPECT_THROW(exponential_chain(32, 16.0, rng), std::invalid_argument);
  EXPECT_THROW(exponential_chain(1, 10.0, rng), std::invalid_argument);
}

TEST(Generators, ExponentialChainUniformWhenSpanEqualsGaps) {
  Rng rng(108);
  // span = n - 1 forces q = 1: unit spacing.
  const Deployment dep = exponential_chain(10, 9.0, rng);
  EXPECT_NEAR(dep.link_ratio(), 9.0, 1e-6);
  EXPECT_NEAR(dep.min_link(), 1.0, 1e-6);
}

TEST(Generators, TwoClustersSeparationAndSizes) {
  Rng rng(109);
  const Deployment dep = two_clusters(21, 100.0, 2.0, rng);
  EXPECT_EQ(dep.size(), 21u);
  // Count nodes near each center.
  std::size_t near_a = 0, near_b = 0;
  for (const Vec2 p : dep.positions()) {
    if (dist(p, {0, 0}) <= 2.0 + 1e-9) ++near_a;
    if (dist(p, {100.0, 0}) <= 2.0 + 1e-9) ++near_b;
  }
  EXPECT_EQ(near_a, 11u);
  EXPECT_EQ(near_b, 10u);
  EXPECT_THROW(two_clusters(10, 3.0, 2.0, rng), std::invalid_argument);
}

TEST(Generators, RingRadiusAndCount) {
  Rng rng(110);
  const Deployment dep = ring(24, 10.0, 0.01, rng);
  EXPECT_EQ(dep.size(), 24u);
  for (const Vec2 p : dep.positions()) {
    EXPECT_NEAR(p.norm(), 10.0, 1e-9);
  }
}

TEST(Generators, ThomasClustersCount) {
  Rng rng(111);
  const Deployment dep = thomas_clusters(100, 5, 1.0, 100.0, rng);
  EXPECT_EQ(dep.size(), 100u);
}

TEST(Generators, SinglePair) {
  const Deployment dep = single_pair(3.5);
  EXPECT_EQ(dep.size(), 2u);
  EXPECT_DOUBLE_EQ(dep.min_link(), 3.5);
  EXPECT_DOUBLE_EQ(dep.link_ratio(), 1.0);
  EXPECT_THROW(single_pair(0.0), std::invalid_argument);
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(42), b(42);
  const Deployment da = uniform_square(50, 10.0, a);
  const Deployment db = uniform_square(50, 10.0, b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(da.positions()[i], db.positions()[i]);
  }
}

TEST(MinPairwiseDistance, AgreesWithBruteForce) {
  Rng rng(112);
  const auto dep = uniform_square(80, 9.0, rng);
  EXPECT_NEAR(min_pairwise_distance(dep.positions()),
              brute_min_link(dep.positions()), 1e-12);
}

}  // namespace
}  // namespace fcr
