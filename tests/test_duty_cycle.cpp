// Duty-cycling tests: wake schedules, radio-off semantics, and the
// aligned-vs-unaligned contention behaviour.
#include <gtest/gtest.h>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/duty_cycle.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TEST(DutyCycle, SleepsOutsideItsSlot) {
  auto inner = std::make_shared<FadingContentionResolution>(0.999);
  const DutyCycled algo(inner, 4, [](NodeId) { return std::uint64_t{2}; });
  const auto node = algo.make_node(0, Rng(1));
  int awake_tx = 0;
  for (std::uint64_t r = 1; r <= 40; ++r) {
    const Action a = node->on_round_begin(r);
    if (r % 4 != 2) {
      EXPECT_EQ(a, Action::kListen) << r;  // asleep: radio off
    } else if (a == Action::kTransmit) {
      ++awake_tx;
    }
    node->on_round_end(Feedback{});
  }
  EXPECT_GE(awake_tx, 9);  // p ~ 1 on the ~10 awake slots
}

TEST(DutyCycle, SleepingNodesMissKnockouts) {
  auto inner = std::make_shared<FadingContentionResolution>(0.5);
  const DutyCycled algo(inner, 2, [](NodeId) { return std::uint64_t{0}; });
  const auto node = algo.make_node(0, Rng(2));
  Feedback heard;
  heard.received = true;
  // Round 1 is a sleep round (phase 0 wakes at rounds divisible by 2):
  // deliver a knockout — it must be lost.
  node->on_round_begin(1);
  node->on_round_end(heard);
  EXPECT_TRUE(node->is_contending());
  // Round 2 is awake: the knockout lands.
  node->on_round_begin(2);
  node->on_round_end(heard);
  EXPECT_FALSE(node->is_contending());
}

TEST(DutyCycle, PhaseAssignments) {
  EXPECT_EQ(aligned_phases()(7), 0u);
  const auto random = random_phases(8, 3);
  for (NodeId id = 0; id < 40; ++id) {
    const auto phase = random(id);
    EXPECT_LT(phase, 8u);
    EXPECT_EQ(phase, random_phases(8, 3)(id));  // deterministic
  }
}

TEST(DutyCycle, Validation) {
  auto inner = std::make_shared<FadingContentionResolution>();
  EXPECT_THROW(DutyCycled(nullptr, 4, aligned_phases()),
               std::invalid_argument);
  EXPECT_THROW(DutyCycled(inner, 0, aligned_phases()), std::invalid_argument);
  EXPECT_THROW(DutyCycled(inner, 4, PhaseAssignment{}), std::invalid_argument);
  const DutyCycled bad_phase(inner, 4, [](NodeId) { return std::uint64_t{9}; });
  EXPECT_THROW(bad_phase.make_node(0, Rng(1)), ContractViolation);
}

TEST(DutyCycle, AlignedCyclesCostRoughlyPeriodTimesRounds) {
  // All nodes share the wake slot: the contention plays out identically to
  // the always-on run but stretched by the period (only every period-th
  // round does anything).
  auto run_with = [](std::uint64_t period) {
    return run_trials(
        [](Rng& rng) { return uniform_square(64, 16.0, rng).normalized(); },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [period](const Deployment&) -> std::unique_ptr<Algorithm> {
          auto inner = std::make_shared<FadingContentionResolution>();
          if (period == 1) {
            return std::make_unique<FadingContentionResolution>();
          }
          return std::make_unique<DutyCycled>(inner, period, aligned_phases());
        },
        [] {
          TrialConfig c;
          c.trials = 20;
          c.engine.max_rounds = 50000;
          return c;
        }());
  };
  const auto base = run_with(1);
  const auto cycled = run_with(4);
  ASSERT_EQ(base.solved, base.trials);
  ASSERT_EQ(cycled.solved, cycled.trials);
  const double ratio = cycled.summary().median / base.summary().median;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(DutyCycle, UnalignedPhasesStillSolve) {
  // Random phases partition the network into period-many sub-contentions;
  // a solo transmission in ANY slot resolves the whole thing, so completion
  // is fast (each slot has ~n/period contenders).
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(64, 16.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [](const Deployment&) {
        return std::make_unique<DutyCycled>(
            std::make_shared<FadingContentionResolution>(), 4,
            random_phases(4, 99));
      },
      [] {
        TrialConfig c;
        c.trials = 20;
        c.engine.max_rounds = 50000;
        return c;
      }());
  EXPECT_EQ(result.solved, result.trials);
}

}  // namespace
}  // namespace fcr
