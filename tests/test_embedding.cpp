// Theorem 12 embedding tests, deployment I/O, and the Lemma 6
// double-counting identity.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/fading_cr.hpp"
#include "core/good_nodes.hpp"
#include "deploy/generators.hpp"
#include "deploy/io.hpp"
#include "lowerbound/embedding.hpp"

namespace fcr {
namespace {

// ---------------------------------------------------------------- embedding

TEST(Embedding, ConstructionHasLogarithmicLinkClasses) {
  Rng rng(30);
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    const TwoPlayerEmbedding e = build_two_player_embedding(n, rng);
    EXPECT_EQ(e.deployment.size(), n);
    EXPECT_EQ(e.player_a, 0u);
    EXPECT_EQ(e.player_b, 1u);
    // O(log n) link classes: allow a generous constant.
    EXPECT_LE(e.deployment.link_class_count(),
              4 * static_cast<std::size_t>(std::log2(static_cast<double>(n))) + 8)
        << "n=" << n;
    // The players' mutual link dominates the geometry.
    const double player_link =
        dist(e.deployment.position(0), e.deployment.position(1));
    EXPECT_NEAR(player_link, e.deployment.max_link(),
                e.deployment.max_link() * 0.01);
  }
}

TEST(Embedding, RunMatchesAbstractTwoPlayerExactly) {
  // With player ids 0 and 1, the engine hands them the same split streams
  // as run_two_player, so the embedded run must break symmetry in exactly
  // the same round — the executable content of the Theorem 12 reduction.
  Rng build_rng(31);
  const TwoPlayerEmbedding e = build_two_player_embedding(128, build_rng);
  const FadingContentionResolution algo(0.4);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const TwoPlayerResult abstract = run_two_player(algo, Rng(seed), 100000);
    const TwoPlayerResult embedded =
        run_embedded_two_player(algo, e, Rng(seed), 100000);
    ASSERT_TRUE(abstract.broken);
    ASSERT_TRUE(embedded.broken);
    EXPECT_EQ(embedded.rounds, abstract.rounds) << "seed " << seed;
  }
}

TEST(Embedding, Validation) {
  Rng rng(32);
  EXPECT_THROW(build_two_player_embedding(1, rng), std::invalid_argument);
  TwoPlayerEmbedding e = build_two_player_embedding(8, rng);
  e.player_b = e.player_a;
  const FadingContentionResolution algo;
  EXPECT_THROW(run_embedded_two_player(algo, e, Rng(1), 10),
               std::invalid_argument);
}

// --------------------------------------------------------------------- io

TEST(DeploymentIo, RoundTripsExactly) {
  Rng rng(33);
  const Deployment original = uniform_square(50, 13.0, rng);
  std::stringstream ss;
  write_deployment_csv(original, ss);
  const Deployment loaded = read_deployment_csv(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (NodeId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.position(i), original.position(i)) << i;
  }
  EXPECT_DOUBLE_EQ(loaded.min_link(), original.min_link());
}

TEST(DeploymentIo, ParsesHandWrittenInput) {
  std::istringstream in("x,y\r\n0,0\n\n1.5,2.5\r\n");
  const Deployment dep = read_deployment_csv(in);
  ASSERT_EQ(dep.size(), 2u);
  EXPECT_EQ(dep.position(1), (Vec2{1.5, 2.5}));
}

TEST(DeploymentIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_deployment_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("a,b\n1,2\n");
    EXPECT_THROW(read_deployment_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("x,y\n1\n");
    EXPECT_THROW(read_deployment_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("x,y\n1,abc\n");
    EXPECT_THROW(read_deployment_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("x,y\n1,2\n1,2\n");  // duplicate position
    EXPECT_THROW(read_deployment_csv(in), std::invalid_argument);
  }
}

// ---------------------------------------------------- extra-good machinery

TEST(ExtraGood, StricterThanGood) {
  Rng rng(34);
  const Deployment dep = uniform_square(200, 30.0, rng).normalized();
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const GoodNodeAnalyzer analyzer(dep, ids);
  for (NodeId u = 0; u < 50; ++u) {
    const bool extra_both = analyzer.is_extra_good_wrt_smaller(u) &&
                            analyzer.is_extra_good_wrt_at_least(u);
    // Lemma 6: extra good w.r.t. both sub-populations implies good (the two
    // halved budgets sum to the full one).
    if (extra_both) {
      EXPECT_TRUE(analyzer.is_good(u)) << u;
    }
  }
}

TEST(ExtraGood, ProfileWithinCountsOnlyThePopulation) {
  // Node 0 with partner at 16 (class 4 relative to unit links) and two
  // population shells.
  const Deployment dep({{0, 0}, {16, 0}, {20, 0}, {0, 20}, {1000, 0},
                        {1000, 1}});
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const GoodNodeAnalyzer analyzer(dep, ids);
  const std::vector<NodeId> pop_one = {2};
  const AnnulusProfile p1 = analyzer.profile_within(0, pop_one, 48.0);
  // Node 2 at distance 20 from node 0: annulus t=0 spans (16, 32].
  ASSERT_FALSE(p1.counts.empty());
  EXPECT_EQ(p1.counts[0], 1u);
  const std::vector<NodeId> pop_none = {4};
  const AnnulusProfile p2 = analyzer.profile_within(0, pop_none, 48.0);
  EXPECT_EQ(p2.counts[0], 0u);  // node 4 is far beyond the t=0 annulus
}

TEST(ExtraGood, Lemma6DoubleCountingIdentity) {
  // The key identity in Lemma 6's proof:
  //   sum_{u in V_i} |A_t^i(u) ∩ V_<i| = sum_{v in V_<i} |A_t^i(v) ∩ V_i|
  // (annuli on BOTH sides use the scale 2^i). Verify on a random mixed
  // deployment for every class and the first few annuli.
  Rng rng(35);
  std::vector<Vec2> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
  }
  const Deployment dep(std::move(pts));
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const LinkClassPartition part(dep, ids);
  const double unit = dep.min_link();

  for (std::size_t i = 1; i < part.class_count(); ++i) {
    const auto& v_i = part.nodes_in(i);
    std::vector<NodeId> v_less;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& nodes = part.nodes_in(j);
      v_less.insert(v_less.end(), nodes.begin(), nodes.end());
    }
    if (v_i.empty() || v_less.empty()) continue;
    const SpatialGrid grid_less(dep.positions(), v_less);
    const SpatialGrid grid_i(dep.positions(), v_i);
    for (std::size_t t = 0; t < 4; ++t) {
      const double inner =
          std::pow(2.0, static_cast<double>(i) + static_cast<double>(t)) * unit;
      const double outer = 2.0 * inner;
      std::size_t lhs = 0, rhs = 0;
      for (const NodeId u : v_i) {
        lhs += grid_less.count_in_annulus(dep.position(u), inner, outer, u);
      }
      for (const NodeId v : v_less) {
        rhs += grid_i.count_in_annulus(dep.position(v), inner, outer, v);
      }
      EXPECT_EQ(lhs, rhs) << "class " << i << " annulus " << t;
    }
  }
}

}  // namespace
}  // namespace fcr
