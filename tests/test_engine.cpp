// Engine tests: solo-round termination semantics, feedback delivery,
// observers, determinism, and model-capability enforcement — using scripted
// protocols whose actions are fully controlled.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

/// Protocol that transmits exactly in the rounds listed for its id.
class ScriptedNode final : public NodeProtocol {
 public:
  ScriptedNode(std::vector<std::uint64_t> transmit_rounds,
               std::vector<Feedback>* feedback_log)
      : rounds_(std::move(transmit_rounds)), log_(feedback_log) {}

  Action on_round_begin(std::uint64_t round) override {
    for (const auto r : rounds_) {
      if (r == round) return Action::kTransmit;
    }
    return Action::kListen;
  }

  void on_round_end(const Feedback& feedback) override {
    if (log_ != nullptr) log_->push_back(feedback);
  }

 private:
  std::vector<std::uint64_t> rounds_;
  std::vector<Feedback>* log_;
};

/// Algorithm wrapping per-id transmit schedules.
class ScriptedAlgorithm final : public Algorithm {
 public:
  explicit ScriptedAlgorithm(
      std::map<NodeId, std::vector<std::uint64_t>> schedules)
      : schedules_(std::move(schedules)) {}

  std::string name() const override { return "scripted"; }

  std::unique_ptr<NodeProtocol> make_node(NodeId id, Rng) const override {
    auto it = schedules_.find(id);
    return std::make_unique<ScriptedNode>(
        it == schedules_.end() ? std::vector<std::uint64_t>{} : it->second,
        logs_.count(id) ? logs_.at(id) : nullptr);
  }

  void attach_log(NodeId id, std::vector<Feedback>* log) { logs_[id] = log; }

 private:
  std::map<NodeId, std::vector<std::uint64_t>> schedules_;
  std::map<NodeId, std::vector<Feedback>*> logs_;
};

Deployment three_nodes() { return Deployment({{0, 0}, {1, 0}, {2, 0}}); }

TEST(Engine, SoloTransmissionSolvesInThatRound) {
  // Round 1: nodes 0 and 1 collide. Round 2: only node 2 transmits.
  ScriptedAlgorithm algo({{0, {1}}, {1, {1}}, {2, {2}}});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  const RunResult r =
      run_execution(three_nodes(), algo, channel, config, Rng(1));
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.winner, 2u);
}

TEST(Engine, FirstRoundSoloWins) {
  std::map<NodeId, std::vector<std::uint64_t>> schedules;
  schedules[1] = {1};
  ScriptedAlgorithm algo(std::move(schedules));
  const RadioChannelAdapter channel(false);
  const RunResult r =
      run_execution(three_nodes(), algo, channel, EngineConfig{}, Rng(1));
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.winner, 1u);
}

TEST(Engine, NoSoloMeansUnsolvedAtMaxRounds) {
  // All three transmit every round: never solo.
  ScriptedAlgorithm algo(
      {{0, {1, 2, 3}}, {1, {1, 2, 3}}, {2, {1, 2, 3}}});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.max_rounds = 3;
  const RunResult r =
      run_execution(three_nodes(), algo, channel, config, Rng(1));
  EXPECT_FALSE(r.solved);
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(r.winner, kInvalidNode);
}

TEST(Engine, SilenceIsNotASolution) {
  ScriptedAlgorithm algo({});  // nobody ever transmits
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.max_rounds = 5;
  const RunResult r =
      run_execution(three_nodes(), algo, channel, config, Rng(1));
  EXPECT_FALSE(r.solved);
}

TEST(Engine, FeedbackDeliveredToEveryNodeEveryRound) {
  ScriptedAlgorithm algo({{0, {1}}, {1, {2}}});
  std::vector<Feedback> log0, log1, log2;
  algo.attach_log(0, &log0);
  algo.attach_log(1, &log1);
  algo.attach_log(2, &log2);
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.stop_on_solve = false;
  config.max_rounds = 2;
  run_execution(three_nodes(), algo, channel, config, Rng(1));

  ASSERT_EQ(log0.size(), 2u);
  ASSERT_EQ(log1.size(), 2u);
  ASSERT_EQ(log2.size(), 2u);
  // Round 1: node 0 transmitted (learns only that); 1 and 2 hear node 0.
  EXPECT_TRUE(log0[0].transmitted);
  EXPECT_FALSE(log0[0].received);
  EXPECT_TRUE(log1[0].received);
  EXPECT_EQ(log1[0].sender, 0u);
  EXPECT_TRUE(log2[0].received);
  // Round 2: node 1 transmitted; 0 and 2 hear node 1.
  EXPECT_TRUE(log1[1].transmitted);
  EXPECT_TRUE(log0[1].received);
  EXPECT_EQ(log0[1].sender, 1u);
}

TEST(Engine, RecordRoundsCapturesHistory) {
  ScriptedAlgorithm algo({{0, {1, 2}}, {1, {1}}, {2, {2}}});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.record_rounds = true;
  config.stop_on_solve = false;
  config.max_rounds = 2;
  const RunResult r =
      run_execution(three_nodes(), algo, channel, config, Rng(1));
  ASSERT_EQ(r.history.size(), 2u);
  EXPECT_EQ(r.history[0].round, 1u);
  EXPECT_EQ(r.history[0].transmitters, 2u);
  EXPECT_EQ(r.history[0].receptions, 0u);  // collision
  EXPECT_EQ(r.history[1].transmitters, 2u);
  // stop_on_solve=false keeps running; solved stays false (no solo round).
  EXPECT_FALSE(r.solved);
}

TEST(Engine, StopOnSolveFalseStillReportsFirstSoloRound) {
  ScriptedAlgorithm algo({{0, {1, 3}}, {1, {2}}});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.stop_on_solve = false;
  config.max_rounds = 4;
  const RunResult r =
      run_execution(three_nodes(), algo, channel, config, Rng(1));
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.rounds, 1u);  // first solo round, not the last
  EXPECT_EQ(r.winner, 0u);
}

TEST(Engine, ObserverSeesEveryRound) {
  ScriptedAlgorithm algo({{0, {1}}, {1, {1}}, {2, {3}}});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.max_rounds = 5;
  std::vector<std::size_t> tx_counts;
  const RunResult r = run_execution(
      three_nodes(), algo, channel, config, Rng(1),
      [&](const RoundView& view) { tx_counts.push_back(view.transmitters.size()); });
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_EQ(tx_counts, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(Engine, CdAlgorithmRejectedOnPlainChannel) {
  /// Minimal algorithm flagged as CD-requiring.
  class NeedsCd final : public Algorithm {
   public:
    std::string name() const override { return "needs-cd"; }
    std::unique_ptr<NodeProtocol> make_node(NodeId, Rng) const override {
      return std::make_unique<ScriptedNode>(std::vector<std::uint64_t>{},
                                            nullptr);
    }
    bool requires_collision_detection() const override { return true; }
  };
  const NeedsCd algo;
  const RadioChannelAdapter plain(false);
  EXPECT_THROW(
      run_execution(three_nodes(), algo, plain, EngineConfig{}, Rng(1)),
      std::invalid_argument);
  const RadioChannelAdapter cd(true);
  EXPECT_NO_THROW(
      run_execution(three_nodes(), algo, cd, EngineConfig{}, Rng(1)));
}

TEST(Engine, InvalidConfigRejected) {
  ScriptedAlgorithm algo({});
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.max_rounds = 0;
  EXPECT_THROW(
      run_execution(three_nodes(), algo, channel, config, Rng(1)),
      std::invalid_argument);
}

}  // namespace
}  // namespace fcr
