// Second-wave engine tests: degenerate deployments, SINR-channel round
// statistics, stop predicates vs solve, and deployment characterization.
#include <gtest/gtest.h>

#include "core/deployment_stats.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TEST(Engine2, SingleNodeDeploymentSolvesGeometrically) {
  // One node alone: solved in the first round it transmits — geometric(p).
  const Deployment dep({{0.0, 0.0}});
  const auto channel = make_radio_adapter(false);
  const FadingContentionResolution algo(0.5);
  StreamingSummary rounds;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const RunResult r =
        run_execution(dep, algo, *channel, EngineConfig{}, Rng(seed));
    ASSERT_TRUE(r.solved);
    EXPECT_EQ(r.winner, 0u);
    rounds.add(static_cast<double>(r.rounds));
  }
  EXPECT_NEAR(rounds.mean(), 2.0, 0.4);
}

TEST(Engine2, HistoryReceptionsMatchObserverOnSinr) {
  Rng rng(20);
  const Deployment dep = uniform_square(48, 14.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.record_rounds = true;
  config.stop_on_solve = false;
  config.max_rounds = 50;

  std::vector<std::size_t> observed_rx;
  const RunResult r = run_execution(
      dep, algo, *channel, config, rng.split(1), [&](const RoundView& view) {
        std::size_t rx = 0;
        for (const Feedback& f : view.listener_feedback) {
          if (f.received) ++rx;
        }
        observed_rx.push_back(rx);
      });
  ASSERT_EQ(r.history.size(), observed_rx.size());
  for (std::size_t i = 0; i < observed_rx.size(); ++i) {
    EXPECT_EQ(r.history[i].receptions, observed_rx[i]) << i;
    EXPECT_EQ(r.history[i].round, i + 1);
  }
}

TEST(Engine2, StopWhenBeforeSolveReportsUnsolved) {
  Rng rng(21);
  const Deployment dep = uniform_square(32, 12.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  // Never transmits: stop_when is the only way out.
  const FadingContentionResolution algo(1e-9);
  EngineConfig config;
  config.max_rounds = 1000;
  config.stop_when = [](const RoundView& v) { return v.round >= 5; };
  const RunResult r = run_execution(dep, algo, *channel, config, rng.split(1));
  EXPECT_FALSE(r.solved);
  EXPECT_EQ(r.rounds, 5u);
}

TEST(Engine2, StopOnSolveBeatsStopWhen) {
  // With an effectively-never stop predicate, solve detection still ends
  // the run at the first solo round.
  Rng rng(22);
  const Deployment dep = uniform_square(16, 8.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo(0.5);
  EngineConfig config;
  config.max_rounds = 10000;
  config.stop_when = [](const RoundView& v) { return v.round >= 10000; };
  const RunResult r = run_execution(dep, algo, *channel, config, rng.split(2));
  EXPECT_TRUE(r.solved);
  EXPECT_LT(r.rounds, 10000u);
}

// ------------------------------------------------------------- describe

TEST(DeploymentStats, HandComputedInstance) {
  // Unit pair plus a far pair at distance 4: classes 0 and 2.
  const Deployment dep({{0, 0}, {1, 0}, {100, 0}, {104, 0}});
  const DeploymentStats s = describe(dep);
  EXPECT_EQ(s.nodes, 4u);
  EXPECT_DOUBLE_EQ(s.shortest_link, 1.0);
  EXPECT_NEAR(s.link_ratio, 104.0, 1e-9);
  EXPECT_EQ(s.nonempty_link_classes, 2u);
  ASSERT_GE(s.class_sizes.size(), 3u);
  EXPECT_EQ(s.class_sizes[0], 2u);
  EXPECT_EQ(s.class_sizes[2], 2u);
  EXPECT_DOUBLE_EQ(s.nn_max, 4.0);
  EXPECT_DOUBLE_EQ(s.nn_mean, 2.5);
}

TEST(DeploymentStats, SingleNode) {
  const Deployment dep({{5, 5}});
  const DeploymentStats s = describe(dep);
  EXPECT_EQ(s.nodes, 1u);
  EXPECT_EQ(s.nonempty_link_classes, 0u);
  EXPECT_DOUBLE_EQ(s.bbox_density, 0.0);
}

TEST(DeploymentStats, RenderingMentionsEveryNonEmptyClass) {
  Rng rng(23);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const DeploymentStats s = describe(dep);
  const std::string text = to_string(s);
  EXPECT_NE(text.find("nodes: 64"), std::string::npos);
  EXPECT_NE(text.find("link classes:"), std::string::npos);
  for (std::size_t i = 0; i < s.class_sizes.size(); ++i) {
    if (s.class_sizes[i] > 0) {
      EXPECT_NE(text.find("d" + std::to_string(i) + "="), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace fcr
