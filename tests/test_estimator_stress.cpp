// Contention-estimator tests plus randomized stress invariants for the
// spatial grid at larger scale.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "core/contention_estimator.hpp"
#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "geom/grid.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

// ---------------------------------------------------------------- estimator

TEST(ContentionEstimator, RecoversTheTruthOnSyntheticStreams) {
  // Simulate the exact generative model: k-1 other nodes, each transmitting
  // w.p. p; a listening observer sees silence iff all are quiet.
  Rng rng(1);
  const double p = 0.2;
  for (const int k : {2, 5, 20, 60}) {
    ContentionEstimator est(p);
    for (int round = 0; round < 20000; ++round) {
      bool active = false;
      for (int other = 0; other < k - 1; ++other) {
        if (rng.bernoulli(p)) active = true;
      }
      est.observe(active);
    }
    const auto k_hat = est.estimate();
    ASSERT_TRUE(k_hat.has_value());
    const auto ci = est.ci95_halfwidth();
    ASSERT_TRUE(ci.has_value());
    EXPECT_NEAR(*k_hat, static_cast<double>(k), std::max(4.0 * *ci, 0.5))
        << "k=" << k;
  }
}

TEST(ContentionEstimator, ExtremesStayFinite) {
  ContentionEstimator quiet(0.3);
  for (int i = 0; i < 100; ++i) quiet.observe(false);
  ASSERT_TRUE(quiet.estimate().has_value());
  EXPECT_NEAR(*quiet.estimate(), 1.0, 0.1);  // nobody else out there

  ContentionEstimator jammed(0.3);
  for (int i = 0; i < 100; ++i) jammed.observe(true);
  ASSERT_TRUE(jammed.estimate().has_value());
  EXPECT_GT(*jammed.estimate(), 10.0);  // large but finite
  EXPECT_TRUE(std::isfinite(*jammed.estimate()));
}

TEST(ContentionEstimator, Validation) {
  EXPECT_THROW(ContentionEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(ContentionEstimator(1.0), std::invalid_argument);
  const ContentionEstimator empty(0.2);
  EXPECT_FALSE(empty.estimate().has_value());
  EXPECT_FALSE(empty.ci95_halfwidth().has_value());
}

TEST(ContentionEstimator, MoreObservationsTightenTheCi) {
  Rng rng(2);
  ContentionEstimator est(0.25);
  double prev = std::numeric_limits<double>::infinity();
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 500; ++i) est.observe(rng.bernoulli(0.6));
    const auto ci = est.ci95_halfwidth();
    ASSERT_TRUE(ci.has_value());
    EXPECT_LT(*ci, prev);
    prev = *ci;
  }
}

// -------------------------------------------------------------- grid stress

TEST(GridStress, RandomizedQueriesMatchBruteForceAtScale) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    // Mixed-density instance: a uniform cloud plus a tight clump.
    std::vector<Vec2> pts;
    for (int i = 0; i < 900; ++i) {
      pts.push_back({trial_rng.uniform(0.0, 100.0),
                     trial_rng.uniform(0.0, 100.0)});
    }
    for (int i = 0; i < 100; ++i) {
      pts.push_back({50.0 + trial_rng.uniform(0.0, 0.5),
                     50.0 + trial_rng.uniform(0.0, 0.5)});
    }
    const SpatialGrid grid(pts);

    for (int q = 0; q < 60; ++q) {
      const Vec2 query{trial_rng.uniform(-10.0, 110.0),
                       trial_rng.uniform(-10.0, 110.0)};
      // Nearest.
      double best = std::numeric_limits<double>::infinity();
      for (const Vec2 p : pts) best = std::min(best, dist(p, query));
      const auto got = grid.nearest(query);
      ASSERT_TRUE(got.has_value());
      EXPECT_NEAR(got->distance, best, 1e-9);
      // Annulus count at a random shell.
      const double inner = trial_rng.uniform(0.0, 30.0);
      const double outer = inner + trial_rng.uniform(0.1, 40.0);
      std::size_t want = 0;
      for (const Vec2 p : pts) {
        const double d = dist(p, query);
        if (d > inner && d <= outer) ++want;
      }
      EXPECT_EQ(grid.count_in_annulus(query, inner, outer), want);
    }
  }
}

TEST(GridStress, LinkClassPartitionSumsAcrossDensities) {
  // Partition totals and per-node class coherence on a hard mixed-scale
  // instance (tight clump inside a sparse field).
  Rng rng(4);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
  }
  for (int i = 0; i < 60; ++i) {
    pts.push_back({100.0 + rng.uniform(0.0, 2.0),
                   100.0 + rng.uniform(0.0, 2.0)});
  }
  const Deployment dep(std::move(pts));
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const LinkClassPartition part(dep, ids);

  std::size_t total = 0;
  for (std::size_t i = 0; i < part.class_count(); ++i) {
    total += part.size_of(i);
    for (const NodeId u : part.nodes_in(i)) {
      EXPECT_EQ(part.class_of(u), static_cast<std::int32_t>(i));
    }
  }
  EXPECT_EQ(total, dep.size());
  EXPECT_EQ(part.size_below(part.class_count()), dep.size());
}

}  // namespace
}  // namespace fcr
