// Exact Markov-chain analysis vs the simulator — the strongest validation
// in the suite: on tiny instances the whole stack (RNG, engine, channel,
// algorithm) must reproduce closed-form expectations — plus the optimal
// hitting-game value.
#include <gtest/gtest.h>

#include <cmath>

#include "core/exact.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "lowerbound/optimal.hpp"
#include "lowerbound/players.hpp"
#include "sim/channel_adapter.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace fcr {
namespace {

SinrParams params_for(const Deployment& dep) {
  return SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
}

TEST(Exact, TwoNodesIsGeometric) {
  // Two nodes: the pair is decodable (single hop), so the first round with
  // any transmission resolves or knocks out: states full -> absorbed or
  // single -> geometric. Known closed form: E = (1 + ...) — verify against
  // first-step analysis computed independently here.
  const Deployment dep = single_pair(1.0).normalized();
  const SinrChannel channel(params_for(dep));
  const double p = 0.3;
  const ExactFadingAnalysis exact(dep, channel, p);

  // From {a, b}: P(solo) = 2p(1-p) solves; P(both transmit) = p^2 keeps
  // both active (transmitters can't receive); P(neither) = (1-p)^2 stays.
  // No knockout can occur with both transmitting (no listeners), so the
  // chain never leaves the full state until the solo round:
  // E = 1 / (2p(1-p)).
  EXPECT_NEAR(exact.expected_rounds(), 1.0 / (2.0 * p * (1.0 - p)), 1e-12);
  // Lone-node state: geometric(p).
  EXPECT_NEAR(exact.expected_rounds(0b01), 1.0 / p, 1e-12);
}

TEST(Exact, TransitionMatchesChannelSemantics) {
  // Three collinear nodes, unit spacing: if only node 0 transmits, nodes 1
  // and 2 decode it (single-hop power) and are knocked out.
  const Deployment dep = Deployment({{0, 0}, {1, 0}, {2, 0}}).normalized();
  const SinrChannel channel(params_for(dep));
  const ExactFadingAnalysis exact(dep, channel, 0.2);
  EXPECT_EQ(exact.transition(0b111, 0b001), 0b001u);
  // Everyone transmits: no listeners, nothing changes.
  EXPECT_EQ(exact.transition(0b111, 0b111), 0b111u);
  // Nobody transmits: nothing changes.
  EXPECT_EQ(exact.transition(0b111, 0b000), 0b111u);
  EXPECT_THROW(exact.transition(0b011, 0b100), std::invalid_argument);
}

TEST(Exact, SolveProbabilityIsMonotoneAndConverges) {
  Rng rng(95);
  const Deployment dep = uniform_square(6, 5.0, rng).normalized();
  const SinrChannel channel(params_for(dep));
  const ExactFadingAnalysis exact(dep, channel, 0.2);
  double prev = 0.0;
  for (const std::uint64_t r : {1u, 2u, 5u, 10u, 50u, 200u}) {
    const double q = exact.solve_probability_within(r);
    EXPECT_GE(q, prev);
    EXPECT_LE(q, 1.0 + 1e-12);
    prev = q;
  }
  EXPECT_GT(prev, 0.999);
}

TEST(Exact, SimulatorMatchesExactExpectation) {
  // THE validation: Monte Carlo mean completion time over the full stack
  // must match the Markov-chain expectation within confidence bounds.
  for (const std::uint64_t instance_seed : {101u, 202u}) {
    Rng rng(instance_seed);
    const Deployment dep = uniform_square(7, 6.0, rng).normalized();
    const SinrParams params = params_for(dep);
    const SinrChannel channel(params);
    const double p = 0.25;
    const ExactFadingAnalysis exact(dep, channel, p);
    const double expected = exact.expected_rounds();

    const SinrChannelAdapter adapter(params);
    const FadingContentionResolution algo(p);
    StreamingSummary rounds;
    EngineConfig config;
    config.max_rounds = 100000;
    const std::size_t trials = 4000;
    for (std::size_t t = 0; t < trials; ++t) {
      const RunResult r =
          run_execution(dep, algo, adapter, config, rng.split(1000 + t));
      ASSERT_TRUE(r.solved);
      rounds.add(static_cast<double>(r.rounds));
    }
    // 4 standard errors of slack.
    EXPECT_NEAR(rounds.mean(), expected, 4.0 * rounds.ci95_halfwidth() / 1.96)
        << "instance " << instance_seed << " exact=" << expected;
  }
}

TEST(Exact, SimulatorMatchesExactTailProbability) {
  Rng rng(303);
  const Deployment dep = uniform_square(6, 5.0, rng).normalized();
  const SinrParams params = params_for(dep);
  const SinrChannel channel(params);
  const double p = 0.2;
  const ExactFadingAnalysis exact(dep, channel, p);

  const std::uint64_t horizon = 5;
  const double q_exact = exact.solve_probability_within(horizon);

  const SinrChannelAdapter adapter(params);
  const FadingContentionResolution algo(p);
  EngineConfig config;
  config.max_rounds = horizon;
  std::size_t solved = 0;
  const std::size_t trials = 6000;
  for (std::size_t t = 0; t < trials; ++t) {
    if (run_execution(dep, algo, adapter, config, rng.split(t)).solved) {
      ++solved;
    }
  }
  const double q_sim = static_cast<double>(solved) / trials;
  // Binomial standard error ~ sqrt(q(1-q)/trials) < 0.0065.
  EXPECT_NEAR(q_sim, q_exact, 0.03);
}

TEST(Exact, Validation) {
  const Deployment dep = single_pair(1.0);
  const SinrChannel channel(params_for(dep));
  EXPECT_THROW(ExactFadingAnalysis(dep, channel, 0.0), std::invalid_argument);
  const Deployment one({{0, 0}});
  EXPECT_THROW(ExactFadingAnalysis(one, channel, 0.2), std::invalid_argument);
}

// ----------------------------------------------------- optimal hitting game

TEST(OptimalHitting, ClosedFormKnownValues) {
  // k = 4, T = 1: 2 classes of 2 -> 2 unsplit pairs of C(4,2)=6.
  EXPECT_EQ(min_unsplit_pairs(4, 1), 2u);
  EXPECT_NEAR(optimal_hitting_success(4, 1), 1.0 - 2.0 / 6.0, 1e-12);
  // T = 2 splits everything: 4 classes of 1.
  EXPECT_EQ(min_unsplit_pairs(4, 2), 0u);
  EXPECT_DOUBLE_EQ(optimal_hitting_success(4, 2), 1.0);
  // T = 0: everything unsplit.
  EXPECT_EQ(min_unsplit_pairs(4, 0), 6u);
  EXPECT_DOUBLE_EQ(optimal_hitting_success(4, 0), 0.0);
}

TEST(OptimalHitting, WhpThresholdIsLogarithmic) {
  // The exact threshold sits in [ceil(log2 k) - 1, ceil(log2 k)]: reaching
  // success 1 - 1/k needs the balanced partition's unsplit count to drop to
  // (k-1)/2, which ~k/2 classes achieve — one round before perfect
  // splitting (e.g. k = 3, T = 1: one unsplit pair of three is exactly the
  // 1 - 1/k bar). Powers of two need the full ceil(log2 k).
  for (const std::size_t k : {2u, 3u, 4u, 7u, 8u, 9u, 64u, 100u, 4096u}) {
    const std::size_t t = optimal_rounds_for_whp(k);
    const auto ceil_log2 = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(k))));
    EXPECT_LE(t, ceil_log2) << "k=" << k;
    EXPECT_GE(t + 1, ceil_log2) << "k=" << k;
    // Below the computed threshold the bar is strictly missed (Lemma 13).
    if (t > 0) {
      EXPECT_LT(optimal_hitting_success(k, t - 1),
                1.0 - 1.0 / static_cast<double>(k))
          << "k=" << k;
    }
    // Powers of two need every round.
    if ((k & (k - 1)) == 0) {
      EXPECT_EQ(t, ceil_log2) << "k=" << k;
    }
  }
}

TEST(OptimalHitting, MonotoneInRounds) {
  for (std::size_t t = 0; t < 12; ++t) {
    EXPECT_LE(optimal_hitting_success(1000, t),
              optimal_hitting_success(1000, t + 1));
  }
}

TEST(OptimalHitting, NoPlayerBeatsTheOptimum) {
  // Empirical cross-check: the random-half player's per-(k, T) success rate
  // must not exceed the closed-form optimum (within sampling error).
  Rng rng(96);
  const std::size_t k = 32, T = 3;
  const double optimum = optimal_hitting_success(k, T);
  std::size_t wins = 0;
  const std::size_t games = 4000;
  for (std::size_t g = 0; g < games; ++g) {
    Rng game_rng = rng.split(g);
    const HittingGameReferee ref(k, game_rng);
    RandomHalfPlayer player(k, game_rng.split(1));
    if (play_hitting_game(ref, player, T).won) ++wins;
  }
  const double rate = static_cast<double>(wins) / static_cast<double>(games);
  EXPECT_LE(rate, optimum + 0.02);
}

}  // namespace
}  // namespace fcr
