// Extension-module tests: power control, carrier sensing, interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/fast_decay.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/carrier_sense.hpp"
#include "ext/interleave.hpp"
#include "ext/power_control.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

SinrParams basic_params() {
  SinrParams p;
  p.alpha = 3.0;
  p.beta = 1.5;
  p.noise = 0.0;
  p.power = 1.0;
  return p;
}

// ----------------------------------------------------------- power control

TEST(PowerControl, UniformPowersMatchFixedPowerChannel) {
  Rng rng(800);
  const Deployment dep = uniform_square(40, 10.0, rng).normalized();
  SinrParams params = basic_params();
  params.noise = 1e-9;
  params.power = 7.0;

  const SinrChannel fixed(params);
  const PowerControlSinrChannel pc(params);

  std::vector<NodeId> tx = {0, 1, 2, 3};
  std::vector<NodeId> listeners;
  for (NodeId i = 4; i < dep.size(); ++i) listeners.push_back(i);
  const std::vector<double> powers(tx.size(), params.power);

  const auto a = fixed.resolve(dep, tx, listeners);
  const auto b = pc.resolve(dep, tx, powers, listeners);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sender, b[i].sender) << "listener " << listeners[i];
  }
}

TEST(PowerControl, StrongerTransmitterWinsTheLink) {
  // Two transmitters equidistant from the listener: the higher-power one is
  // decoded once its power advantage clears beta.
  const Deployment dep({{0.0, 0.0}, {-1.0, 0.0}, {1.0, 0.0}});
  const PowerControlSinrChannel pc(basic_params());
  const std::vector<NodeId> tx = {1, 2};
  const std::vector<NodeId> listeners = {0};

  const std::vector<double> boosted = {10.0, 1.0};
  auto receptions = pc.resolve(dep, tx, boosted, listeners);
  EXPECT_EQ(receptions[0].sender, 1u);

  const std::vector<double> equal = {1.0, 1.0};
  receptions = pc.resolve(dep, tx, equal, listeners);
  EXPECT_FALSE(receptions[0].received());  // symmetric: SINR = 1 < beta
}

TEST(PowerControl, ValidatesPowerVector) {
  const Deployment dep = single_pair(2.0);
  const PowerControlSinrChannel pc(basic_params());
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  const std::vector<double> wrong_size = {};
  EXPECT_THROW(pc.resolve(dep, tx, wrong_size, listeners),
               std::invalid_argument);
  const std::vector<double> non_positive = {0.0};
  EXPECT_THROW(pc.resolve(dep, tx, non_positive, listeners),
               std::invalid_argument);
}

TEST(PowerControl, RandomPowerAdapterRunsThePapersAlgorithm) {
  Rng rng(801);
  const Deployment dep = uniform_square(64, 20.0, rng).normalized();
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const RandomPowerSinrAdapter adapter(params, 4, 2.0, rng.split(5));
  EXPECT_EQ(adapter.name(), "sinr-power-control");
  EXPECT_EQ(adapter.levels(), 4u);

  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 5000;
  const RunResult r = run_execution(dep, algo, adapter, config, rng.split(6));
  EXPECT_TRUE(r.solved);
}

TEST(PowerControl, AdapterValidation) {
  EXPECT_THROW(RandomPowerSinrAdapter(basic_params(), 0, 2.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(RandomPowerSinrAdapter(basic_params(), 2, 1.0, Rng(1)),
               std::invalid_argument);
}

// ----------------------------------------------------------- carrier sense

TEST(CarrierSense, BusyChannelIsReportedAboveThreshold) {
  // Transmitters far from the listener: nothing decodable, but the summed
  // power can exceed the sensing threshold.
  const Deployment dep({{0.0, 0.0}, {10.0, 0.0}, {-10.0, 0.0}});
  SinrParams params = basic_params();
  const double received_power = 2.0 / 1000.0;  // two signals at distance 10
  const CarrierSenseSinrAdapter sensitive(params, received_power / 2.0);
  const CarrierSenseSinrAdapter deaf(params, received_power * 2.0);
  EXPECT_TRUE(sensitive.provides_collision_detection());

  const std::vector<NodeId> tx = {1, 2};
  const std::vector<NodeId> listeners = {0};
  std::vector<Feedback> fb(1);

  sensitive.resolve(dep, tx, listeners, fb);
  EXPECT_FALSE(fb[0].received);
  EXPECT_EQ(fb[0].observation, RadioObservation::kCollision);

  deaf.resolve(dep, tx, listeners, fb);
  EXPECT_FALSE(fb[0].received);
  EXPECT_EQ(fb[0].observation, RadioObservation::kSilence);
}

TEST(CarrierSense, DecodedMessageTrumpsBusy) {
  const Deployment dep = single_pair(1.0);
  const CarrierSenseSinrAdapter adapter(basic_params(), 1e-12);
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  adapter.resolve(dep, tx, listeners, fb);
  EXPECT_TRUE(fb[0].received);
  EXPECT_EQ(fb[0].observation, RadioObservation::kMessage);
}

TEST(CarrierSense, KnockoutAlgorithmValidation) {
  EXPECT_THROW(CarrierSenseKnockout(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(CarrierSenseKnockout(0.2, 1.5), std::invalid_argument);
  const CarrierSenseKnockout algo(0.2, 0.1);
  EXPECT_TRUE(algo.requires_collision_detection());
  EXPECT_NE(algo.name().find("0.2"), std::string::npos);
}

TEST(CarrierSense, SenseKnockoutDeactivatesOnBusyRounds) {
  const CarrierSenseKnockout algo(0.2, 1.0);  // q = 1: certain withdrawal
  const auto node = algo.make_node(0, Rng(5));
  Feedback busy;
  busy.observation = RadioObservation::kCollision;
  // Drive rounds until the node listens into a busy round.
  for (std::uint64_t r = 1; r <= 200 && node->is_contending(); ++r) {
    const Action a = node->on_round_begin(r);
    Feedback f = busy;
    f.transmitted = a == Action::kTransmit;
    if (f.transmitted) f.observation = RadioObservation::kSilence;
    node->on_round_end(f);
  }
  EXPECT_FALSE(node->is_contending());
}

TEST(CarrierSense, AggressiveSensingCannotExtinguishTheNetwork) {
  // Sensing only fires when someone transmitted, and transmitters never
  // withdraw (they receive no feedback), so even q = 1 keeps at least one
  // active node per round — the variant is safe and in fact accelerates
  // convergence to a solo round.
  Rng rng(802);
  const Deployment dep = uniform_square(64, 20.0, rng).normalized();
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const CarrierSenseSinrAdapter channel(params, params.noise);
  const CarrierSenseKnockout algo(0.5, 1.0);
  EngineConfig config;
  config.max_rounds = 2000;
  config.record_rounds = true;
  const RunResult r = run_execution(dep, algo, channel, config, rng.split(1));
  EXPECT_TRUE(r.solved);
  for (const RoundStats& s : r.history) {
    EXPECT_GE(s.contending, 1u) << "round " << s.round;
  }
}

// -------------------------------------------------------------- interleave

TEST(Interleave, RoutesRoundsToSubProtocols) {
  /// Sub-protocol that transmits iff its (sub-)round number is even,
  /// recording the rounds it saw.
  class Probe final : public NodeProtocol {
   public:
    explicit Probe(std::vector<std::uint64_t>* seen) : seen_(seen) {}
    Action on_round_begin(std::uint64_t round) override {
      seen_->push_back(round);
      return Action::kListen;
    }
    void on_round_end(const Feedback&) override {}
   private:
    std::vector<std::uint64_t>* seen_;
  };
  class ProbeAlgo final : public Algorithm {
   public:
    explicit ProbeAlgo(std::vector<std::uint64_t>* seen) : seen_(seen) {}
    std::string name() const override { return "probe"; }
    std::unique_ptr<NodeProtocol> make_node(NodeId, Rng) const override {
      return std::make_unique<Probe>(seen_);
    }
   private:
    std::vector<std::uint64_t>* seen_;
  };

  std::vector<std::uint64_t> odd_seen, even_seen;
  const InterleavedAlgorithm algo(std::make_shared<ProbeAlgo>(&odd_seen),
                                  std::make_shared<ProbeAlgo>(&even_seen));
  const auto node = algo.make_node(0, Rng(1));
  for (std::uint64_t r = 1; r <= 6; ++r) {
    node->on_round_begin(r);
    node->on_round_end(Feedback{});
  }
  // Engine rounds 1,3,5 -> odd sub-rounds 1,2,3; rounds 2,4,6 -> even 1,2,3.
  EXPECT_EQ(odd_seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(even_seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Interleave, PropagatesCapabilities) {
  auto fading = std::make_shared<FadingContentionResolution>();
  auto fast = std::make_shared<FastDecay>(1024);
  const InterleavedAlgorithm algo(fading, fast);
  EXPECT_TRUE(algo.uses_size_bound());  // fast-decay needs N
  EXPECT_FALSE(algo.requires_collision_detection());
  EXPECT_NE(algo.name().find("interleave"), std::string::npos);
  EXPECT_THROW(InterleavedAlgorithm(nullptr, fading), std::invalid_argument);
}

TEST(Interleave, UnknownRStrategySolvesOnSinr) {
  // The paper's remark: interleave the R-sensitive algorithm with an
  // R-insensitive one. Both halves solve on SINR; the combination must too.
  Rng rng(803);
  const Deployment dep = exponential_chain(64, 4096.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const InterleavedAlgorithm algo(
      std::make_shared<FadingContentionResolution>(),
      std::make_shared<FastDecay>(dep.size()));
  EngineConfig config;
  config.max_rounds = 10000;
  const RunResult r = run_execution(dep, algo, *channel, config, rng.split(4));
  EXPECT_TRUE(r.solved);
}

TEST(Interleave, IsContendingReflectsBothHalves) {
  auto fading = std::make_shared<FadingContentionResolution>();
  const InterleavedAlgorithm algo(fading, fading);
  const auto node = algo.make_node(0, Rng(2));
  EXPECT_TRUE(node->is_contending());
  // Knock out the odd half only: still contending through the even half.
  node->on_round_begin(1);
  Feedback heard;
  heard.received = true;
  node->on_round_end(heard);
  EXPECT_TRUE(node->is_contending());
  // Knock out the even half too.
  node->on_round_begin(2);
  node->on_round_end(heard);
  EXPECT_FALSE(node->is_contending());
}

}  // namespace
}  // namespace fcr
