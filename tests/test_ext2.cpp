// Tests for the second batch of extensions: Rayleigh fading, staggered
// activation, and the active-subset wrapper.
#include <gtest/gtest.h>

#include <vector>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/rayleigh.hpp"
#include "ext/staggered.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sim/subset.hpp"

namespace fcr {
namespace {

SinrParams params_for(const Deployment& dep) {
  return SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
}

// ------------------------------------------------------------------ rayleigh

TEST(Rayleigh, SeverityZeroMatchesDeterministicChannel) {
  Rng rng(900);
  const Deployment dep = uniform_square(40, 12.0, rng).normalized();
  const SinrParams params = params_for(dep);
  const RayleighSinrAdapter rayleigh(params, 0.0, rng.split(1));
  const SinrChannelAdapter deterministic(params);

  std::vector<NodeId> tx = {0, 1, 2, 3, 4};
  std::vector<NodeId> listeners;
  for (NodeId i = 5; i < dep.size(); ++i) listeners.push_back(i);
  std::vector<Feedback> a(listeners.size()), b(listeners.size());
  rayleigh.resolve(dep, tx, listeners, a);
  deterministic.resolve(dep, tx, listeners, b);
  for (std::size_t i = 0; i < listeners.size(); ++i) {
    EXPECT_EQ(a[i].received, b[i].received) << i;
    EXPECT_EQ(a[i].sender, b[i].sender) << i;
  }
}

TEST(Rayleigh, ValidatesSeverity) {
  SinrParams p;
  p.alpha = 3.0;
  EXPECT_THROW(RayleighSinrAdapter(p, -0.1, Rng(1)), std::invalid_argument);
  EXPECT_THROW(RayleighSinrAdapter(p, 1.1, Rng(1)), std::invalid_argument);
  EXPECT_NO_THROW(RayleighSinrAdapter(p, 1.0, Rng(1)));
}

TEST(Rayleigh, FadingFlipsMarginalReceptions) {
  // A link whose deterministic SINR sits just above beta should sometimes
  // fail (and a just-below one sometimes succeed) under full fading.
  const Deployment dep({{0.0, 0.0}, {1.0, 0.0}, {1.9, 0.0}});
  SinrParams p;
  p.alpha = 3.0;
  p.beta = 1.5;
  p.noise = 0.0;
  p.power = 1.0;
  const RayleighSinrAdapter channel(p, 1.0, Rng(7));
  const std::vector<NodeId> tx = {1, 2};
  const std::vector<NodeId> listeners = {0};
  std::vector<Feedback> fb(1);
  int received = 0;
  const int rounds = 2000;
  for (int r = 0; r < rounds; ++r) {
    channel.resolve(dep, tx, listeners, fb);
    if (fb[0].received) ++received;
  }
  // Deterministically: SINR(1->0) = (1/1) / (1/0.9^3 ... ) — interferer at
  // 1.9 from node 0 gives 1/1.9^3 ~ 0.146, SINR ~ 6.9 >= beta: always
  // received without fading. With fading some rounds must fail.
  EXPECT_GT(received, 0);
  EXPECT_LT(received, rounds);
}

TEST(Rayleigh, PapersAlgorithmStillSolvesUnderFullFading) {
  Rng rng(901);
  const Deployment dep = uniform_square(96, 20.0, rng).normalized();
  const RayleighSinrAdapter channel(params_for(dep), 1.0, rng.split(2));
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const RunResult r =
        run_execution(dep, algo, channel, config, rng.split(100 + seed));
    EXPECT_TRUE(r.solved) << "seed " << seed;
  }
}

// ----------------------------------------------------------------- staggered

TEST(Staggered, SleepingNodesListenAndIgnore) {
  auto inner = std::make_shared<FadingContentionResolution>(0.99);
  const StaggeredActivation algo(inner, linear_activation(10));
  // Node 3 activates at round 31.
  const auto node = algo.make_node(3, Rng(1));
  Feedback heard;
  heard.received = true;
  for (std::uint64_t r = 1; r <= 30; ++r) {
    EXPECT_EQ(node->on_round_begin(r), Action::kListen) << r;
    EXPECT_FALSE(node->is_contending()) << r;
    node->on_round_end(heard);  // pre-activation receptions must not knock out
  }
  // From activation on it contends (p = 0.99: transmits almost surely).
  bool transmitted = false;
  for (std::uint64_t r = 31; r <= 40; ++r) {
    if (node->on_round_begin(r) == Action::kTransmit) transmitted = true;
    node->on_round_end(Feedback{});
    EXPECT_TRUE(node->is_contending());
  }
  EXPECT_TRUE(transmitted);
}

TEST(Staggered, InnerRoundsAreRenumberedFromOne) {
  /// Probe protocol recording the rounds it is shown.
  class Probe final : public NodeProtocol {
   public:
    explicit Probe(std::vector<std::uint64_t>* seen) : seen_(seen) {}
    Action on_round_begin(std::uint64_t round) override {
      seen_->push_back(round);
      return Action::kListen;
    }
    void on_round_end(const Feedback&) override {}
   private:
    std::vector<std::uint64_t>* seen_;
  };
  class ProbeAlgo final : public Algorithm {
   public:
    explicit ProbeAlgo(std::vector<std::uint64_t>* seen) : seen_(seen) {}
    std::string name() const override { return "probe"; }
    std::unique_ptr<NodeProtocol> make_node(NodeId, Rng) const override {
      return std::make_unique<Probe>(seen_);
    }
   private:
    std::vector<std::uint64_t>* seen_;
  };

  std::vector<std::uint64_t> seen;
  const StaggeredActivation algo(std::make_shared<ProbeAlgo>(&seen),
                                 [](NodeId) { return std::uint64_t{4}; });
  const auto node = algo.make_node(0, Rng(1));
  for (std::uint64_t r = 1; r <= 6; ++r) {
    node->on_round_begin(r);
    node->on_round_end(Feedback{});
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));  // rounds 4, 5, 6
}

TEST(Staggered, Schedules) {
  EXPECT_EQ(immediate_activation()(7), 1u);
  EXPECT_EQ(linear_activation(5)(0), 1u);
  EXPECT_EQ(linear_activation(5)(3), 16u);
  const auto uniform = uniform_activation(100, 9);
  for (NodeId id = 0; id < 50; ++id) {
    const auto r = uniform(id);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
    EXPECT_EQ(r, uniform_activation(100, 9)(id));  // deterministic
  }
}

TEST(Staggered, SolvesWithStaggeredArrivals) {
  Rng rng(902);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const StaggeredActivation algo(
      std::make_shared<FadingContentionResolution>(),
      uniform_activation(50, 77));
  EngineConfig config;
  config.max_rounds = 20000;
  const RunResult r = run_execution(dep, algo, *channel, config, rng.split(3));
  EXPECT_TRUE(r.solved);
}

TEST(Staggered, Validation) {
  auto inner = std::make_shared<FadingContentionResolution>();
  EXPECT_THROW(StaggeredActivation(nullptr, immediate_activation()),
               std::invalid_argument);
  EXPECT_THROW(StaggeredActivation(inner, ActivationSchedule{}),
               std::invalid_argument);
  EXPECT_THROW(uniform_activation(0, 1), std::invalid_argument);
}

// -------------------------------------------------------------------- subset

TEST(Subset, DormantNodesNeverTransmit) {
  auto inner = std::make_shared<FadingContentionResolution>(0.99);
  const ActiveSubsetAlgorithm algo(inner, {1, 3});
  for (const NodeId id : {0u, 2u, 4u}) {
    const auto node = algo.make_node(id, Rng(id));
    for (std::uint64_t r = 1; r <= 50; ++r) {
      EXPECT_EQ(node->on_round_begin(r), Action::kListen);
      node->on_round_end(Feedback{});
    }
    EXPECT_FALSE(node->is_contending());
  }
  const auto active = algo.make_node(1, Rng(1));
  EXPECT_TRUE(active->is_contending());
}

TEST(Subset, Validation) {
  auto inner = std::make_shared<FadingContentionResolution>();
  EXPECT_THROW(ActiveSubsetAlgorithm(nullptr, {0}), std::invalid_argument);
  EXPECT_THROW(ActiveSubsetAlgorithm(inner, {}), std::invalid_argument);
  EXPECT_THROW(ActiveSubsetAlgorithm(inner, {1, 1}), std::invalid_argument);
}

TEST(Subset, EngineSolvesAmongActivatedOnly) {
  Rng rng(903);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const ActiveSubsetAlgorithm algo(
      std::make_shared<FadingContentionResolution>(), {5, 17, 23, 42});
  EngineConfig config;
  config.max_rounds = 20000;
  const RunResult r = run_execution(dep, algo, *channel, config, rng.split(4));
  ASSERT_TRUE(r.solved);
  const auto& act = algo.activated();
  EXPECT_NE(std::find(act.begin(), act.end(), r.winner), act.end());
}

}  // namespace
}  // namespace fcr
