// Campaign fabric tests: spec/wire round-trips, frame corruption, and the
// bit-identity proof obligation — a campaign sharded over socket workers
// (healthy, faulty, crashing, or absent) must produce results identical to
// a clean single-process run (docs/ROBUSTNESS.md §6).
//
// Workers here are fabric::run_worker on std::threads inside this process:
// the exact code fcrw runs, minus the fork/exec, so lease scheduling,
// transport faults, and crash recovery are exercised deterministically
// under the sanitizers. Process-level kills are covered by
// scripts/fabric_fault_matrix.sh.
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "fabric/coordinator.hpp"
#include "fabric/spec.hpp"
#include "fabric/transport.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"
#include "sim/campaign.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fcr {
namespace {

// UNIX socket paths must fit sun_path (~108 bytes), so sockets live under
// /tmp rather than the (often deep) gtest temp dir.
std::string sock_path(const std::string& name) {
  return "/tmp/fcr_fab_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

/// A sweep small enough that every test finishes in well under a second.
fabric::SweepSpec small_spec(std::size_t trials = 12) {
  fabric::SweepSpec spec;
  spec.n = 24;
  spec.trials = trials;
  spec.seed = 777;
  return spec;
}

CampaignResult run_local(const fabric::SweepSpec& spec) {
  const fabric::Factories f = fabric::make_factories(spec);
  CampaignRunner runner(f.deploy, f.channel, f.algorithm,
                        fabric::campaign_config(spec));
  return runner.run();
}

fabric::FabricConfig fast_fabric(const fabric::SweepSpec& spec,
                                 const std::string& socket) {
  fabric::FabricConfig fc;
  fc.socket_path = socket;
  fc.spec = spec;
  fc.lease_trials = 4;
  fc.lease_timeout_ms = 400;
  fc.worker_grace_ms = 2000;
  return fc;
}

fabric::WorkerConfig fast_worker(const std::string& socket,
                                 const std::string& name) {
  fabric::WorkerConfig wc;
  wc.socket_path = socket;
  wc.name = name;
  wc.heartbeat_ms = 50;
  wc.io_timeout_ms = 250;
  wc.connect_retry_ms = 20;
  wc.connect_attempts = 100;
  return wc;
}

struct FabricRun {
  CampaignResult campaign;
  fabric::SocketBackend::Stats stats;
  // int, not bool: vector<bool> packs bits, and the worker threads write
  // their slots concurrently — distinct ints are race-free, bits are not.
  std::vector<int> worker_clean;
  std::vector<fabric::WorkerStats> wstats;
};

/// Runs `spec` through a SocketBackend with the given worker fleet on
/// threads. The backend is destroyed before the join: its destructor
/// broadcasts Shutdown and unlinks the socket, so idle workers always find
/// an exit (clean-idle semantics) and the join cannot hang. `start_delay_ms`
/// staggers worker launch (trials are microseconds here, so an unstaggered
/// fleet can let one fast worker drain the whole campaign before the
/// others even connect).
FabricRun run_fabric(const fabric::SweepSpec& spec, fabric::FabricConfig fc,
                     const std::vector<fabric::WorkerConfig>& wcs,
                     const std::vector<std::uint64_t>& start_delay_ms = {}) {
  const fabric::Factories f = fabric::make_factories(spec);
  CampaignRunner runner(f.deploy, f.channel, f.algorithm,
                        fabric::campaign_config(spec));
  FabricRun out;
  out.worker_clean.assign(wcs.size(), 0);
  out.wstats.assign(wcs.size(), fabric::WorkerStats{});
  std::vector<std::thread> fleet;
  {
    fabric::SocketBackend backend(std::move(fc));
    fleet.reserve(wcs.size());
    for (std::size_t i = 0; i < wcs.size(); ++i) {
      const std::uint64_t delay =
          i < start_delay_ms.size() ? start_delay_ms[i] : 0;
      fleet.emplace_back([&out, &wcs, i, delay] {
        if (delay != 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        out.worker_clean[i] =
            fabric::run_worker(wcs[i], &out.wstats[i]) ? 1 : 0;
      });
    }
    out.campaign = runner.run_with(backend);
    out.stats = backend.stats();
  }
  for (std::thread& t : fleet) t.join();
  return out;
}

void expect_same_result(const CampaignResult& got, const CampaignResult& want) {
  EXPECT_EQ(got.result.trials, want.result.trials);
  EXPECT_EQ(got.result.solved, want.result.solved);
  ASSERT_EQ(got.result.rounds.size(), want.result.rounds.size());
  for (std::size_t i = 0; i < want.result.rounds.size(); ++i) {
    EXPECT_EQ(got.result.rounds[i], want.result.rounds[i]) << "trial " << i;
  }
}

// -------------------------------------------------------------------- spec

TEST(FabricSpec, SerializeParseRoundTrip) {
  fabric::SweepSpec spec;
  spec.deployment = "clusters";
  spec.n = 96;
  spec.side = 12.5;
  spec.clusters = 5;
  spec.channel = "rayleigh";
  spec.alpha = 2.75;
  spec.fading_severity = 1.25;
  spec.algorithm = "decay";
  spec.p = 0.375;
  spec.trials = 33;
  spec.seed = 424242;
  spec.round_budget = 5000;
  spec.max_attempts = 2;

  const std::string text = fabric::serialize_spec(spec);
  const fabric::SweepSpec back = fabric::parse_spec(text);
  EXPECT_EQ(fabric::serialize_spec(back), text);
  EXPECT_EQ(back.identity(), spec.identity());
  EXPECT_EQ(campaign_config_hash(fabric::campaign_config(back)),
            campaign_config_hash(fabric::campaign_config(spec)));
}

TEST(FabricSpec, ParseRejectsMalformedText) {
  const fabric::SweepSpec spec;
  const std::string good = fabric::serialize_spec(spec);
  const std::vector<std::string> bads = {
      "mystery_key=1;" + good, "n=notanumber", "n", good + ";trials=0"};
  for (const std::string& bad : bads) {
    try {
      fabric::parse_spec(bad);
      FAIL() << "expected kConfig for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kConfig) << bad;
    }
  }
}

// -------------------------------------------------------------------- wire

TEST(FabricWire, TypedPayloadsRoundTrip) {
  const fabric::HelloMsg hello{"fcrw#test"};
  EXPECT_EQ(fabric::decode_hello(fabric::encode_hello(hello)).worker,
            hello.worker);

  fabric::LeaseGrantMsg grant;
  grant.lease = 42;
  grant.config_hash = 0xDEADBEEFCAFEF00Dull;
  grant.trials = {3, 1, 17};
  grant.spec = fabric::serialize_spec(fabric::SweepSpec{});
  const fabric::LeaseGrantMsg grant2 =
      fabric::decode_lease_grant(fabric::encode_lease_grant(grant));
  EXPECT_EQ(grant2.lease, grant.lease);
  EXPECT_EQ(grant2.config_hash, grant.config_hash);
  EXPECT_EQ(grant2.trials, grant.trials);
  EXPECT_EQ(grant2.spec, grant.spec);

  EXPECT_EQ(fabric::decode_no_work(fabric::encode_no_work({1234})).backoff_ms,
            1234u);
  const fabric::HeartbeatMsg hb2 =
      fabric::decode_heartbeat(fabric::encode_heartbeat({7, 3}));
  EXPECT_EQ(hb2.lease, 7u);
  EXPECT_EQ(hb2.completed, 3u);
  EXPECT_EQ(fabric::decode_result_ack(fabric::encode_result_ack({9})).lease,
            9u);

  fabric::ShardResultMsg result;
  result.lease = 11;
  CheckpointData data;
  data.config_hash = 5;
  data.total_trials = 4;
  data.entries = {CheckpointEntry{2, true, false, 31, 1}};
  result.checkpoint = serialize_checkpoint(data);
  result.failures = {TrialFailure{2, 1, ErrorCategory::kTimeout,
                                  "round budget exhausted", "fcrw#test"}};
  const fabric::ShardResultMsg result2 =
      fabric::decode_shard_result(fabric::encode_shard_result(result));
  EXPECT_EQ(result2.lease, result.lease);
  EXPECT_EQ(result2.checkpoint, result.checkpoint);
  ASSERT_EQ(result2.failures.size(), 1u);
  EXPECT_EQ(result2.failures[0].trial, 2u);
  EXPECT_EQ(result2.failures[0].category, ErrorCategory::kTimeout);
  EXPECT_EQ(result2.failures[0].message, "round budget exhausted");
  EXPECT_EQ(result2.failures[0].worker, "fcrw#test");
}

TEST(FabricWire, FrameExtractionHandlesPartialsAndBackToBack) {
  const fabric::Frame a{fabric::MsgType::kHello,
                        fabric::encode_hello({"one"})};
  const fabric::Frame b{fabric::MsgType::kNoWork,
                        fabric::encode_no_work({55})};
  const std::string wire = fabric::encode_frame(a) + fabric::encode_frame(b);

  // Byte-at-a-time delivery: nothing is produced until a frame completes,
  // and both frames come out intact, in order.
  std::string buf;
  std::vector<fabric::Frame> got;
  for (const char c : wire) {
    buf.push_back(c);
    while (auto f = fabric::extract_frame(buf)) got.push_back(*f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(fabric::decode_hello(got[0].payload).worker, "one");
  EXPECT_EQ(fabric::decode_no_work(got[1].payload).backoff_ms, 55u);
  EXPECT_TRUE(buf.empty());
}

TEST(FabricWire, EveryBitFlipPoisonsTheFrame) {
  const fabric::Frame frame{fabric::MsgType::kHeartbeat,
                            fabric::encode_heartbeat({3, 9})};
  const std::string wire = fabric::encode_frame(frame);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string buf = wire;
      buf[byte] = static_cast<char>(buf[byte] ^ (1 << bit));
      try {
        const auto f = fabric::extract_frame(buf);
        // A flip in the length field may leave a partial-looking frame
        // (reader waits for bytes that never come) — acceptable, since the
        // oversize cap bounds the wait. Delivering a frame is NOT.
        EXPECT_FALSE(f.has_value()) << "byte " << byte << " bit " << bit;
      } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCorrupt);
      }
    }
  }
}

TEST(FabricWire, OversizedLengthIsCorruptionNotAWait) {
  std::string wire =
      fabric::encode_frame({fabric::MsgType::kLeaseRequest, {}});
  // Stamp a length far above kMaxPayload into the header (offset 5).
  const std::uint32_t huge = (64u << 20);
  for (int i = 0; i < 4; ++i) {
    wire[5 + static_cast<std::size_t>(i)] =
        static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  try {
    fabric::extract_frame(wire);
    FAIL() << "expected kCorrupt";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCorrupt);
  }
}

// ---------------------------------------------------- campaign bit-identity

TEST(FabricCampaign, ThreeWorkersMatchLocalRunBitIdentically) {
  const fabric::SweepSpec spec = small_spec(20);
  const CampaignResult local = run_local(spec);

  const std::string socket = sock_path("three");
  const FabricRun run =
      run_fabric(spec, fast_fabric(spec, socket),
                 {fast_worker(socket, "w#1"), fast_worker(socket, "w#2"),
                  fast_worker(socket, "w#3")});

  expect_same_result(run.campaign, local);
  EXPECT_EQ(run.stats.local_fallback_trials, 0u);
  EXPECT_EQ(run.stats.results_merged, 5u);  // 20 trials / 4 per lease
  EXPECT_GE(run.stats.leases_granted, 5u);
  // Trials are microseconds here, so a worker can lose the startup race
  // and never participate — but every worker that DID take a lease must
  // have exited cleanly, and the fleet must have covered every shard.
  std::size_t fleet_leases = 0;
  for (std::size_t i = 0; i < run.wstats.size(); ++i) {
    fleet_leases += run.wstats[i].leases;
    if (run.wstats[i].leases > 0) {
      EXPECT_TRUE(run.worker_clean[i]) << "worker " << i;
    }
  }
  EXPECT_GE(fleet_leases, 5u);
}

TEST(FabricCampaign, WorkerCrashMidShardIsReassignedAndRecomputed) {
  const fabric::SweepSpec spec = small_spec(16);
  const CampaignResult local = run_local(spec);

  const std::string socket = sock_path("crash");
  fabric::WorkerConfig crasher = fast_worker(socket, "crasher");
  crasher.die_after_entries = 2;  // vanish mid-shard, holding a lease
  crasher.connect_retry_ms = 5;
  crasher.connect_attempts = 600;
  // The savior starts late so the crasher is guaranteed to own a lease
  // (and crash holding it) before anyone else can drain the campaign.
  const FabricRun run =
      run_fabric(spec, fast_fabric(spec, socket),
                 {crasher, fast_worker(socket, "savior")}, {0, 300});

  expect_same_result(run.campaign, local);
  EXPECT_FALSE(run.worker_clean[0]);  // the crash is an abandon, not clean
  EXPECT_TRUE(run.worker_clean[1]);
  // The crash closes the connection, so the abandoned lease is revoked on
  // worker death and re-granted: more grants than merged results.
  EXPECT_EQ(run.stats.results_merged, 4u);  // 16 trials / 4 per lease
  EXPECT_GT(run.stats.leases_granted, run.stats.results_merged);
}

TEST(FabricCampaign, SilentWorkerLeaseExpiresWithAStrike) {
  // A ZOMBIE worker takes a lease and then goes silent WITHOUT closing its
  // connection (a hung process / a partitioned host). Only the heartbeat
  // deadline can reclaim that shard: the lease must expire, the zombie must
  // be struck, and a healthy worker must recompute — bit-identically.
  const fabric::SweepSpec spec = small_spec(12);
  const CampaignResult local = run_local(spec);

  const std::string socket = sock_path("zombie");
  fabric::FabricConfig fc = fast_fabric(spec, socket);
  fc.lease_timeout_ms = 250;

  const fabric::Factories f = fabric::make_factories(spec);
  CampaignRunner runner(f.deploy, f.channel, f.algorithm,
                        fabric::campaign_config(spec));
  FabricRun run;
  std::thread healthy;
  std::thread zombie;
  {
    fabric::SocketBackend backend(std::move(fc));
    zombie = std::thread([&socket] {
      fabric::Fd fd;
      for (int i = 0; i < 200 && !fd.valid(); ++i) {
        fd = fabric::connect_unix(socket);
        if (!fd.valid()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      if (!fd.valid()) return;
      fabric::FrameChannel ch(std::move(fd));
      ch.send(fabric::Frame{fabric::MsgType::kHello,
                            fabric::encode_hello({"zombie"})});
      ch.send(fabric::Frame{fabric::MsgType::kLeaseRequest, {}});
      while (ch.want_write() && ch.flush()) {
      }
      // Hold the lease silently past the deadline, then vanish.
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      ch.close();
    });
    // The healthy worker starts late so the zombie wins the first grant.
    healthy = std::thread([&socket, &run] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      run.worker_clean.push_back(
          fabric::run_worker(fast_worker(socket, "healthy")) ? 1 : 0);
    });
    run.campaign = runner.run_with(backend);
    run.stats = backend.stats();
  }
  zombie.join();
  healthy.join();

  expect_same_result(run.campaign, local);
  EXPECT_GE(run.stats.leases_expired, 1u);
  EXPECT_GE(run.stats.worker_strikes, 1u);
  EXPECT_EQ(run.stats.corrupt_results, 0u);
}

TEST(FabricCampaign, NoWorkersDegradesToLocalFallbackBitIdentically) {
  const fabric::SweepSpec spec = small_spec(10);
  const CampaignResult local = run_local(spec);

  fabric::FabricConfig fc = fast_fabric(spec, sock_path("fallback"));
  fc.worker_grace_ms = 100;  // don't wait long for a fleet that never comes
  const FabricRun run = run_fabric(spec, std::move(fc), {});

  expect_same_result(run.campaign, local);
  EXPECT_EQ(run.stats.local_fallback_trials, spec.trials);
  EXPECT_EQ(run.stats.leases_granted, 0u);
  // The degradation is visible in the campaign report as one kIo warning.
  bool warned = false;
  for (const TrialFailure& f : run.campaign.failures) {
    if (f.category == ErrorCategory::kIo && f.worker == "fcrd") warned = true;
  }
  EXPECT_TRUE(warned) << run.campaign.failure_report();
}

TEST(FabricCampaign, FallbackDisabledFailsTheCampaignInstead) {
  const fabric::SweepSpec spec = small_spec(4);
  fabric::FabricConfig fc = fast_fabric(spec, sock_path("nofallback"));
  fc.worker_grace_ms = 50;
  fc.allow_local_fallback = false;

  const fabric::Factories f = fabric::make_factories(spec);
  CampaignRunner runner(f.deploy, f.channel, f.algorithm,
                        fabric::campaign_config(spec));
  fabric::SocketBackend backend(std::move(fc));
  try {
    runner.run_with(backend);
    FAIL() << "expected kIo";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

TEST(FabricCampaign, ConfigHashMismatchIsRejectedBeforeScheduling) {
  // The backend is pinned to spec A; driving it with a campaign built from
  // spec B must fail loudly, not silently compute the wrong sweep.
  const fabric::SweepSpec spec_a = small_spec(6);
  fabric::SweepSpec spec_b = spec_a;
  spec_b.seed = spec_a.seed + 1;

  const fabric::Factories f = fabric::make_factories(spec_b);
  CampaignRunner runner(f.deploy, f.channel, f.algorithm,
                        fabric::campaign_config(spec_b));
  fabric::SocketBackend backend(fast_fabric(spec_a, sock_path("skew")));
  EXPECT_THROW(runner.run_with(backend), std::invalid_argument);
}

TEST(FabricCampaign, BackendValidatesItsConfig) {
  fabric::FabricConfig no_socket;
  no_socket.spec = small_spec(4);
  EXPECT_THROW(fabric::SocketBackend{no_socket}, std::invalid_argument);

  fabric::FabricConfig no_lease = fast_fabric(small_spec(4), sock_path("cfg"));
  no_lease.lease_trials = 0;
  EXPECT_THROW(fabric::SocketBackend{no_lease}, std::invalid_argument);
}

TEST(FabricCampaign, WorkerNamesFlowIntoFailureProvenance) {
  // A round budget of 1 makes every attempt a kTimeout failure, so every
  // trial quarantines — and every recorded failure must carry the identity
  // of the worker whose shard ran it (satellite: provenance).
  fabric::SweepSpec spec = small_spec(6);
  spec.round_budget = 1;
  spec.max_attempts = 2;
  const CampaignResult local = run_local(spec);

  const std::string socket = sock_path("prov");
  const FabricRun run =
      run_fabric(spec, fast_fabric(spec, socket),
                 {fast_worker(socket, "alpha"), fast_worker(socket, "beta")});

  EXPECT_EQ(run.campaign.quarantined, local.quarantined);
  EXPECT_EQ(run.campaign.quarantined, spec.trials);
  ASSERT_FALSE(run.campaign.failures.empty());
  for (const TrialFailure& f : run.campaign.failures) {
    if (f.trial == kNoIndex) continue;  // campaign-level warnings
    EXPECT_EQ(f.category, ErrorCategory::kTimeout);
    EXPECT_TRUE(f.worker == "alpha" || f.worker == "beta")
        << "failure lost its worker identity: '" << f.worker << "'";
  }
}

// ------------------------------------------------- transport fault schedule

class FabricFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FabricFaultTest, InjectedTransportFaultsPreserveBitIdentity) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  const fabric::SweepSpec spec = small_spec(16);
  const CampaignResult local = run_local(spec);

  // Drops, duplicates, and heartbeat loss across every wire seam. The
  // registry is process-wide, so coordinator and worker threads fault
  // alike; the lease machinery must absorb all of it.
  ASSERT_EQ(failpoint::arm_from_spec("fabric/send=drop:hash=4,seed=11;"
                                     "fabric/recv=duplicate:hash=5,seed=7;"
                                     "fabric/heartbeat=drop:every=3"),
            3u);

  const std::string socket = sock_path("faults");
  fabric::FabricConfig fc = fast_fabric(spec, socket);
  fc.lease_timeout_ms = 300;  // recover quickly from dropped results
  const FabricRun run = run_fabric(spec, std::move(fc),
                                   {fast_worker(socket, "f#1"),
                                    fast_worker(socket, "f#2"),
                                    fast_worker(socket, "f#3")});
  failpoint::disarm_all();

  expect_same_result(run.campaign, local);
  EXPECT_EQ(run.stats.corrupt_results, 0u);
}

}  // namespace
}  // namespace fcr
