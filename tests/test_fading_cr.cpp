// Tests for the paper's algorithm: the knockout rule, statelessness
// guarantees, and end-to-end behaviour on the SINR channel.
#include <gtest/gtest.h>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TEST(FadingNode, TransmitsWithRoughlyProbabilityP) {
  FadingNode node(0.25, Rng(1));
  int transmissions = 0;
  const int rounds = 20000;
  for (int r = 1; r <= rounds; ++r) {
    if (node.on_round_begin(static_cast<std::uint64_t>(r)) == Action::kTransmit) {
      ++transmissions;
    }
    node.on_round_end(Feedback{});  // silence: stays active
  }
  EXPECT_NEAR(static_cast<double>(transmissions) / rounds, 0.25, 0.02);
  EXPECT_TRUE(node.is_contending());
}

TEST(FadingNode, KnockoutSilencesForever) {
  FadingNode node(0.5, Rng(2));
  Feedback heard;
  heard.received = true;
  heard.sender = 3;
  node.on_round_end(heard);
  EXPECT_FALSE(node.is_contending());
  for (int r = 1; r <= 1000; ++r) {
    EXPECT_EQ(node.on_round_begin(static_cast<std::uint64_t>(r)), Action::kListen);
  }
}

TEST(FadingNode, OwnTransmissionDoesNotKnockOut) {
  FadingNode node(0.5, Rng(3));
  Feedback own;
  own.transmitted = true;
  node.on_round_end(own);
  EXPECT_TRUE(node.is_contending());
}

TEST(FadingAlgorithm, ValidatesProbability) {
  EXPECT_THROW(FadingContentionResolution(0.0), std::invalid_argument);
  EXPECT_THROW(FadingContentionResolution(1.0), std::invalid_argument);
  EXPECT_THROW(FadingContentionResolution(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(FadingContentionResolution(0.5));
}

TEST(FadingAlgorithm, NameEncodesProbability) {
  EXPECT_EQ(FadingContentionResolution(0.25).name(), "fading-const-p(0.25)");
  EXPECT_DOUBLE_EQ(FadingContentionResolution().broadcast_probability(),
                   kDefaultBroadcastProbability);
}

TEST(FadingAlgorithm, TwoNodesBreakSymmetryQuickly) {
  // With two nodes the first asymmetric round wins; expected ~1/(2p(1-p)).
  const FadingContentionResolution algo(0.5);
  const Deployment dep = single_pair(1.0);
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  StreamingSummary rounds;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const RunResult r =
        run_execution(dep, algo, *channel, EngineConfig{}, Rng(seed));
    ASSERT_TRUE(r.solved);
    rounds.add(static_cast<double>(r.rounds));
  }
  EXPECT_NEAR(rounds.mean(), 2.0, 1.0);  // geometric with success prob 1/2
}

TEST(FadingAlgorithm, ActiveSetIsNonIncreasing) {
  Rng rng(11);
  const Deployment dep = uniform_square(128, 30.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.stop_on_solve = false;
  config.max_rounds = 200;
  config.record_rounds = true;
  const RunResult r =
      run_execution(dep, algo, *channel, config, rng.split(1));
  std::size_t prev = dep.size();
  for (const RoundStats& s : r.history) {
    EXPECT_LE(s.contending, prev) << "round " << s.round;
    prev = s.contending;
  }
  // With 128 nodes and 200 rounds, contention should collapse to one node.
  EXPECT_EQ(r.history.back().contending, 1u);
}

TEST(FadingAlgorithm, SolvesEveryDeploymentShape) {
  Rng rng(12);
  const std::vector<Deployment> shapes = {
      uniform_square(64, 20.0, rng).normalized(),
      uniform_disk(64, 12.0, rng).normalized(),
      two_clusters(64, 200.0, 3.0, rng).normalized(),
      exponential_chain(64, 1024.0, rng).normalized(),
      ring(64, 30.0, 0.01, rng).normalized(),
      perturbed_grid(8, 8, 4.0, 1.0, rng).normalized(),
  };
  const FadingContentionResolution algo;
  for (const Deployment& dep : shapes) {
    const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
    EngineConfig config;
    config.max_rounds = 5000;
    const RunResult r =
        run_execution(dep, algo, *channel, config, rng.split(dep.size()));
    EXPECT_TRUE(r.solved) << "R=" << dep.link_ratio();
    EXPECT_LT(r.rounds, 5000u);
  }
}

TEST(FadingAlgorithm, HighProbabilitySuccessRate) {
  // Theorem 11 promises success w.h.p. within O(log n + log R) rounds; all
  // trials should finish comfortably within a generous constant * log n.
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(256, 60.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [](const Deployment&) {
        return std::make_unique<FadingContentionResolution>();
      },
      [] {
        TrialConfig c;
        c.trials = 40;
        c.engine.max_rounds = 2000;
        return c;
      }());
  EXPECT_EQ(result.solved, result.trials);
  EXPECT_LT(result.summary().p95, 500.0);
}

}  // namespace
}  // namespace fcr
