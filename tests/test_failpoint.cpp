// Failpoint registry unit tests: deterministic triggers, fcr::Error
// payloads, and the engine seams reacting to armed sites.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/thread_pool.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fcr {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FailpointTest, SiteListIsStable) {
  const auto& s = failpoint::sites();
  ASSERT_EQ(s.size(), 10u);
  EXPECT_NE(std::find(s.begin(), s.end(), "workspace/acquire"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "workspace/teardown"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "pool/claim"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "channel/build"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "checkpoint/write"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "campaign/trial"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "fabric/send"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "fabric/recv"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "fabric/lease_grant"), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), "fabric/heartbeat"), s.end());
}

TEST_F(FailpointTest, UnknownSiteIsRejected) {
  EXPECT_THROW(failpoint::arm("workspace/typo", {}), std::invalid_argument);
}

TEST_F(FailpointTest, ErrorFormatNamesCategoryAndProvenance) {
  TrialProvenance prov;
  prov.failpoint = "pool/claim";
  const Error plain(ErrorCategory::kInjected, "injected failure", prov);
  EXPECT_STREQ(plain.what(), "error[injected] failpoint 'pool/claim': "
                             "injected failure");
  const Error traced = plain.with_task(4).with_trial(99, 4, 2);
  EXPECT_EQ(traced.category(), ErrorCategory::kInjected);
  EXPECT_EQ(traced.provenance().trial, 4u);
  EXPECT_EQ(traced.provenance().master_seed, 99u);
  EXPECT_STREQ(traced.what(),
               "error[injected] trial 4 (seed 99, attempt 2) failpoint "
               "'pool/claim': injected failure");
}

// Everything below needs the hooks compiled in (FCR_FAILPOINTS=ON, the
// default outside Release builds).

TEST_F(FailpointTest, OneShotFiresOnExactHit) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.fire_on_hit = 3;
  failpoint::arm("campaign/trial", spec);
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
  EXPECT_THROW(failpoint::detail::hit("campaign/trial"), Error);
  // One-shot: hit 4 and later pass again.
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
  EXPECT_EQ(failpoint::hit_count("campaign/trial"), 4u);
}

TEST_F(FailpointTest, PeriodicFiresEveryNth) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.every = 3;
  failpoint::arm("campaign/trial", spec);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    try {
      failpoint::detail::hit("campaign/trial");
    } catch (const Error&) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, HashTriggerIsDeterministicInSeed) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  const auto fire_pattern = [](std::uint64_t seed) {
    failpoint::Spec spec;
    spec.hash_period = 4;
    spec.seed = seed;
    failpoint::arm("campaign/trial", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        failpoint::detail::hit("campaign/trial");
        fired.push_back(false);
      } catch (const Error&) {
        fired.push_back(true);
      }
    }
    failpoint::disarm("campaign/trial");
    return fired;
  };
  const auto a1 = fire_pattern(7);
  const auto a2 = fire_pattern(7);
  const auto b = fire_pattern(8);
  EXPECT_EQ(a1, a2) << "same seed must fire identically";
  EXPECT_NE(a1, b) << "different seeds must differ (w.h.p. over 64 hits)";
  const auto hits = static_cast<std::size_t>(
      std::count(a1.begin(), a1.end(), true));
  EXPECT_GT(hits, 4u);   // ~16 expected at period 4
  EXPECT_LT(hits, 40u);
}

TEST_F(FailpointTest, BadAllocActionThrowsBadAlloc) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.action = failpoint::Action::kBadAlloc;
  failpoint::arm("campaign/trial", spec);
  EXPECT_THROW(failpoint::detail::hit("campaign/trial"), std::bad_alloc);
}

TEST_F(FailpointTest, DisarmedSiteIsSilent) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::arm("campaign/trial", {});
  failpoint::disarm("campaign/trial");
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
  EXPECT_EQ(failpoint::hit_count("campaign/trial"), 0u);
}

TEST_F(FailpointTest, InjectedErrorCarriesSiteName) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::arm("campaign/trial", {});
  try {
    failpoint::detail::hit("campaign/trial");
    FAIL() << "expected an injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInjected);
    EXPECT_EQ(e.provenance().failpoint, "campaign/trial");
  }
}

// ------------------------------------------------ spec grammar / env arming

TEST_F(FailpointTest, SpecStringArmsMultipleSites) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  EXPECT_EQ(failpoint::arm_from_spec(
                "fabric/send=drop:every=2;campaign/trial=throw:hit=1"),
            2u);
  // fabric/send fires on every second transport hit with a drop fault.
  EXPECT_FALSE(failpoint::transport_hit("fabric/send").has_value());
  const auto fault = failpoint::transport_hit("fabric/send");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->action, failpoint::Action::kDrop);
  // campaign/trial got the plain throw action.
  EXPECT_THROW(failpoint::detail::hit("campaign/trial"), Error);
}

TEST_F(FailpointTest, SpecStringParsesAllKeys) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  EXPECT_EQ(failpoint::arm_from_spec(
                "fabric/recv=delay:hash=3,seed=11,delay=1"),
            1u);
  // Deterministic in (seed, hit index): two registries armed identically
  // produce the same firing pattern.
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) {
    first.push_back(failpoint::transport_hit("fabric/recv").has_value());
  }
  failpoint::disarm_all();
  ASSERT_EQ(failpoint::arm_from_spec(
                "fabric/recv=delay:hash=3,seed=11,delay=1"),
            1u);
  std::vector<bool> second;
  for (int i = 0; i < 32; ++i) {
    second.push_back(failpoint::transport_hit("fabric/recv").has_value());
  }
  EXPECT_EQ(first, second);
}

TEST_F(FailpointTest, MalformedSpecArmsNothing) {
  // Parse-before-arm: a bad tail must not leave a half-armed registry.
  EXPECT_THROW(
      failpoint::arm_from_spec("campaign/trial=throw:hit=1;bogus-entry"),
      std::invalid_argument);
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
  EXPECT_THROW(failpoint::arm_from_spec("fabric/send=never-an-action"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("fabric/send=drop:hit=x"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("fabric/send=drop:mystery=1"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("no/such/site=drop:every=1"),
               std::invalid_argument);
}

TEST_F(FailpointTest, ArmFromEnvReadsTheSpecVariable) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  ::unsetenv("FCR_FAILPOINT_SPEC");
  EXPECT_EQ(failpoint::arm_from_env(), 0u);
  ::setenv("FCR_FAILPOINT_SPEC", "fabric/heartbeat=drop:every=1", 1);
  EXPECT_EQ(failpoint::arm_from_env(), 1u);
  const auto fault = failpoint::transport_hit("fabric/heartbeat");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->action, failpoint::Action::kDrop);
  ::unsetenv("FCR_FAILPOINT_SPEC");
}

TEST_F(FailpointTest, TransportActionAtEngineSiteIsIgnored) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.action = failpoint::Action::kDrop;
  spec.every = 1;
  failpoint::arm("campaign/trial", spec);
  // There is no frame to drop at an engine seam; the hit must be a no-op
  // rather than an exception or an abort.
  EXPECT_NO_THROW(failpoint::detail::hit("campaign/trial"));
}

TEST_F(FailpointTest, EngineActionAtTransportSiteThrowsFromTransportHit) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.action = failpoint::Action::kThrow;
  spec.every = 1;
  failpoint::arm("fabric/lease_grant", spec);
  try {
    failpoint::transport_hit("fabric/lease_grant");
    FAIL() << "expected the injected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInjected);
    EXPECT_EQ(e.provenance().failpoint, "fabric/lease_grant");
  }
}

// ----------------------------------------------------- engine seam wiring

DeploymentFactory tiny_uniform() {
  return [](Rng& rng) { return uniform_square(16, 8.0, rng).normalized(); };
}

AlgorithmFactory fading_factory() {
  return [](const Deployment&) {
    return std::make_unique<FadingContentionResolution>();
  };
}

TEST_F(FailpointTest, PoolClaimFaultSurfacesThroughForEach) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::Spec spec;
  spec.fire_on_hit = 2;
  failpoint::arm("pool/claim", spec);
  try {
    ThreadPool::global().for_each(8, [](std::size_t) {}, 2);
    FAIL() << "expected the injected claim fault to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInjected);
    EXPECT_EQ(e.provenance().failpoint, "pool/claim");
    EXPECT_NE(e.provenance().task, kNoIndex) << "failed task index attached";
  }
}

TEST_F(FailpointTest, WorkspaceAcquireFaultAbortsParallelBatchWithProvenance) {
  if (!failpoint::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::arm("workspace/acquire", {});
  TrialConfig config;
  config.trials = 4;
  config.engine.max_rounds = 2000;
  try {
    run_trials_parallel(tiny_uniform(), sinr_channel_factory(3.0, 1.5, 1e-9),
                        fading_factory(), config, 2);
    FAIL() << "expected the injected workspace fault to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInjected);
    EXPECT_EQ(e.provenance().failpoint, "workspace/acquire");
    EXPECT_TRUE(e.provenance().has_seed);
    EXPECT_EQ(e.provenance().master_seed, config.seed);
    EXPECT_NE(e.provenance().trial, kNoIndex);
  }
  failpoint::disarm_all();
  // The workspace released its state despite the fault: a clean batch on
  // the same thread pool succeeds afterwards.
  const auto result =
      run_trials_parallel(tiny_uniform(), sinr_channel_factory(3.0, 1.5, 1e-9),
                          fading_factory(), config, 2);
  EXPECT_EQ(result.trials, 4u);
  EXPECT_EQ(result.solved, 4u);
}

}  // namespace
}  // namespace fcr
