// Fault-injection tests: crash-stop wrapper, lossy channel decorator, and
// the energy-budgeted jamming adversary.
#include <gtest/gtest.h>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/faults.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "stats/summary.hpp"

namespace fcr {
namespace {

// ------------------------------------------------------------------- crash

TEST(CrashFaults, ZeroRateIsTransparent) {
  auto inner = std::make_shared<FadingContentionResolution>();
  const CrashFaults wrapped(inner, 0.0);
  const auto node = wrapped.make_node(0, Rng(1));
  for (std::uint64_t r = 1; r <= 200; ++r) {
    node->on_round_begin(r);
    node->on_round_end(Feedback{});
  }
  EXPECT_TRUE(node->is_contending());
}

TEST(CrashFaults, CrashedNodesGoSilentForever) {
  auto inner = std::make_shared<FadingContentionResolution>(0.9);
  const CrashFaults wrapped(inner, 0.5);
  const auto node = wrapped.make_node(0, Rng(2));
  // With f = 0.5 the node crashes within a few rounds w.h.p.
  bool crashed = false;
  for (std::uint64_t r = 1; r <= 100; ++r) {
    node->on_round_begin(r);
    node->on_round_end(Feedback{});
    if (!node->is_contending()) {
      crashed = true;
      break;
    }
  }
  ASSERT_TRUE(crashed);
  for (std::uint64_t r = 101; r <= 200; ++r) {
    EXPECT_EQ(node->on_round_begin(r), Action::kListen);
    node->on_round_end(Feedback{});
    EXPECT_FALSE(node->is_contending());
  }
}

TEST(CrashFaults, ModerateCrashRateStillSolvesUsually) {
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(96, 20.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [](const Deployment&) {
        return std::make_unique<CrashFaults>(
            std::make_shared<FadingContentionResolution>(), 0.01);
      },
      [] {
        TrialConfig c;
        c.trials = 30;
        c.engine.max_rounds = 5000;
        return c;
      }());
  // A trial fails only if every node crashes before any solo round; with
  // f = 1% and ~10-round completions this is rare but possible.
  EXPECT_GE(result.solve_rate(), 0.9);
  if (!result.rounds.empty()) {
    EXPECT_LT(result.summary().median, 100.0);
  }
}

TEST(CrashFaults, Validation) {
  auto inner = std::make_shared<FadingContentionResolution>();
  EXPECT_THROW(CrashFaults(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(CrashFaults(inner, 1.0), std::invalid_argument);
  EXPECT_THROW(CrashFaults(inner, -0.1), std::invalid_argument);
  EXPECT_NE(CrashFaults(inner, 0.25).name().find("f=0.25"),
            std::string::npos);
}

// ------------------------------------------------------------------- lossy

TEST(LossyChannel, ZeroDropIsTransparent) {
  const Deployment dep = single_pair(2.0);
  SinrParams params;
  params.alpha = 3.0;
  params.beta = 1.5;
  params.noise = 0.0;
  params.power = 1.0;
  const LossyChannelAdapter lossy(make_sinr_adapter(params), 0.0, Rng(3));
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  lossy.resolve(dep, tx, listeners, fb);
  EXPECT_TRUE(fb[0].received);
  EXPECT_EQ(fb[0].sender, 0u);
}

TEST(LossyChannel, DropRateMatchesQ) {
  const Deployment dep = single_pair(2.0);
  SinrParams params;
  params.alpha = 3.0;
  params.beta = 1.5;
  params.noise = 0.0;
  params.power = 1.0;
  const double q = 0.3;
  const LossyChannelAdapter lossy(make_sinr_adapter(params), q, Rng(4));
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  int delivered = 0;
  const int rounds = 10000;
  for (int r = 0; r < rounds; ++r) {
    lossy.resolve(dep, tx, listeners, fb);
    if (fb[0].received) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / rounds, 1.0 - q, 0.02);
}

TEST(LossyChannel, DroppedDecodeDowngradesObservation) {
  // On a CD-capable inner channel the dropped decode leaves a collision
  // observation; on a plain one, silence.
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1, 2};
  std::vector<Feedback> fb(2);

  const LossyChannelAdapter cd(make_radio_adapter(true), 0.999999, Rng(5));
  cd.resolve(dep, tx, listeners, fb);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kCollision);
  }

  const LossyChannelAdapter plain(make_radio_adapter(false), 0.999999, Rng(6));
  plain.resolve(dep, tx, listeners, fb);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kSilence);
  }
}

TEST(LossyChannel, AlgorithmSlowsGracefullyWithLoss) {
  auto run_with_q = [](double q) {
    return run_trials(
        [](Rng& rng) { return uniform_square(96, 20.0, rng).normalized(); },
        [q](const Deployment& dep) -> std::unique_ptr<ChannelAdapter> {
          const SinrParams params =
              SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
          return std::make_unique<LossyChannelAdapter>(
              make_sinr_adapter(params), q, Rng(77));
        },
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        [] {
          TrialConfig c;
          c.trials = 20;
          c.engine.max_rounds = 20000;
          return c;
        }());
  };
  const auto clean = run_with_q(0.0);
  const auto lossy = run_with_q(0.5);
  EXPECT_EQ(clean.solved, clean.trials);
  EXPECT_EQ(lossy.solved, lossy.trials);
  // Half the knockouts vanish: completion slows, but by a small factor.
  EXPECT_LT(lossy.summary().median, 4.0 * clean.summary().median + 10.0);
}

TEST(LossyChannel, Validation) {
  EXPECT_THROW(LossyChannelAdapter(nullptr, 0.1, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(LossyChannelAdapter(make_radio_adapter(false), 1.0, Rng(1)),
               std::invalid_argument);
}

// ----------------------------------------------------------------- jamming

TEST(JammingChannel, ZeroBudgetIsTransparent) {
  const Deployment dep = single_pair(2.0);
  SinrParams params;
  params.alpha = 3.0;
  params.beta = 1.5;
  params.noise = 0.0;
  params.power = 1.0;
  const JammingChannelAdapter jam(make_sinr_adapter(params), {}, Rng(7));
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  for (int r = 0; r < 200; ++r) {
    jam.resolve(dep, tx, listeners, fb);
    EXPECT_TRUE(fb[0].received);
    EXPECT_EQ(fb[0].sender, 0u);
  }
  EXPECT_EQ(jam.jammed_rounds(), 0u);
}

TEST(JammingChannel, SpendsExactlyItsBudgetInBursts) {
  const Deployment dep = single_pair(2.0);
  JammingSchedule sched;
  sched.budget = 10;
  sched.burst = 3;
  sched.min_gap = 2;
  sched.max_gap = 5;
  const JammingChannelAdapter jam(make_radio_adapter(false),
                                  sched, Rng(8));
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  std::vector<bool> jammed;
  for (int r = 0; r < 300; ++r) {
    jam.resolve(dep, tx, listeners, fb);
    jammed.push_back(!fb[0].received);
  }
  EXPECT_EQ(jam.jammed_rounds(), sched.budget);
  // Bursts are contiguous runs of length <= burst, separated by gaps of
  // at least min_gap clear rounds; round 1 is never jammed (initial gap).
  EXPECT_FALSE(jammed.front());
  std::size_t run = 0, gap = 0;
  bool prev = false;
  for (const bool j : jammed) {
    if (j) {
      if (prev) {
        ++run;
      } else {
        EXPECT_GE(gap, sched.min_gap) << "burst opened before the gap ended";
        run = 1;
      }
      EXPECT_LE(run, sched.burst);
    } else {
      gap = prev ? 1 : gap + 1;
    }
    prev = j;
  }
}

TEST(JammingChannel, JammedRoundObservationDependsOnCd) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1, 2};
  std::vector<Feedback> fb(2);
  JammingSchedule sched;
  sched.budget = 1000;
  sched.burst = 1000;  // jam continuously once the first gap passes
  auto drain_to_jam = [&](const JammingChannelAdapter& jam) {
    // The first round burns the initial gap; the second is jammed.
    jam.resolve(dep, tx, listeners, fb);
    jam.resolve(dep, tx, listeners, fb);
  };

  const JammingChannelAdapter cd(make_radio_adapter(true), sched, Rng(9));
  drain_to_jam(cd);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kCollision);
  }

  const JammingChannelAdapter plain(make_radio_adapter(false), sched, Rng(9));
  drain_to_jam(plain);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kSilence);
  }
}

TEST(JammingChannel, BudgetedJammerDelaysButCannotPreventSolving) {
  auto run_with_budget = [](std::uint64_t budget) {
    return run_trials(
        [](Rng& rng) { return uniform_square(96, 20.0, rng).normalized(); },
        [budget](const Deployment& dep) -> std::unique_ptr<ChannelAdapter> {
          const SinrParams params =
              SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
          JammingSchedule sched;
          sched.budget = budget;
          sched.burst = 4;
          sched.min_gap = 2;
          sched.max_gap = 6;
          return std::make_unique<JammingChannelAdapter>(
              make_sinr_adapter(params), sched, Rng(99));
        },
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        [] {
          TrialConfig c;
          c.trials = 20;
          c.engine.max_rounds = 20000;
          return c;
        }());
  };
  const auto clean = run_with_budget(0);
  const auto jammed = run_with_budget(64);
  // Solving is a property of the transmit pattern, so a finite-budget
  // jammer can starve feedback but never block the solo round forever.
  EXPECT_EQ(clean.solved, clean.trials);
  EXPECT_EQ(jammed.solved, jammed.trials);
  EXPECT_GE(jammed.summary().median, clean.summary().median);
}

TEST(JammingChannel, Validation) {
  JammingSchedule bad;
  EXPECT_THROW(JammingChannelAdapter(nullptr, bad, Rng(1)),
               std::invalid_argument);
  bad.burst = 0;
  EXPECT_THROW(JammingChannelAdapter(make_radio_adapter(false), bad, Rng(1)),
               std::invalid_argument);
  bad.burst = 1;
  bad.min_gap = 0;
  EXPECT_THROW(JammingChannelAdapter(make_radio_adapter(false), bad, Rng(1)),
               std::invalid_argument);
  bad.min_gap = 5;
  bad.max_gap = 2;
  EXPECT_THROW(JammingChannelAdapter(make_radio_adapter(false), bad, Rng(1)),
               std::invalid_argument);
  JammingSchedule ok;
  ok.budget = 7;
  ok.burst = 2;
  ok.min_gap = 1;
  ok.max_gap = 3;
  const JammingChannelAdapter jam(make_radio_adapter(false), ok, Rng(1));
  EXPECT_NE(jam.name().find("budget=7"), std::string::npos);
  EXPECT_NE(jam.name().find("gap=[1,3]"), std::string::npos);
}

}  // namespace
}  // namespace fcr
