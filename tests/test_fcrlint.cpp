// Unit tests for the fcrlint rule engine (tools/fcrlint_rules.hpp): the
// masking pass, each rule in isolation, the allow-annotation grammar, and
// end-to-end lint_file runs over the fixture inputs in tests/fcrlint/.
//
// Test inputs that contain banned tokens are built as string literals; the
// engine masks string literals before scanning, so this file itself stays
// clean under the tree-wide fcrlint_tree test.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_rules.hpp"

namespace {

using fcrlint::Finding;
using fcrlint::lint_file;
using fcrlint::mask_comments_and_strings;
using fcrlint::mask_strings;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FCRLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------------------ masking

TEST(FcrlintMask, BlanksCommentsAndStringsButKeepsLines) {
  const std::string src =
      "int a; // trailing comment\n"
      "/* block\n   comment */ int b;\n"
      "const char* s = \"masked contents\";\n";
  const std::string masked = mask_comments_and_strings(src);
  EXPECT_EQ(masked.size(), src.size());
  EXPECT_EQ(std::count(masked.begin(), masked.end(), '\n'), 4);
  EXPECT_EQ(masked.find("comment"), std::string::npos);
  EXPECT_EQ(masked.find("masked contents"), std::string::npos);
  EXPECT_NE(masked.find("int a;"), std::string::npos);
  EXPECT_NE(masked.find("int b;"), std::string::npos);
}

TEST(FcrlintMask, HandlesRawStringsEscapesAndCharLiterals) {
  const std::string src =
      "auto r = R\"(raw with \" quote)\";\n"
      "char c = '\\\"';\n"
      "const char* t = \"esc \\\" still string\";\n"
      "int after = 1;\n";
  const std::string masked = mask_comments_and_strings(src);
  EXPECT_EQ(masked.find("raw with"), std::string::npos);
  EXPECT_EQ(masked.find("still string"), std::string::npos);
  EXPECT_NE(masked.find("int after = 1;"), std::string::npos);
}

TEST(FcrlintMask, DigitSeparatorsAreNotCharLiterals) {
  const std::string src = "const long big = 1'000'000; int next = 2;\n";
  EXPECT_NE(mask_comments_and_strings(src).find("int next = 2;"),
            std::string::npos);
}

TEST(FcrlintMask, MaskStringsKeepsComments) {
  const std::string src = "// keep me\nconst char* s = \"drop me\";\n";
  const std::string masked = mask_strings(src);
  EXPECT_NE(masked.find("keep me"), std::string::npos);
  EXPECT_EQ(masked.find("drop me"), std::string::npos);
}

// -------------------------------------------------------------- determinism

TEST(FcrlintDeterminism, FlagsEntropyAndWallClockSources) {
  const std::string src =
      "#include <cstdlib>\n"
      "long f() {\n"
      "  std::random_device rd;\n"                 // line 3
      "  std::srand(7);\n"                         // line 4
      "  long t = time(nullptr);\n"                // line 5
      "  auto n = std::chrono::steady_clock::now();\n"  // line 6
      "  (void)n;\n"
      "  return std::rand() + t + rd();\n"         // line 8: rand (rd( is fine)
      "}\n";
  const auto findings = lint_file("src/sim/clocky.cpp", src);
  EXPECT_EQ(count_rule(findings, "determinism"), 5);
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == "determinism") lines.push_back(f.line);
  }
  EXPECT_EQ(lines, (std::vector<int>{3, 4, 5, 6, 8}));
}

TEST(FcrlintDeterminism, SkipsCommentsStringsAndSimilarIdentifiers) {
  const std::string src =
      "// std::rand() and time(nullptr) discussed in prose\n"
      "const char* s = \"random_device\";\n"
      "std::uint64_t run_time(int x);\n"   // suffix of banned token: fine
      "int timestamp = 0;\n"               // prefix: fine
      "double now_estimate(int);\n"        // 'now' not followed by '('
      "int f() { return timestamp; }\n";
  const auto findings = lint_file("src/core/ok.cpp", src);
  EXPECT_EQ(count_rule(findings, "determinism"), 0);
}

TEST(FcrlintDeterminism, ExemptsRngImplementationAndNonSrcTrees) {
  const std::string src = "int f() { std::random_device rd; return rd(); }\n";
  EXPECT_EQ(count_rule(lint_file("src/util/rng.cpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("src/util/rng.hpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("tests/test_x.cpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("src/radio/x.cpp", src), "determinism"), 1);
}

TEST(FcrlintDeterminism, AllowAnnotationSuppressesLine) {
  const std::string allow_same_line =
      "long t = time(nullptr);  // FCRLINT_ALLOW(determinism): fixture\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/a.cpp", allow_same_line),
                       "determinism"),
            0);
  const std::string allow_line_above =
      "// FCRLINT_ALLOW(determinism): fixture needs the wall clock\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/b.cpp", allow_line_above),
                       "determinism"),
            0);
  const std::string allow_too_far =
      "// FCRLINT_ALLOW(determinism): too far away to apply\n"
      "int unrelated = 0;\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/c.cpp", allow_too_far),
                       "determinism"),
            1);
}

// --------------------------------------------------------------- sinr-float

TEST(FcrlintSinrFloat, FlagsFloatOnlyUnderSinr) {
  const std::string src = "float narrow(float x) { return x; }\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/margin.cpp", src), "sinr-float"), 2);
  EXPECT_EQ(count_rule(lint_file("src/geom/margin.cpp", src), "sinr-float"), 0);
}

TEST(FcrlintSinrFloat, TokenBoundariesRespected) {
  const std::string src =
      "double floater = 1.0;\n"
      "int float_count = 2;\n"
      "// float in a comment\n"
      "double f() { return floater + float_count; }\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/ok.cpp", src), "sinr-float"), 0);
}

// --------------------------------------------------------------- ensure-arg

TEST(FcrlintEnsureArg, FlagsValidationFreeApiImplementations) {
  const std::string bare = "namespace fcr { int api(int x) { return x; } }\n";
  const auto findings = lint_file("src/core/api.cpp", bare);
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 1);
  // Headers and out-of-src files are out of scope.
  EXPECT_EQ(count_rule(lint_file("src/core/api.hpp", bare), "ensure-arg"), 0);
  EXPECT_EQ(count_rule(lint_file("bench/api.cpp", bare), "ensure-arg"), 0);
}

TEST(FcrlintEnsureArg, ValidationOrReasonedAllowSatisfiesRule) {
  const std::string validated =
      "#include \"util/check.hpp\"\n"
      "namespace fcr { int api(int x) {\n"
      "  FCR_ENSURE_ARG(x >= 0, \"x\");\n"
      "  return x; } }\n";
  EXPECT_EQ(count_rule(lint_file("src/core/api.cpp", validated), "ensure-arg"),
            0);
  const std::string allowed =
      "// FCRLINT_ALLOW(ensure-arg): pure arithmetic, every input valid\n"
      "namespace fcr { int api(int x) { return x; } }\n";
  EXPECT_EQ(count_rule(lint_file("src/core/api.cpp", allowed), "ensure-arg"),
            0);
}

// -------------------------------------------------------------- pragma-once

TEST(FcrlintPragmaOnce, RequiresPragmaInHeaders) {
  const std::string guarded = "#ifndef X\n#define X\nint f();\n#endif\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/g.hpp", guarded), "pragma-once"), 1);
  const std::string pragmad = "// docs\n#pragma once\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/g.hpp", pragmad), "pragma-once"), 0);
  // Non-headers are out of scope, and a pragma mentioned in a comment does
  // not count as one.
  EXPECT_EQ(count_rule(lint_file("src/geom/g.cpp", guarded), "pragma-once"), 0);
  const std::string commented = "// #pragma once\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/h.hpp", commented), "pragma-once"),
            1);
}

// ---------------------------------------------------------- include-hygiene

TEST(FcrlintIncludeHygiene, FlagsRelativeBitsAndDeprecatedC) {
  const std::string src =
      "#include <math.h>\n"
      "#include <bits/stdc++.h>\n"
      "#include \"../core/theory.hpp\"\n"
      "#include <cmath>\n"
      "#include \"util/check.hpp\"\n";
  const auto findings = lint_file("tools/x.cpp", src);
  EXPECT_EQ(count_rule(findings, "include-hygiene"), 3);
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == "include-hygiene") lines.push_back(f.line);
  }
  EXPECT_EQ(lines, (std::vector<int>{1, 2, 3}));
  EXPECT_NE(findings[0].message.find("<cmath>"), std::string::npos);
}

// ------------------------------------------------------------- allow-syntax

TEST(FcrlintAllowSyntax, MalformedAnnotationsAreFindings) {
  // These markers live inside C++ string literals, which the engine masks
  // before annotation parsing — so this test file stays clean under the
  // tree-wide fcrlint_tree scan while the lint_file inputs exercise the
  // malformed shapes.
  const std::string unknown_rule =
      "// FCRLINT_ALLOW(no-such-rule): reason\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/x/a.cpp", unknown_rule), "allow-syntax"),
            1);
  const std::string no_reason = "// FCRLINT_ALLOW(determinism):\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/x/b.cpp", no_reason), "allow-syntax"), 1);
  const std::string no_colon = "// FCRLINT_ALLOW(determinism) oops\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/x/c.cpp", no_colon), "allow-syntax"), 1);
  const std::string fine =
      "// FCRLINT_ALLOW(determinism): legitimate documented reason\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/x/d.cpp", fine), "allow-syntax"), 0);
}

TEST(FcrlintAllowSyntax, MarkersInsideStringLiteralsAreIgnored) {
  const std::string src =
      "const char* help = \"suppress with FCRLINT_ALLOW(<rule>): <reason>\";\n";
  EXPECT_EQ(count_rule(lint_file("src/x/help.cpp", src), "allow-syntax"), 0);
}

// ------------------------------------------------------- fixtures on disk

TEST(FcrlintFixtures, BadDeterminismFixture) {
  const auto findings = lint_file("src/sim/bad_determinism.cpp",
                                  read_fixture("bad_determinism.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "determinism"), 5);
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 0);
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{14, 15, 16, 17, 18}));
}

TEST(FcrlintFixtures, BadSinrFloatFixture) {
  const auto findings = lint_file("src/sinr/bad_sinr_float.cpp",
                                  read_fixture("bad_sinr_float.cpp.txt"));
  // Line 10 declares a float and casts to float: two findings, same line.
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"sinr-float", "sinr-float"}));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_EQ(findings[1].line, 10);
}

TEST(FcrlintFixtures, MissingPragmaFixture) {
  const auto findings = lint_file("src/geom/missing_pragma.hpp",
                                  read_fixture("missing_pragma.hpp.txt"));
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"pragma-once"}));
}

TEST(FcrlintFixtures, BadIncludesFixture) {
  const auto findings = lint_file("src/core/bad_includes.cpp",
                                  read_fixture("bad_includes.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "include-hygiene"), 3);
}

TEST(FcrlintFixtures, BadAllowFixture) {
  const auto findings = lint_file("src/ext/bad_allow.cpp",
                                  read_fixture("bad_allow.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "allow-syntax"), 4);
  // The one well-formed annotation suppresses ensure-arg for the file.
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 0);
}

TEST(FcrlintFixtures, CleanFixtureHasNoFindings) {
  const auto findings =
      lint_file("src/core/clean_api.cpp", read_fixture("clean_api.cpp.txt"));
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

}  // namespace
