// Unit tests for the fcrlint v2 engine: the token lexer
// (tools/fcrlint_lexer.hpp), every rule in tools/fcrlint_rules.hpp — the six
// ported ones plus layering, fp-accumulate, lock-discipline, rng-flow — the
// allow-annotation grammar, the SARIF serializer, the unified-diff filter,
// and end-to-end lint_file/lint_tree runs over the fixtures in
// tests/fcrlint/.
//
// Test inputs that contain banned tokens are built as C++ string literals;
// the lexer turns literals into opaque tokens, so this file itself stays
// clean under the tree-wide fcrlint_tree test.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_diff.hpp"
#include "fcrlint_rules.hpp"
#include "fcrlint_sarif.hpp"

namespace {

using fcrlint::Finding;
using fcrlint::lex;
using fcrlint::lint_file;
using fcrlint::lint_tree;
using fcrlint::Token;
using fcrlint::TokKind;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<int> lines_of(const std::vector<Finding>& findings,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FCRLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// -------------------------------------------------------------------- lexer

TEST(FcrlintLexer, TokenKindsAndLines) {
  const auto toks = lex("int x = 42;  // trailing\n/* block */ double y;\n");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_TRUE(toks[0].ident("int"));
  EXPECT_TRUE(toks[1].ident("x"));
  EXPECT_TRUE(toks[2].punct("="));
  EXPECT_TRUE(toks[3].is(TokKind::kNumber, "42"));
  EXPECT_TRUE(toks[4].punct(";"));
  EXPECT_EQ(toks[5].kind, TokKind::kLineComment);
  EXPECT_EQ(toks[5].line, 1);
  EXPECT_EQ(toks[6].kind, TokKind::kBlockComment);
  EXPECT_EQ(toks[6].line, 2);
  EXPECT_TRUE(toks[7].ident("double"));
  EXPECT_EQ(toks[7].line, 2);
}

TEST(FcrlintLexer, RawStringsAreSingleOpaqueTokens) {
  const auto toks =
      lex("auto s = R\"tag(has \" and )\" and rand() inside)tag\"; int a;\n");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_TRUE(toks[0].ident("auto"));
  EXPECT_EQ(toks[3].kind, TokKind::kRawString);
  EXPECT_NE(toks[3].text.find("rand() inside"), std::string::npos);
  EXPECT_TRUE(toks[4].punct(";"));
  EXPECT_TRUE(toks[5].ident("int"));
}

TEST(FcrlintLexer, EncodingPrefixesMergeWithLiterals) {
  const auto toks = lex("auto a = u8\"x\"; auto c = L'y';\n");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_TRUE(toks[3].is(TokKind::kString, "u8\"x\""));
  EXPECT_TRUE(toks[8].is(TokKind::kChar, "L'y'"));
}

TEST(FcrlintLexer, SplicedLineCommentSwallowsContinuation) {
  const auto toks = lex("// first \\\nstill comment\nint z;\n");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::kLineComment);
  EXPECT_NE(toks[0].text.find("still comment"), std::string::npos);
  EXPECT_TRUE(toks[1].ident("int"));
  EXPECT_EQ(toks[1].line, 3);
}

TEST(FcrlintLexer, MultiLineBlockCommentCountsLines) {
  const auto toks = lex("/* a\n b\n c */ int z;\n");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::kBlockComment);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_TRUE(toks[1].ident("int"));
  EXPECT_EQ(toks[1].line, 3);
}

TEST(FcrlintLexer, MaximalMunchPunctuation) {
  const auto toks = lex("a<<=b->*c::d+=e\n");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_TRUE(toks[1].punct("<<="));
  EXPECT_TRUE(toks[3].punct("->*"));
  EXPECT_TRUE(toks[5].punct("::"));
  EXPECT_TRUE(toks[7].punct("+="));
}

TEST(FcrlintLexer, PpNumbersWithSeparatorsAndExponents) {
  const auto toks = lex("1'000'000 0x1p-3 1e+9\n");
  ASSERT_EQ(toks.size(), 3u);
  for (const Token& t : toks) EXPECT_EQ(t.kind, TokKind::kNumber);
  EXPECT_EQ(toks[0].text, "1'000'000");
  EXPECT_EQ(toks[1].text, "0x1p-3");
}

TEST(FcrlintLexer, HeaderNamesOnlyAfterInclude) {
  const auto toks = lex(
      "#include <bits/stdc++.h>\n"
      "#include \"util/x.hpp\"\n"
      "int a = b < c > d;\n");
  std::vector<std::string> headers;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kHeaderName) headers.push_back(t.text);
  }
  EXPECT_EQ(headers, (std::vector<std::string>{"<bits/stdc++.h>",
                                               "\"util/x.hpp\""}));
}

TEST(FcrlintLexer, DirectiveHashIsMarked) {
  const auto toks = lex("#pragma once\nint a[1]; int b = a # 0;\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_TRUE(toks[0].punct("#"));
  EXPECT_TRUE(toks[0].directive);
  // The mid-line hash (ill-formed C++, but the lexer must not care) is not
  // a directive.
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].punct("#")) {
      EXPECT_FALSE(toks[i].directive);
    }
  }
}

TEST(FcrlintLexer, EscapedNewlineContinuesStringLiteral) {
  const auto toks = lex("const char* s = \"a\\\nb\";\nint after;\n");
  std::size_t after = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].ident("after")) after = i;
  }
  ASSERT_NE(after, 0u);
  EXPECT_EQ(toks[after].line, 3);
}

// -------------------------------------------------------------- determinism

TEST(FcrlintDeterminism, FlagsEntropyAndWallClockSources) {
  const std::string src =
      "#include <cstdlib>\n"
      "long f() {\n"
      "  std::random_device rd;\n"                 // line 3
      "  std::srand(7);\n"                         // line 4
      "  long t = time(nullptr);\n"                // line 5
      "  auto n = std::chrono::steady_clock::now();\n"  // line 6
      "  (void)n;\n"
      "  return std::rand() + t + rd();\n"         // line 8: rand (rd( is fine)
      "}\n";
  const auto findings = lint_file("src/sim/clocky.cpp", src);
  EXPECT_EQ(lines_of(findings, "determinism"), (std::vector<int>{3, 4, 5, 6, 8}));
}

TEST(FcrlintDeterminism, SkipsCommentsStringsAndSimilarIdentifiers) {
  const std::string src =
      "// std::rand() and time(nullptr) discussed in prose\n"
      "const char* s = \"random_device\";\n"
      "std::uint64_t run_time(int x);\n"   // suffix of banned token: fine
      "int timestamp = 0;\n"               // prefix: fine
      "double now_estimate(int);\n"        // 'now' not followed by '('
      "int f() { return timestamp; }\n";
  const auto findings = lint_file("src/core/ok.cpp", src);
  EXPECT_EQ(count_rule(findings, "determinism"), 0);
}

TEST(FcrlintDeterminism, MultiLineBlockCommentIsOpaque) {
  // The v1 line scanner masked per line; a banned token on the second line
  // of a block comment was a blind spot.
  const std::string src =
      "/* discussion spanning lines:\n"
      "   std::random_device and time(nullptr) both banned in code\n"
      "   but fine here */\n"
      "int f() { return 0; }\n";
  EXPECT_EQ(count_rule(lint_file("src/core/doc.cpp", src), "determinism"), 0);
}

TEST(FcrlintDeterminism, RawStringIsOpaque) {
  const std::string src =
      "const char* doc = R\"(calls time(nullptr) and rand())\";\n";
  EXPECT_EQ(count_rule(lint_file("src/core/raw.cpp", src), "determinism"), 0);
}

TEST(FcrlintDeterminism, ExemptsRngImplementationAndNonSrcTrees) {
  const std::string src = "int f() { std::random_device rd; return rd(); }\n";
  EXPECT_EQ(count_rule(lint_file("src/util/rng.cpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("src/util/rng.hpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("tests/test_x.cpp", src), "determinism"), 0);
  EXPECT_EQ(count_rule(lint_file("src/radio/x.cpp", src), "determinism"), 1);
}

TEST(FcrlintDeterminism, AllowAnnotationSuppressesLine) {
  const std::string allow_same_line =
      "long t = time(nullptr);  // FCRLINT_ALLOW(determinism): fixture\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/a.cpp", allow_same_line),
                       "determinism"),
            0);
  const std::string allow_line_above =
      "// FCRLINT_ALLOW(determinism): fixture needs the wall clock\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/b.cpp", allow_line_above),
                       "determinism"),
            0);
  const std::string allow_too_far =
      "// FCRLINT_ALLOW(determinism): too far away to apply\n"
      "int unrelated = 0;\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/c.cpp", allow_too_far),
                       "determinism"),
            1);
}

TEST(FcrlintDeterminism, AllowInsideBlockCommentUsesMarkerLine) {
  // The marker sits on the block comment's SECOND physical line, directly
  // above the offending code — exact line attribution inside multi-line
  // comments is what the lexer port bought us.
  const std::string src =
      "/* explanation first,\n"
      "   FCRLINT_ALLOW(determinism): fixture needs the wall clock */\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/d.cpp", src), "determinism"), 0);
}

// --------------------------------------------------------------- sinr-float

TEST(FcrlintSinrFloat, FlagsFloatOnlyUnderSinr) {
  const std::string src = "float narrow(float x) { return x; }\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/margin.cpp", src), "sinr-float"), 2);
  EXPECT_EQ(count_rule(lint_file("src/geom/margin.cpp", src), "sinr-float"), 0);
}

TEST(FcrlintSinrFloat, TokenBoundariesRespected) {
  const std::string src =
      "double floater = 1.0;\n"
      "int float_count = 2;\n"
      "// float in a comment\n"
      "double f() { return floater + float_count; }\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/ok.cpp", src), "sinr-float"), 0);
}

// --------------------------------------------------------------- ensure-arg

TEST(FcrlintEnsureArg, FlagsValidationFreeApiImplementations) {
  const std::string bare = "namespace fcr { int api(int x) { return x; } }\n";
  const auto findings = lint_file("src/core/api.cpp", bare);
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 1);
  // Headers and out-of-src files are out of scope.
  EXPECT_EQ(count_rule(lint_file("src/core/api.hpp", bare), "ensure-arg"), 0);
  EXPECT_EQ(count_rule(lint_file("bench/api.cpp", bare), "ensure-arg"), 0);
}

TEST(FcrlintEnsureArg, ValidationOrReasonedAllowSatisfiesRule) {
  const std::string validated =
      "#include \"util/check.hpp\"\n"
      "namespace fcr { int api(int x) {\n"
      "  FCR_ENSURE_ARG(x >= 0, \"x\");\n"
      "  return x; } }\n";
  EXPECT_EQ(count_rule(lint_file("src/core/api.cpp", validated), "ensure-arg"),
            0);
  const std::string allowed =
      "// FCRLINT_ALLOW(ensure-arg): pure arithmetic, every input valid\n"
      "namespace fcr { int api(int x) { return x; } }\n";
  EXPECT_EQ(count_rule(lint_file("src/core/api.cpp", allowed), "ensure-arg"),
            0);
}

// -------------------------------------------------------------- pragma-once

TEST(FcrlintPragmaOnce, RequiresPragmaInHeaders) {
  const std::string guarded = "#ifndef X\n#define X\nint f();\n#endif\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/g.hpp", guarded), "pragma-once"), 1);
  const std::string pragmad = "// docs\n#pragma once\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/g.hpp", pragmad), "pragma-once"), 0);
  // Non-headers are out of scope, and a pragma mentioned in a comment does
  // not count as one.
  EXPECT_EQ(count_rule(lint_file("src/geom/g.cpp", guarded), "pragma-once"), 0);
  const std::string commented = "// #pragma once\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/geom/h.hpp", commented), "pragma-once"),
            1);
}

// ---------------------------------------------------------- include-hygiene

TEST(FcrlintIncludeHygiene, FlagsRelativeBitsAndDeprecatedC) {
  const std::string src =
      "#include <math.h>\n"
      "#include <bits/stdc++.h>\n"
      "#include \"../core/theory.hpp\"\n"
      "#include <cmath>\n"
      "#include \"util/check.hpp\"\n";
  const auto findings = lint_file("tools/x.cpp", src);
  EXPECT_EQ(lines_of(findings, "include-hygiene"), (std::vector<int>{1, 2, 3}));
  EXPECT_NE(findings[0].message.find("<cmath>"), std::string::npos);
}

TEST(FcrlintIncludeHygiene, ProseAboutHeadersIsNotAnInclude) {
  // v1 matched substrings on masked lines; the v2 rule only looks at real
  // header-name tokens, so comments mentioning deprecated headers pass.
  const std::string src =
      "// prefer <cmath> over <math.h>, and never <bits/stdc++.h>\n"
      "#include <cmath>\n";
  EXPECT_EQ(count_rule(lint_file("tools/ok.cpp", src), "include-hygiene"), 0);
}

// ------------------------------------------------------------- allow-syntax

TEST(FcrlintAllowSyntax, MalformedAnnotationsAreFindings) {
  // These markers live inside C++ string literals, which lex into opaque
  // tokens — so this test file stays clean under the tree-wide scan while
  // the lint_file inputs exercise the malformed shapes.
  const std::string unknown_rule =
      "// FCRLINT_ALLOW(no-such-rule): reason\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/core/a.cpp", unknown_rule),
                       "allow-syntax"),
            1);
  const std::string no_reason = "// FCRLINT_ALLOW(determinism):\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/core/b.cpp", no_reason), "allow-syntax"),
            1);
  const std::string no_colon = "// FCRLINT_ALLOW(determinism) oops\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/core/c.cpp", no_colon), "allow-syntax"),
            1);
  const std::string fine =
      "// FCRLINT_ALLOW(determinism): legitimate documented reason\nint f();\n";
  EXPECT_EQ(count_rule(lint_file("src/core/d.cpp", fine), "allow-syntax"), 0);
}

TEST(FcrlintAllowSyntax, MarkersInsideStringLiteralsAreIgnored) {
  const std::string src =
      "const char* help = \"suppress with FCRLINT_ALLOW(<rule>): <reason>\";\n";
  EXPECT_EQ(count_rule(lint_file("src/core/help.cpp", src), "allow-syntax"), 0);
}

TEST(FcrlintAllowSyntax, MarkerOnLaterBlockCommentLineGetsThatLine) {
  const std::string src =
      "/* line one\n"
      "   line two\n"
      "   FCRLINT_ALLOW(bogus-rule): with reason */\n"
      "int f();\n";
  const auto findings = lint_file("src/core/late.cpp", src);
  EXPECT_EQ(lines_of(findings, "allow-syntax"), (std::vector<int>{3}));
}

// ----------------------------------------------------------------- layering

TEST(FcrlintLayering, FlagsUpwardIncludes) {
  const std::string src =
      "#pragma once\n"
      "#include \"util/check.hpp\"\n"   // util(0) < sinr: fine
      "#include \"stats/welford.hpp\"\n"  // stats(1) < sinr: fine
      "#include \"sim/runner.hpp\"\n"   // sim above sinr: finding
      "#include \"params.hpp\"\n";      // bare sibling: fine
  const auto findings = lint_file("src/sinr/x.hpp", src);
  EXPECT_EQ(lines_of(findings, "layering"), (std::vector<int>{4}));
}

TEST(FcrlintLayering, UmbrellaHeaderIsTheTopLayer) {
  const std::string from_algorithms =
      "#pragma once\n#include \"fadingcr.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/algorithms/a.hpp", from_algorithms),
                       "layering"),
            1);
  // Files directly under src/ sit above every layer and may include
  // anything.
  const std::string umbrella =
      "#pragma once\n#include \"ext/x.hpp\"\n#include \"sim/runner.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/fadingcr.hpp", umbrella), "layering"), 0);
}

TEST(FcrlintLayering, UnknownDirectoryIsAFinding) {
  const std::string src = "#pragma once\nint f();\n";
  const auto findings = lint_file("src/newthing/x.hpp", src);
  EXPECT_EQ(count_rule(findings, "layering"), 1);
  EXPECT_NE(findings[0].message.find("kLayerOrder"), std::string::npos);
}

TEST(FcrlintLayering, AllowSuppressesUpwardEdge) {
  const std::string src =
      "#pragma once\n"
      "// FCRLINT_ALLOW(layering): transitional, tracked in ROADMAP\n"
      "#include \"sim/runner.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/x.hpp", src), "layering"), 0);
}

TEST(FcrlintLayering, TreeWideCycleDetection) {
  // Bare names resolve to the including file's directory, so this is a
  // same-layer cycle the per-file rule cannot see.
  const std::vector<fcrlint::FileInput> cyclic = {
      {"src/sim/x.hpp", "#pragma once\n#include \"y.hpp\"\n"},
      {"src/sim/y.hpp", "#pragma once\n#include \"x.hpp\"\n"},
  };
  const auto findings = lint_tree(cyclic);
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "layering") {
      EXPECT_NE(f.message.find("include cycle"), std::string::npos);
    }
  }
  const std::vector<fcrlint::FileInput> acyclic = {
      {"src/sim/x.hpp", "#pragma once\n#include \"y.hpp\"\n"},
      {"src/sim/y.hpp", "#pragma once\n#include \"util/check.hpp\"\n"},
      {"src/util/check.hpp", "#pragma once\nint f();\n"},
  };
  EXPECT_EQ(count_rule(lint_tree(acyclic), "layering"), 0);
}

TEST(FcrlintLayering, CycleThroughExtLayerIsFound) {
  // Both halves are per-file clean (ext -> ext is a legal same-layer edge);
  // the tree-wide DFS reports the back edge exactly once.
  const std::vector<fcrlint::FileInput> files = {
      {"src/ext/cycle_a.hpp", read_fixture("cycle_ext_a.hpp.txt")},
      {"src/ext/cycle_b.hpp", read_fixture("cycle_ext_b.hpp.txt")},
  };
  const auto findings = lint_tree(files);
  ASSERT_EQ(count_rule(findings, "layering"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "layering") {
      EXPECT_NE(f.message.find("include cycle"), std::string::npos);
      EXPECT_NE(f.message.find("cycle_a.hpp"), std::string::npos);
      EXPECT_NE(f.message.find("cycle_b.hpp"), std::string::npos);
    }
  }
}

TEST(FcrlintLayering, SelfIncludeIsTheSmallestCycle) {
  const std::vector<fcrlint::FileInput> files = {
      {"src/sim/self_include.hpp", read_fixture("self_include.hpp.txt")},
  };
  const auto findings = lint_tree(files);
  const auto lines = lines_of(findings, "layering");
  ASSERT_EQ(lines, (std::vector<int>{6}));
  for (const Finding& f : findings) {
    if (f.rule == "layering") {
      EXPECT_NE(f.message.find("include cycle"), std::string::npos);
    }
  }
}

TEST(FcrlintLayering, ParentRelativeIncludesStayOutOfTheGraph) {
  // "../"-includes are an include-hygiene finding; they never resolve to a
  // graph node, so the apparent a <-> b cycle through the parent-relative
  // spelling must NOT be reported as one.
  const std::vector<fcrlint::FileInput> files = {
      {"src/sim/a.hpp",
       "#pragma once\n"
       "// FCRLINT_ALLOW(include-hygiene): fixture exercises the edge case\n"
       "#include \"../core/b.hpp\"\n"},
      {"src/core/b.hpp", "#pragma once\n#include \"sim/a.hpp\"\n"},
  };
  const auto findings = lint_tree(files);
  EXPECT_EQ(count_rule(findings, "layering"), 0);
  const std::vector<fcrlint::FileInput> unallowed = {
      {"src/sim/a.hpp", "#pragma once\n#include \"../core/b.hpp\"\n"},
      {"src/core/b.hpp", "#pragma once\n#include \"sim/a.hpp\"\n"},
  };
  EXPECT_EQ(count_rule(lint_tree(unallowed), "include-hygiene"), 1);
  EXPECT_EQ(count_rule(lint_tree(unallowed), "layering"), 0);
}

// ------------------------------------------------------------ fp-accumulate

TEST(FcrlintFpAccumulate, FlagsStdReducersAndRawLoops) {
  const std::string src =
      "#include <numeric>\n"
      "double f(const std::vector<double>& xs) {\n"
      "  double s = 0.0;\n"
      "  for (const double x : xs) s += x;\n"                       // line 4
      "  return s + std::accumulate(xs.begin(), xs.end(), 0.0);\n"  // line 5
      "}\n";
  const auto sinr = lint_file("src/sinr/sum.hpp", src);
  EXPECT_EQ(lines_of(sinr, "fp-accumulate"), (std::vector<int>{4, 5}));
  // Same content in sim/ is in scope; in core/ and in the blessed
  // accumulate.hpp it is not.
  EXPECT_EQ(count_rule(lint_file("src/sim/sum.hpp", src), "fp-accumulate"), 2);
  EXPECT_EQ(count_rule(lint_file("src/core/sum.hpp", src), "fp-accumulate"), 0);
  EXPECT_EQ(count_rule(lint_file("src/sinr/accumulate.hpp", src),
                       "fp-accumulate"),
            0);
}

TEST(FcrlintFpAccumulate, IntegerAndOutOfLoopSumsAreFine) {
  const std::string src =
      "double g(const std::vector<double>& xs) {\n"
      "  std::size_t n = 0;\n"
      "  for (const double x : xs) { if (x > 0.0) n += 1; }\n"  // int: fine
      "  double once = 0.0;\n"
      "  once += 1.5;\n"  // not in a loop: fine
      "  return once + static_cast<double>(n);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/ok.hpp", src), "fp-accumulate"), 0);
}

TEST(FcrlintFpAccumulate, SecondDeclaratorAndSubscriptsAreTracked) {
  const std::string src =
      "void h(const double* v, std::size_t n) {\n"
      "  double sx = 0.0, sy = 0.0;\n"
      "  double acc[4] = {};\n"
      "  for (std::size_t i = 0; i < n; ++i) {\n"
      "    sx += v[i];\n"          // line 5
      "    sy += v[i];\n"          // line 6: second declarator
      "    acc[i % 4] += v[i];\n"  // line 7: through a subscript
      "  }\n"
      "}\n";
  const auto findings = lint_file("src/sinr/decl.hpp", src);
  EXPECT_EQ(lines_of(findings, "fp-accumulate"), (std::vector<int>{5, 6, 7}));
}

TEST(FcrlintFpAccumulate, BracelessLoopBodyAndAllow) {
  const std::string braceless =
      "double f(const double* v, std::size_t n) {\n"
      "  double s = 0.0;\n"
      "  std::size_t i = 0;\n"
      "  while (i < n) s += v[i++];\n"
      "  return s;\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/w.hpp", braceless),
                       "fp-accumulate"),
            1);
  const std::string allowed =
      "double f(const double* v, std::size_t n) {\n"
      "  double s = 0.0;\n"
      "  for (std::size_t i = 0; i < n; ++i)\n"
      "    s += v[i];  // FCRLINT_ALLOW(fp-accumulate): test fixture\n"
      "  return s;\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sinr/w.hpp", allowed), "fp-accumulate"),
            0);
}

// ---------------------------------------------------------- lock-discipline

TEST(FcrlintLockDiscipline, FlagsBareStdPrimitives) {
  const std::string src =
      "struct S {\n"
      "  std::mutex m_;\n"                     // line 2
      "  std::condition_variable cv_;\n"       // line 3
      "  std::condition_variable_any acv_;\n"  // line 4
      "};\n";
  const auto findings = lint_file("src/sim/s.hpp", src);
  EXPECT_EQ(lines_of(findings, "lock-discipline"),
            (std::vector<int>{2, 3, 4}));
  // Out of src/: no opinion.
  EXPECT_EQ(count_rule(lint_file("tests/s.hpp", src), "lock-discipline"), 0);
}

TEST(FcrlintLockDiscipline, AliasAndWaitSignatureAreNotDeclarations) {
  const std::string src =
      "using CondVar = std::condition_variable_any;\n"
      "void wait_on(std::condition_variable_any& cv);\n";
  EXPECT_EQ(count_rule(lint_file("src/util/t.hpp", src), "lock-discipline"),
            0);
}

TEST(FcrlintLockDiscipline, UnreferencedMutexNeedsAnAnnotation) {
  const std::string orphan =
      "struct S {\n"
      "  Mutex m_;\n"
      "  int data_ = 0;\n"
      "};\n";
  const auto findings = lint_file("src/sim/orphan.hpp", orphan);
  EXPECT_EQ(count_rule(findings, "lock-discipline"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "lock-discipline") {
      EXPECT_NE(f.message.find("FCR_GUARDED_BY"), std::string::npos);
    }
  }
  const std::string guarded =
      "struct S {\n"
      "  Mutex m_;\n"
      "  int data_ FCR_GUARDED_BY(m_) = 0;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/guarded.hpp", guarded),
                       "lock-discipline"),
            0);
  const std::string required =
      "struct S {\n"
      "  void push() FCR_REQUIRES(m_);\n"
      "  Mutex m_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/req.hpp", required),
                       "lock-discipline"),
            0);
}

TEST(FcrlintLockDiscipline, AllowSuppresses) {
  const std::string src =
      "struct S {\n"
      "  // FCRLINT_ALLOW(lock-discipline): wrapper implementation detail\n"
      "  std::mutex m_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/util/w.hpp", src), "lock-discipline"),
            0);
}

// ----------------------------------------------------------------- rng-flow

TEST(FcrlintRngFlow, FlagsCopiesOutOfSharedReferences) {
  const std::string src =
      "void f(const Rng& shared) {\n"
      "  Rng copied = shared;\n"       // line 2: copy out of the reference
      "  Rng built(shared);\n"         // line 3: copy-construction
      "  Rng child = shared.split(1);\n"  // split: fine
      "  const Rng& alias = shared;\n"    // reference bind: fine
      "  use(child, alias);\n"
      "}\n";
  const auto findings = lint_file("src/sim/copy.cpp", src);
  EXPECT_EQ(lines_of(findings, "rng-flow"), (std::vector<int>{2, 3}));
}

TEST(FcrlintRngFlow, FlagsByValueLambdaCaptures) {
  const std::string src =
      "void f(const Rng& shared) {\n"
      "  Rng child = shared.split(1);\n"
      "  auto bad = [child](std::size_t i) { return child.seed() + i; };\n"
      "  auto good_ref = [&child](std::size_t i) { return i; };\n"
      "  auto good_init = [c = child.split(2)](std::size_t i) { return i; };\n"
      "  auto good_default = [&](std::size_t i) { return i; };\n"
      "}\n";
  const auto findings = lint_file("src/sim/cap.cpp", src);
  EXPECT_EQ(lines_of(findings, "rng-flow"), (std::vector<int>{3}));
}

TEST(FcrlintRngFlow, ByValueOwnershipTransferStaysLegal) {
  // The pervasive repo idiom: constructors take Rng BY VALUE (ownership
  // transfer of an already-split stream) and store it in a member.
  const std::string src =
      "struct AlohaNode {\n"
      "  AlohaNode(double p, Rng rng) : p_(p), rng_(rng) {}\n"
      "  double p_;\n"
      "  Rng rng_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_file("src/algorithms/aloha.hpp", src), "rng-flow"),
            0);
}

TEST(FcrlintRngFlow, SubscriptsAndAttributesAreNotCaptureLists) {
  const std::string src =
      "void f(const Rng& shared, std::vector<Rng>& pool) {\n"
      "  [[maybe_unused]] int x = 0;\n"
      "  use(pool[0], shared);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/sub.cpp", src), "rng-flow"), 0);
}

TEST(FcrlintRngFlow, ScopeAndAllow) {
  const std::string src =
      "void f(const Rng& shared) {\n"
      "  Rng copied = shared;\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("tests/t.cpp", src), "rng-flow"), 0);
  EXPECT_EQ(count_rule(lint_file("src/util/rng.hpp", src), "rng-flow"), 0);
  const std::string allowed =
      "void f(const Rng& shared) {\n"
      "  // FCRLINT_ALLOW(rng-flow): deliberate replay of the same stream\n"
      "  Rng copied = shared;\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/ok.cpp", allowed), "rng-flow"), 0);
}

// --------------------------------------------------------- error-discipline

TEST(FcrlintErrorDiscipline, FlagsSwallowingCatchHandlers) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (const std::exception&) {\n"
      "  }\n"
      "  try { g(); } catch (...) { cleanup(); }\n"
      "}\n";
  const auto findings = lint_file("src/sim/swallow.cpp", src);
  EXPECT_EQ(lines_of(findings, "error-discipline"), (std::vector<int>{2, 4}));
}

TEST(FcrlintErrorDiscipline, HandledBodiesPass) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (const std::exception& e) { throw; }\n"
      "  try { g(); } catch (const std::exception& e) {\n"
      "    throw Error(ErrorCategory::kEngine, e.what());\n"
      "  }\n"
      "  try { g(); } catch (...) {\n"
      "    log.record(TrialFailure{t, 1, ErrorCategory::kEngine, \"x\"});\n"
      "  }\n"
      "  try { g(); } catch (...) { err = std::current_exception(); }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/handled.cpp", src),
                       "error-discipline"),
            0);
}

TEST(FcrlintErrorDiscipline, ScopeAndAllow) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (...) {\n"
      "  }\n"
      "}\n";
  // Out of scope: tests and tools may swallow freely.
  EXPECT_EQ(count_rule(lint_file("tests/t.cpp", src), "error-discipline"), 0);
  EXPECT_EQ(count_rule(lint_file("tools/t.cpp", src), "error-discipline"), 0);
  const std::string allowed =
      "void f() {\n"
      "  // FCRLINT_ALLOW(error-discipline): best-effort cleanup\n"
      "  try { g(); } catch (...) {\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/ok.cpp", allowed),
                       "error-discipline"),
            0);
}

// -------------------------------------------------------------------- SARIF

// ----------------------------------------------------------- workspace-reset

TEST(FcrlintWorkspaceReset, FlagsAppendOnlyMemberOncePerMember) {
  const std::string src =
      "void ExecutionWorkspace::f() {\n"
      "  stale_.push_back(1);\n"
      "  stale_.push_back(2);\n"
      "  other_.emplace_back();\n"
      "}\n";
  const auto findings = lint_file("src/sim/workspace.cpp", src);
  EXPECT_EQ(count_rule(findings, "workspace-reset"), 2);  // stale_, other_
  EXPECT_EQ(lines_of(findings, "workspace-reset"), (std::vector<int>{2, 4}));
}

TEST(FcrlintWorkspaceReset, ResetAnywhereInFileSuppresses) {
  const std::string src =
      "void ExecutionWorkspace::f() {\n"
      "  a_.push_back(1);\n"
      "  a_.clear();\n"
      "  b_.emplace_back();\n"
      "  b_.assign(3, 0);\n"
      "  c_.push_back(1);\n"
      "  c_.resize(0);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/workspace.cpp", src),
                       "workspace-reset"),
            0);
}

TEST(FcrlintWorkspaceReset, LocalsAndOtherFilesAreOutOfScope) {
  const std::string src =
      "void f() {\n"
      "  std::vector<int> local;\n"
      "  local.push_back(1);\n"       // no trailing underscore: local
      "  member_.push_back(1);\n"
      "}\n";
  // Locals never flag; the member flags only under src/sim/workspace.*.
  EXPECT_EQ(count_rule(lint_file("src/sim/engine.cpp", src),
                       "workspace-reset"),
            0);
  const auto findings = lint_file("src/sim/workspace.cpp", src);
  EXPECT_EQ(count_rule(findings, "workspace-reset"), 1);
  EXPECT_EQ(lines_of(findings, "workspace-reset"), (std::vector<int>{4}));
}

TEST(FcrlintWorkspaceReset, AllowAnnotationSuppresses) {
  const std::string src =
      "void ExecutionWorkspace::f() {\n"
      "  // FCRLINT_ALLOW(workspace-reset): accumulates across runs by "
      "design\n"
      "  log_.push_back(1);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/sim/workspace.hpp", src),
                       "workspace-reset"),
            0);
}

TEST(FcrlintSarif, EmitsSchemaVersionRulesAndLocations) {
  const std::vector<Finding> findings = {
      {"src/sinr/x.cpp", 7, "sinr-float", "no \"float\" here"},
      {"src/sim/y.cpp", 12, "determinism", "line1\nline2"},
  };
  const std::string sarif = fcrlint::to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"fcrlint\""), std::string::npos);
  // Every catalogued rule is in the SARIF rules array.
  for (const fcrlint::RuleMeta& r : fcrlint::kRules) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.id) + "\""),
              std::string::npos);
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"sinr-float\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/y.cpp\""), std::string::npos);
  // JSON escaping: embedded quotes and newlines must be escaped.
  EXPECT_NE(sarif.find("no \\\"float\\\" here"), std::string::npos);
  EXPECT_NE(sarif.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(sarif.find("line1\nline2"), std::string::npos);
}

TEST(FcrlintSarif, EmptyRunIsStillWellFormed) {
  const std::string sarif = fcrlint::to_sarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(sarif.find("ruleId"), std::string::npos);
}

// --------------------------------------------------------------------- diff

TEST(FcrlintDiff, ParsesHunksIntoChangedLineSets) {
  const std::string diff =
      "diff --git a/src/a.cpp b/src/a.cpp\n"
      "index 1111111..2222222 100644\n"
      "--- a/src/a.cpp\n"
      "+++ b/src/a.cpp\n"
      "@@ -10,2 +10,3 @@ void f()\n"
      "+x\n+y\n+z\n"
      "@@ -30 +40 @@\n"
      "+w\n"
      "diff --git a/src/gone.cpp b/src/gone.cpp\n"
      "--- a/src/gone.cpp\n"
      "+++ /dev/null\n"
      "@@ -1,5 +0,0 @@\n"
      "-dead\n";
  const fcrlint::ChangedLines changed = fcrlint::parse_unified_diff(diff);
  ASSERT_EQ(changed.size(), 1u);
  const auto& lines = changed.at("src/a.cpp");
  EXPECT_EQ(lines, (std::set<int>{10, 11, 12, 40}));
}

TEST(FcrlintDiff, FilterKeepsOnlyChangedFindings) {
  const std::vector<Finding> all = {
      {"src/a.cpp", 10, "determinism", "on a changed line"},
      {"src/a.cpp", 13, "determinism", "outside the hunk"},
      {"src/b.cpp", 10, "determinism", "file not in the diff"},
  };
  fcrlint::ChangedLines changed;
  changed["src/a.cpp"] = {10, 11, 12};
  const auto kept = fcrlint::filter_to_changed(all, changed);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].file, "src/a.cpp");
  EXPECT_EQ(kept[0].line, 10);
}

// ------------------------------------------------------- fixtures on disk

TEST(FcrlintFixtures, BadDeterminismFixture) {
  const auto findings = lint_file("src/sim/bad_determinism.cpp",
                                  read_fixture("bad_determinism.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "determinism"), 5);
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 0);
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{14, 15, 16, 17, 18}));
}

TEST(FcrlintFixtures, BadSinrFloatFixture) {
  const auto findings = lint_file("src/sinr/bad_sinr_float.cpp",
                                  read_fixture("bad_sinr_float.cpp.txt"));
  // Line 10 declares a float and casts to float: two findings, same line.
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"sinr-float", "sinr-float"}));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_EQ(findings[1].line, 10);
}

TEST(FcrlintFixtures, MissingPragmaFixture) {
  const auto findings = lint_file("src/geom/missing_pragma.hpp",
                                  read_fixture("missing_pragma.hpp.txt"));
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"pragma-once"}));
}

TEST(FcrlintFixtures, BadIncludesFixture) {
  const auto findings = lint_file("src/core/bad_includes.cpp",
                                  read_fixture("bad_includes.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "include-hygiene"), 3);
}

TEST(FcrlintFixtures, BadAllowFixture) {
  const auto findings = lint_file("src/ext/bad_allow.cpp",
                                  read_fixture("bad_allow.cpp.txt"));
  EXPECT_EQ(count_rule(findings, "allow-syntax"), 4);
  // The one well-formed annotation suppresses ensure-arg for the file.
  EXPECT_EQ(count_rule(findings, "ensure-arg"), 0);
}

TEST(FcrlintFixtures, BadWorkspaceResetFixture) {
  const auto findings = lint_file("src/sim/workspace.cpp",
                                  read_fixture("bad_workspace_reset.cpp.txt"));
  // Exactly one: stale_ (appended twice, reported once). transmitters_ and
  // feedback_ are reset, local has no member suffix, log_ carries an allow.
  EXPECT_EQ(count_rule(findings, "workspace-reset"), 1);
  EXPECT_EQ(lines_of(findings, "workspace-reset"), (std::vector<int>{16}));
}

TEST(FcrlintFixtures, CleanFixtureHasNoFindings) {
  const auto findings =
      lint_file("src/core/clean_api.cpp", read_fixture("clean_api.cpp.txt"));
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(FcrlintFixtures, BlockCommentSpanFixtureIsClean) {
  const auto findings =
      lint_file("src/sim/block_comment_spans.cpp",
                read_fixture("block_comment_spans.cpp.txt"));
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(FcrlintFixtures, RawStringFixtureIsClean) {
  const auto findings =
      lint_file("src/sim/raw_string.cpp", read_fixture("raw_string.cpp.txt"));
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(FcrlintFixtures, BadLayeringFixture) {
  const auto findings = lint_file("src/sinr/bad_layering.cpp",
                                  read_fixture("bad_layering.cpp.txt"));
  EXPECT_EQ(lines_of(findings, "layering"), (std::vector<int>{6, 7}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(FcrlintFixtures, BadFpAccumulateFixture) {
  const auto findings = lint_file("src/sinr/bad_fp_accumulate.cpp",
                                  read_fixture("bad_fp_accumulate.cpp.txt"));
  EXPECT_EQ(lines_of(findings, "fp-accumulate"), (std::vector<int>{14, 16}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(FcrlintFixtures, BadLockDisciplineFixture) {
  const auto findings = lint_file("src/sim/bad_lock_discipline.cpp",
                                  read_fixture("bad_lock_discipline.cpp.txt"));
  EXPECT_EQ(lines_of(findings, "lock-discipline"),
            (std::vector<int>{17, 18, 19}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(FcrlintFixtures, BadRngFlowFixture) {
  const auto findings = lint_file("src/sim/bad_rng_flow.cpp",
                                  read_fixture("bad_rng_flow.cpp.txt"));
  EXPECT_EQ(lines_of(findings, "rng-flow"), (std::vector<int>{14, 15, 18}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(FcrlintFixtures, BadErrorSwallowFixture) {
  const auto findings = lint_file("src/sim/bad_error_swallow.cpp",
                                  read_fixture("bad_error_swallow.cpp.txt"));
  EXPECT_EQ(lines_of(findings, "error-discipline"),
            (std::vector<int>{16, 20}));
  EXPECT_EQ(findings.size(), 2u);
}

}  // namespace
