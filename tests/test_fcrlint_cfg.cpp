// Unit tests for the fcrlint v4 control-flow layer: per-function CFG
// construction from token streams (tools/fcrlint_cfg.hpp), the generic
// forward-dataflow worklist solver (tools/fcrlint_dataflow.hpp), and the
// three tree rules built on them — lane-purity, definite-init and
// lockset-path — plus the whole-repo kernel certification that every
// shipped columnar kernel is lane-pure.
//
// Test inputs with banned tokens are fixture files or string literals; the
// lexer turns literals into opaque tokens, so this file stays clean under
// fcrlint_tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_rules.hpp"

namespace {

namespace cfg = fcrlint::cfg;
namespace dataflow = fcrlint::dataflow;
using fcrlint::FileInput;
using fcrlint::Finding;
using fcrlint::lex;
using fcrlint::npos;
using fcrlint::Token;
using fcrlint::TokKind;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FCRLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// CFG of the FIRST function body in a fixture (the span inside its braces),
/// mirroring how the model layer feeds build_cfg.
cfg::Cfg cfg_of(const std::vector<Token>& t) {
  std::size_t open = npos;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].punct("{")) {
      open = i;
      break;
    }
  }
  EXPECT_NE(open, npos) << "fixture has no function body";
  const std::size_t close = fcrlint::detail::match_forward(t, open, "{", "}");
  EXPECT_NE(close, npos);
  return cfg::build_cfg(t, open + 1, close);
}

/// Index of the nth token whose text matches (for anchoring block queries).
std::size_t tok_idx(const std::vector<Token>& t, const std::string& text,
                    int nth = 0) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == text && nth-- == 0) return i;
  }
  return npos;
}

bool has_succ(const cfg::Cfg& g, std::size_t from, std::size_t to) {
  const auto& s = g.blocks[from].succs;
  return std::find(s.begin(), s.end(), to) != s.end();
}

/// True when some block participates in a cycle (a loop back edge exists).
bool has_cycle(const cfg::Cfg& g) {
  for (std::size_t start = 0; start < g.blocks.size(); ++start) {
    std::vector<std::size_t> work = g.blocks[start].succs;
    std::set<std::size_t> seen;
    while (!work.empty()) {
      const std::size_t b = work.back();
      work.pop_back();
      if (b == start) return true;
      if (!seen.insert(b).second) continue;
      for (const std::size_t s : g.blocks[b].succs) work.push_back(s);
    }
  }
  return false;
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<int> lines_of(const std::vector<Finding>& findings,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

bool any_reason_contains(const std::vector<std::string>& reasons,
                         const std::string& needle) {
  return std::any_of(reasons.begin(), reasons.end(),
                     [&](const std::string& r) {
                       return r.find(needle) != std::string::npos;
                     });
}

// ----------------------------------------------------------- CFG structure

TEST(Cfg, SwitchFallthroughEdgeExistsAndBreakSevers) {
  const auto t = lex(read_fixture("cfg_switch_fallthrough.cpp.txt"));
  const cfg::Cfg g = cfg_of(t);

  ASSERT_EQ(g.loops.size(), 0u);
  int switches = 0;
  for (const cfg::Guard& gd : g.guard_table) {
    if (gd.kind == cfg::Guard::kSwitch) ++switches;
  }
  EXPECT_EQ(switches, 1);

  // `out = 1` (case 0) falls through into `out += 2` (case 1); anchor on
  // the `out` mentions (case-label constants are structural tokens the
  // builder consumes, so they sit in no block).
  const std::size_t case0 = g.block_of(tok_idx(t, "out", 1));
  const std::size_t case1 = g.block_of(tok_idx(t, "out", 2));
  const std::size_t case2 = g.block_of(tok_idx(t, "out", 3));
  const std::size_t dflt = g.block_of(tok_idx(t, "out", 4));
  ASSERT_NE(case0, npos);
  ASSERT_NE(case1, npos);
  ASSERT_NE(case2, npos);
  ASSERT_NE(dflt, npos);
  EXPECT_TRUE(has_succ(g, case0, case1)) << "fallthrough edge missing";
  // `break` after case 2 must NOT flow into default.
  EXPECT_FALSE(has_succ(g, case2, dflt)) << "break failed to sever the edge";
  EXPECT_FALSE(has_cycle(g));
}

TEST(Cfg, DoWhileBodyPrecedesConditionAndCarriesBackEdge) {
  const auto t = lex(read_fixture("cfg_do_while.cpp.txt"));
  const cfg::Cfg g = cfg_of(t);

  ASSERT_EQ(g.loops.size(), 1u);
  EXPECT_EQ(g.loops[0].kind, cfg::Guard::kDoWhile);
  EXPECT_TRUE(has_cycle(g));

  // The body statement is inside the loop; the trailing return is not.
  const std::size_t body_tok = tok_idx(t, "steps", 1);  // ++steps
  const std::size_t ret_tok = tok_idx(t, "return");
  EXPECT_EQ(g.innermost_loop(body_tok), 0u);
  EXPECT_EQ(g.innermost_loop(ret_tok), npos);
  // The condition tokens live in the loop's cond span, after the body.
  EXPECT_FALSE(g.loops[0].cond.empty());
  EXPECT_GE(g.loops[0].cond.lo, g.loops[0].body.hi);
}

TEST(Cfg, NestedTernariesAreThreeGuardsAndAcyclic) {
  const auto t = lex(read_fixture("cfg_nested_ternary.cpp.txt"));
  const cfg::Cfg g = cfg_of(t);

  int ternaries = 0;
  for (const cfg::Guard& gd : g.guard_table) {
    if (gd.kind == cfg::Guard::kTernary) ++ternaries;
  }
  EXPECT_EQ(ternaries, 3);
  EXPECT_EQ(g.loops.size(), 0u);
  EXPECT_FALSE(has_cycle(g));
}

TEST(Cfg, EarlyReturnAndThrowEdgeToExit) {
  const auto t = lex(read_fixture("cfg_early_exit.cpp.txt"));
  const cfg::Cfg g = cfg_of(t);

  ASSERT_EQ(g.loops.size(), 1u);
  EXPECT_EQ(g.loops[0].kind, cfg::Guard::kFor);
  EXPECT_TRUE(has_cycle(g));

  // Early `return -1` and `throw v` blocks both edge straight to exit.
  const std::size_t early_ret = g.block_of(tok_idx(t, "return"));
  const std::size_t thrower = g.block_of(tok_idx(t, "throw"));
  ASSERT_NE(early_ret, npos);
  ASSERT_NE(thrower, npos);
  EXPECT_TRUE(has_succ(g, early_ret, g.exit));
  EXPECT_TRUE(has_succ(g, thrower, g.exit));

  // The accumulating statement is inside the loop body.
  EXPECT_EQ(g.innermost_loop(tok_idx(t, "acc", 1)), 0u);
}

TEST(Cfg, SiblingLoopsAreTopLevelWithBackEdges) {
  const auto t = lex(read_fixture("cfg_loop_backedge.cpp.txt"));
  const cfg::Cfg g = cfg_of(t);

  ASSERT_EQ(g.loops.size(), 2u);
  EXPECT_TRUE(has_cycle(g));
  std::set<int> kinds;
  for (std::size_t li = 0; li < g.loops.size(); ++li) {
    kinds.insert(g.loops[li].kind);
    EXPECT_EQ(g.enclosing_loop(li), npos);
  }
  EXPECT_EQ(kinds, (std::set<int>{cfg::Guard::kWhile, cfg::Guard::kFor}));

  // Statement attribution: one per loop, the return in neither.
  const std::size_t in_while = g.innermost_loop(tok_idx(t, "acc", 1));
  const std::size_t in_for = g.innermost_loop(tok_idx(t, "acc", 2));
  ASSERT_NE(in_while, npos);
  ASSERT_NE(in_for, npos);
  EXPECT_NE(in_while, in_for);
  EXPECT_EQ(g.innermost_loop(tok_idx(t, "return")), npos);
}

// -------------------------------------------------------- dataflow solver

TEST(Dataflow, MustSetJoinIsPathIntersection) {
  // `a` is assigned on only the then-arm: the intersection join must drop
  // it at the merge point, while the unconditional `b` survives.
  const auto t = lex(
      "int f(int c) {\n"
      "  int a = 0;\n"
      "  int b = 0;\n"
      "  if (c) {\n"
      "    a = 1;\n"
      "  }\n"
      "  b = 2;\n"
      "  return a + b;\n"
      "}\n");
  const cfg::Cfg g = cfg_of(t);
  // Transfer: a block "defines" every identifier ASSIGNED in its spans
  // (ident directly followed by `=`). Declarations with initializers count,
  // which is exactly what makes the pre-branch `a` span not dominate the
  // conditional re-assignment in this toy lattice: we only track the
  // then-arm assignment by seeding from the branch, so anchor on the arms.
  const auto in = dataflow::solve_forward<dataflow::MustSet>(
      g, dataflow::MustSet{},
      [&](std::size_t b, const dataflow::MustSet& fact) {
        dataflow::MustSet out = fact;
        for (const cfg::Event& e : g.blocks[b].events) {
          if (e.kind != cfg::Event::kSpan) continue;
          for (std::size_t m = e.span.lo; m + 1 < e.span.hi; ++m) {
            if (t[m].kind == TokKind::kIdent && t[m + 1].punct("=")) {
              out.insert(t[m].text);
            }
          }
        }
        return out;
      },
      dataflow::must_join);

  const std::size_t ret_blk = g.block_of(tok_idx(t, "return"));
  ASSERT_NE(ret_blk, npos);
  ASSERT_TRUE(in[ret_blk].has_value());
  // `a = 1` sits on the conditional arm only — but `int a = 0` assigned it
  // unconditionally first, so it IS in the must-set; strip the fixture to
  // the conditional-only case via a name assigned nowhere else.
  EXPECT_EQ(in[ret_blk]->count("b"), 1u);
  EXPECT_EQ(in[ret_blk]->count("a"), 1u);  // unconditional declaration

  // Now the genuinely conditional name: re-lex without the declarations.
  const auto t2 = lex(
      "void g(int c) {\n"
      "  if (c) {\n"
      "    only_then = 1;\n"
      "  }\n"
      "  after = 2;\n"
      "  use(only_then, after);\n"
      "}\n");
  const cfg::Cfg g2 = cfg_of(t2);
  const auto in2 = dataflow::solve_forward<dataflow::MustSet>(
      g2, dataflow::MustSet{},
      [&](std::size_t b, const dataflow::MustSet& fact) {
        dataflow::MustSet out = fact;
        for (const cfg::Event& e : g2.blocks[b].events) {
          if (e.kind != cfg::Event::kSpan) continue;
          for (std::size_t m = e.span.lo; m + 1 < e.span.hi; ++m) {
            if (t2[m].kind == TokKind::kIdent && t2[m + 1].punct("=")) {
              out.insert(t2[m].text);
            }
          }
        }
        return out;
      },
      dataflow::must_join);
  const std::size_t use_blk = g2.block_of(tok_idx(t2, "use"));
  ASSERT_NE(use_blk, npos);
  ASSERT_TRUE(in2[use_blk].has_value());
  EXPECT_EQ(in2[use_blk]->count("only_then"), 0u) << "intersection broken";
  EXPECT_EQ(in2[use_blk]->count("after"), 0u)
      << "same-block kill ordering: `after` is assigned in the use block "
         "itself, so it must not be in the block-ENTRY fact";
}

TEST(Dataflow, CountRangeHullsBranchesAndSaturatesLoops) {
  auto count_solver = [](const std::vector<Token>& t, const cfg::Cfg& g,
                         const std::string& needle) {
    const auto in = dataflow::solve_forward<dataflow::CountRange>(
        g, dataflow::CountRange{},
        [&](std::size_t b, const dataflow::CountRange& fact) {
          int n = 0;
          for (const cfg::Event& e : g.blocks[b].events) {
            if (e.kind != cfg::Event::kSpan) continue;
            for (std::size_t m = e.span.lo; m < e.span.hi; ++m) {
              if (t[m].text == needle) ++n;
            }
          }
          return dataflow::count_add(fact, n);
        },
        dataflow::count_join);
    return in[g.exit].has_value() ? *in[g.exit] : dataflow::CountRange{};
  };

  // Diamond: one branch draws, the other does not -> hull [0, 1].
  const auto t1 = lex(
      "void f(bool c) {\n"
      "  if (c) {\n"
      "    draw();\n"
      "  } else {\n"
      "    skip();\n"
      "  }\n"
      "  done();\n"
      "}\n");
  const cfg::Cfg g1 = cfg_of(t1);
  const dataflow::CountRange r1 = count_solver(t1, g1, "draw");
  EXPECT_EQ(r1.min, 0);
  EXPECT_EQ(r1.max, 1);

  // Straight line: both paths identical -> exact [2, 2].
  const auto t2 = lex("void f() {\n  draw();\n  draw();\n}\n");
  const cfg::Cfg g2 = cfg_of(t2);
  const dataflow::CountRange r2 = count_solver(t2, g2, "draw");
  EXPECT_EQ(r2.min, 2);
  EXPECT_EQ(r2.max, 2);

  // Loop: the back edge accumulates until the saturation rail, proving the
  // solver terminates on cyclic graphs instead of diverging.
  const auto t3 = lex(
      "void f(int n) {\n"
      "  while (n > 0) {\n"
      "    draw();\n"
      "    --n;\n"
      "  }\n"
      "}\n");
  const cfg::Cfg g3 = cfg_of(t3);
  const dataflow::CountRange r3 = count_solver(t3, g3, "draw");
  EXPECT_EQ(r3.min, 0);  // zero-trip path
  EXPECT_EQ(r3.max, dataflow::kCountSaturated);
}

// ------------------------------------------------------------- lane-purity

TEST(LanePurity, BadKernelIsFlaggedAndDecertified) {
  const auto tree = fcrlint::lint_tree_full({{"src/algorithms/bad_lane_purity.cpp",
                                             read_fixture("bad_lane_purity.cpp.txt")}});

  EXPECT_GE(count_rule(tree.findings, "lane-purity"), 4);

  ASSERT_EQ(tree.kernels.size(), 1u);
  const fcrlint::model::KernelRecord& k = tree.kernels[0];
  EXPECT_EQ(k.qualified, "fcr::BadLaneKernel::columnar_decide");
  EXPECT_FALSE(k.pure);
  EXPECT_TRUE(any_reason_contains(k.reasons, "takes or requires lock"));
  EXPECT_TRUE(any_reason_contains(k.reasons, "virtual call target"));
  EXPECT_TRUE(any_reason_contains(k.reasons, "arbitrarily-indexed"));
  EXPECT_TRUE(any_reason_contains(k.reasons, "current word"));
  EXPECT_TRUE(any_reason_contains(k.reasons, "path-dependent"));
}

TEST(LanePurity, CleanKernelCertifiesWithUnitDrawInterval) {
  const auto tree = fcrlint::lint_tree_full({{"src/algorithms/good_lane_purity.cpp",
                                             read_fixture("good_lane_purity.cpp.txt")}});

  EXPECT_EQ(count_rule(tree.findings, "lane-purity"), 0);

  ASSERT_EQ(tree.kernels.size(), 1u);
  const fcrlint::model::KernelRecord& k = tree.kernels[0];
  EXPECT_EQ(k.qualified, "fcr::GoodLaneKernel::columnar_decide");
  EXPECT_TRUE(k.pure) << [&] {
    std::string all;
    for (const auto& r : k.reasons) all += r + "\n";
    return all;
  }();
  EXPECT_EQ(k.draw_min, 1);
  EXPECT_EQ(k.draw_max, 1);
  EXPECT_EQ(k.columns_read,
            (std::vector<std::string>{"probability", "rng"}));
  EXPECT_EQ(k.columns_written, (std::vector<std::string>{"decisions"}));
}

// ----------------------------------------------------------- definite-init

TEST(DefiniteInit, FlagsReadsSizedOnOnlySomePaths) {
  const auto findings =
      fcrlint::lint_tree({{"src/sim/bad_definite_init.cpp",
                           read_fixture("bad_definite_init.cpp.txt")}});
  EXPECT_EQ(lines_of(findings, "definite-init"), (std::vector<int>{18, 27}));
}

TEST(DefiniteInit, AllPathSizingAndGuardsStayQuiet) {
  const auto findings =
      fcrlint::lint_tree({{"src/sim/good_definite_init.cpp",
                           read_fixture("good_definite_init.cpp.txt")}});
  EXPECT_EQ(count_rule(findings, "definite-init"), 0);
}

// ------------------------------------------------------------ lockset-path

TEST(LocksetPath, CatchesWhatWholeFunctionLocksetCannot) {
  const std::string content = read_fixture("bad_lockset_path.cpp.txt");
  const fcrlint::FileArtifacts art =
      fcrlint::prepare_artifacts("src/sim/bad_lockset_path.cpp", content);
  ASSERT_TRUE(art.has_model);
  const std::vector<fcrlint::model::TreeFile> tree = {
      {art.path, &art.model, &art.allows}};
  const fcrlint::model::ProgramModel pm =
      fcrlint::model::build_program_model(tree);

  // Fails WITHOUT the rule: the v3 whole-function lockset sees the
  // MutexLock somewhere in each function and stays silent.
  EXPECT_TRUE(fcrlint::model::check_lockset(pm, tree).empty());

  // Caught WITH it: the scope-closed read and the unlocked else-path write.
  const auto findings = fcrlint::model::check_lockset_path(pm, tree);
  EXPECT_EQ(lines_of(findings, "lockset-path"), (std::vector<int>{21, 30}));
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("FCR_GUARDED_BY(m_)"), std::string::npos);
  }
}

// ---------------------------------------------------------------- real tree

TEST(RealTree, AllRegistryColumnarKernelsCertifyPure) {
  namespace fs = std::filesystem;
  const fs::path src_root = fs::path(FCRLINT_REPO_DIR) / "src";
  ASSERT_TRUE(fs::exists(src_root));

  std::vector<fcrlint::FileArtifacts> artifacts;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    const std::string rel =
        fs::relative(entry.path(), fs::path(FCRLINT_REPO_DIR))
            .generic_string();
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    artifacts.push_back(fcrlint::prepare_artifacts(rel, os.str()));
  }
  const fcrlint::TreeResult tree = fcrlint::finalize_tree_full(artifacts);

  EXPECT_EQ(count_rule(tree.findings, "lane-purity"), 0);
  EXPECT_EQ(count_rule(tree.findings, "definite-init"), 0);
  EXPECT_EQ(count_rule(tree.findings, "lockset-path"), 0);

  std::set<std::string> names;
  for (const fcrlint::model::KernelRecord& k : tree.kernels) {
    EXPECT_TRUE(k.pure) << k.qualified << " decertified";
    EXPECT_GE(k.draw_max, k.draw_min);
    EXPECT_LT(k.draw_max, dataflow::kCountSaturated)
        << k.qualified << " has an unbounded draw budget";
    names.insert(k.qualified);
  }
  EXPECT_EQ(names,
            (std::set<std::string>{
                "fcr::BinaryExponentialBackoff::columnar_decide",
                "fcr::DecayDoubling::columnar_decide",
                "fcr::DecayKnownN::columnar_decide",
                "fcr::FadingContentionResolution::columnar_decide",
                "fcr::FastDecay::columnar_decide",
                "fcr::NoKnockoutControl::columnar_decide",
                "fcr::SiftWindow::columnar_decide",
                "fcr::SlottedAloha::columnar_decide",
            }));
  for (const fcrlint::model::KernelRecord& k : tree.kernels) {
    EXPECT_TRUE(k.simd_eligible)
        << k.qualified << " lost its SIMD eligibility bit";
  }
}

}  // namespace
