// Unit tests for the fcrlint v3 interprocedural layer: the program-model
// extraction (tools/fcrlint_model.hpp), the four cross-TU rules — lockset,
// rng-lineage, hot-path-alloc, error-provenance — the content-hash artifact
// cache (tools/fcrlint_cache.hpp), the --fix rewrites (tools/fcrlint_fix.hpp),
// and a whole-repo run proving the real src/ tree is clean and that the
// steady-state round loop's reachable set contains the channel resolution
// layer.
//
// Test inputs with banned tokens are C++ string literals; the lexer turns
// literals into opaque tokens, so this file stays clean under fcrlint_tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_cache.hpp"
#include "fcrlint_fix.hpp"
#include "fcrlint_rules.hpp"

namespace {

using fcrlint::FileInput;
using fcrlint::Finding;
using fcrlint::lex;
using fcrlint::lint_tree;
using fcrlint::model::AllocSite;
using fcrlint::model::extract;
using fcrlint::model::FileModel;
using fcrlint::model::RngSite;

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<int> lines_of(const std::vector<Finding>& findings,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FCRLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const fcrlint::model::FunctionFacts* find_fn(const FileModel& fm,
                                             const std::string& qualified,
                                             bool definition) {
  for (const auto& f : fm.functions) {
    if (f.qualified == qualified && f.is_definition == definition) return &f;
  }
  return nullptr;
}

// --------------------------------------------------------------- extraction

TEST(ModelExtract, FunctionsClassesAndGuardedFields) {
  const std::string src =
      "namespace fcr {\n"
      "class Pool : public Base {\n"
      " public:\n"
      "  void submit(int n);\n"
      "  int size() const { return n_; }\n"
      " private:\n"
      "  Mutex m_;\n"
      "  int n_ FCR_GUARDED_BY(m_) = 0;\n"
      "};\n"
      "void Pool::submit(int n) { n_ = n; }\n"
      "}  // namespace fcr\n";
  const FileModel fm = extract("src/sim/pool.cpp", lex(src));

  ASSERT_EQ(fm.classes.size(), 1u);
  EXPECT_EQ(fm.classes[0].name, "fcr::Pool");
  EXPECT_EQ(fm.classes[0].bases, (std::vector<std::string>{"Base"}));

  ASSERT_EQ(fm.fields.size(), 1u);
  EXPECT_EQ(fm.fields[0].cls, "fcr::Pool");
  EXPECT_EQ(fm.fields[0].name, "n_");
  EXPECT_EQ(fm.fields[0].mutex, "m_");

  const auto* decl = find_fn(fm, "fcr::Pool::submit", false);
  const auto* def = find_fn(fm, "fcr::Pool::submit", true);
  const auto* inline_def = find_fn(fm, "fcr::Pool::size", true);
  ASSERT_NE(decl, nullptr);
  ASSERT_NE(def, nullptr);
  ASSERT_NE(inline_def, nullptr);
  EXPECT_EQ(def->cls, "fcr::Pool");
  EXPECT_EQ(def->name, "submit");
  // Both bodies touch the guarded member.
  ASSERT_FALSE(def->accesses.empty());
  EXPECT_EQ(def->accesses[0].name, "n_");
  EXPECT_FALSE(def->accesses[0].qualified);
}

TEST(ModelExtract, BodyFactsLocksAllocsAndRngKinds) {
  const std::string src =
      "namespace fcr {\n"
      "void f(Rng& parent) {\n"
      "  const MutexLock lock(mu_);\n"
      "  Rng child = parent.split(3);\n"
      "  Rng amb;\n"
      "  std::vector<int> sized(10);\n"
      "  std::vector<int> grown;\n"
      "  grown.push_back(1);\n"
      "  buf_.push_back(2);\n"
      "  buf_.reserve(8);\n"
      "  auto p = std::make_unique<Node>(5);\n"
      "  int* q = new int(7);\n"
      "  delete q;\n"
      "}\n"
      "}  // namespace fcr\n";
  const FileModel fm = extract("src/sim/facts.cpp", lex(src));
  const auto* f = find_fn(fm, "fcr::f", true);
  ASSERT_NE(f, nullptr);

  EXPECT_EQ(f->locks, (std::vector<std::string>{"mu_"}));

  ASSERT_EQ(f->rngs.size(), 2u);
  EXPECT_EQ(f->rngs[0].kind, RngSite::kSplit);
  EXPECT_EQ(f->rngs[0].name, "child");
  EXPECT_EQ(f->rngs[1].kind, RngSite::kAmbient);
  EXPECT_EQ(f->rngs[1].name, "amb");

  std::vector<std::pair<int, std::string>> allocs;
  for (const AllocSite& a : f->allocs) allocs.emplace_back(a.kind, a.what);
  EXPECT_EQ(allocs, (std::vector<std::pair<int, std::string>>{
                        {AllocSite::kLocalCtor, "sized"},
                        {AllocSite::kLocalGrowth, "grown"},
                        {AllocSite::kGrowth, "buf_"},
                        {AllocSite::kMakeSmart, "Node"},
                        {AllocSite::kNew, "int"},
                    }));

  // reserve() on the member registers it as warm-capacity for the tree.
  EXPECT_NE(std::find(fm.reserved.begin(), fm.reserved.end(), "buf_"),
            fm.reserved.end());
}

TEST(ModelExtract, QualifiedAccessesCarryReceiverTypes) {
  const std::string src =
      "namespace fcr {\n"
      "struct CheckpointData { int entries; };\n"
      "int serialize(const CheckpointData& data) {\n"
      "  const auto loaded = open();\n"
      "  int a = data.entries;\n"
      "  int b = loaded->entries;\n"
      "  return a + b;\n"
      "}\n"
      "}  // namespace fcr\n";
  const FileModel fm = extract("src/sim/ckpt.cpp", lex(src));
  const auto* f = find_fn(fm, "fcr::serialize", true);
  ASSERT_NE(f, nullptr);

  const fcrlint::model::Access* via_param = nullptr;
  const fcrlint::model::Access* via_auto = nullptr;
  for (const auto& a : f->accesses) {
    if (a.name != "entries" || !a.qualified) continue;
    if (a.receiver == "data") via_param = &a;
    if (a.receiver == "loaded") via_auto = &a;
  }
  ASSERT_NE(via_param, nullptr);
  ASSERT_NE(via_auto, nullptr);
  // The parameter's declared type is known; the auto local's is not — so
  // only the former can ever match a guarded field's class.
  EXPECT_EQ(via_param->recv_type, "CheckpointData");
  EXPECT_EQ(via_auto->recv_type, "");
}

// ------------------------------------------------------------------ lockset

TEST(ModelLockset, FixtureFlagsOnlyTheUnlockedPath) {
  const auto findings = lint_tree(
      {{"src/sim/bad_lockset.cpp", read_fixture("bad_lockset.cpp.txt")}});
  EXPECT_EQ(lines_of(findings, "lockset"), (std::vector<int>{24}));
  for (const Finding& f : findings) {
    if (f.rule == "lockset") {
      EXPECT_NE(f.message.find("FCR_GUARDED_BY(m)"), std::string::npos);
      EXPECT_NE(f.message.find("peek"), std::string::npos);
    }
  }
}

TEST(ModelLockset, CallerHoldingTheLockCoversCalleesAcrossFiles) {
  const std::string header =
      "#pragma once\n"
      "namespace fcr {\n"
      "class Recorder {\n"
      " public:\n"
      "  void locked_drain();\n"
      "  void helper();\n"
      "  void drain() FCR_REQUIRES(m_);\n"
      " private:\n"
      "  Mutex m_;\n"
      "  int entries_ FCR_GUARDED_BY(m_) = 0;\n"
      "};\n"
      "}\n";
  const std::string good_cpp =
      "#include \"sim/rec.hpp\"\n"
      "namespace fcr {\n"
      "void Recorder::locked_drain() {\n"
      "  const MutexLock lock(m_);\n"
      "  helper();\n"
      "}\n"
      "void Recorder::helper() { entries_ = 0; }\n"
      "void Recorder::drain() { entries_ = 1; }\n"
      "}\n";
  // helper() is covered by its lock-holding caller; drain() inherits the
  // header declaration's FCR_REQUIRES. Neither flags.
  const auto good = lint_tree(
      {{"src/sim/rec.hpp", header}, {"src/sim/rec.cpp", good_cpp}});
  EXPECT_EQ(count_rule(good, "lockset"), 0);

  // Remove the caller's lock and helper()'s access loses every covered path.
  const std::string bad_cpp =
      "#include \"sim/rec.hpp\"\n"
      "namespace fcr {\n"
      "void Recorder::locked_drain() {\n"
      "  helper();\n"
      "}\n"
      "void Recorder::helper() { entries_ = 0; }\n"
      "void Recorder::drain() { entries_ = 1; }\n"
      "}\n";
  const auto bad = lint_tree(
      {{"src/sim/rec.hpp", header}, {"src/sim/rec.cpp", bad_cpp}});
  EXPECT_EQ(lines_of(bad, "lockset"), (std::vector<int>{6}));
}

// -------------------------------------------------------------- rng-lineage

TEST(ModelRngLineage, FixtureFlagsAmbientAndRerootedStreams) {
  const auto findings = lint_tree({{"src/sim/bad_rng_lineage.cpp",
                                    read_fixture("bad_rng_lineage.cpp.txt")}});
  EXPECT_EQ(lines_of(findings, "rng-lineage"), (std::vector<int>{17, 28}));
  for (const Finding& f : findings) {
    if (f.rule == "rng-lineage" && f.line == 17) {
      // The re-rooted seed carries its witness chain from the closure root.
      EXPECT_NE(f.message.find("run_execution"), std::string::npos);
      EXPECT_NE(f.message.find("helper_trial"), std::string::npos);
    }
  }
}

// ----------------------------------------------------------- hot-path-alloc

TEST(ModelHotPathAlloc, FixtureFlagsAllocationsReachableFromRoundLoop) {
  const auto findings = lint_tree(
      {{"src/sim/bad_hot_alloc.cpp", read_fixture("bad_hot_alloc.cpp.txt")}});
  EXPECT_EQ(lines_of(findings, "hot-path-alloc"), (std::vector<int>{25, 26}));
  for (const Finding& f : findings) {
    if (f.rule == "hot-path-alloc") {
      // Every finding proves its reachability with a witness chain that
      // starts at the round loop.
      EXPECT_NE(f.message.find("run_rounds"), std::string::npos);
      EXPECT_NE(f.message.find("resolve_round"), std::string::npos);
    }
  }
}

// --------------------------------------------------------- error-provenance

TEST(ModelErrorProvenance, FixtureFlagsBareStdThrowOnPoolPath) {
  const auto findings =
      lint_tree({{"src/sim/bad_error_provenance.cpp",
                  read_fixture("bad_error_provenance.cpp.txt")}});
  EXPECT_EQ(lines_of(findings, "error-provenance"), (std::vector<int>{15}));
  for (const Finding& f : findings) {
    if (f.rule == "error-provenance") {
      EXPECT_NE(f.message.find("run_batch"), std::string::npos);
      EXPECT_NE(f.message.find("fcr::Error"), std::string::npos);
    }
  }
}

// -------------------------------------------------------------------- cache

TEST(ModelCache, RoundTripPreservesArtifactsAndReceiverTypes) {
  const std::string path = "src/sim/bad_lockset.cpp";
  const std::string content = read_fixture("bad_lockset.cpp.txt");
  const fcrlint::FileArtifacts a = fcrlint::prepare_artifacts(path, content);
  const std::uint64_t hash = fcrlint::cache::fnv1a64(content);

  const std::string file =
      (std::filesystem::path(testing::TempDir()) / "fcrlint_rt.cache").string();
  fcrlint::cache::ArtifactCache writer;
  writer.store(path, hash, a);
  ASSERT_TRUE(writer.save(file));

  fcrlint::cache::ArtifactCache reader;
  ASSERT_TRUE(reader.load(file));
  EXPECT_EQ(reader.size(), 1u);
  const fcrlint::FileArtifacts* hit = reader.lookup(path, hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->findings, a.findings);
  EXPECT_EQ(hit->allows.size(), a.allows.size());
  EXPECT_TRUE(hit->has_model);
  EXPECT_EQ(hit->model.functions.size(), a.model.functions.size());
  EXPECT_EQ(hit->model.fields.size(), a.model.fields.size());

  // The receiver-typed access (snap.entries with declared type Snapshot)
  // survives the text round trip — the lockset rule depends on it.
  bool typed_access = false;
  for (const auto& fn : hit->model.functions) {
    for (const auto& acc : fn.accesses) {
      if (acc.qualified && acc.receiver == "snap" &&
          acc.recv_type == "Snapshot") {
        typed_access = true;
      }
    }
  }
  EXPECT_TRUE(typed_access);

  // A content change means a different hash: lookup must miss.
  EXPECT_EQ(reader.lookup(path, hash + 1), nullptr);
  EXPECT_EQ(reader.stats().hits, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(ModelCache, CorruptOrStaleCachesAreDiscardedWhole) {
  const auto tmp = std::filesystem::path(testing::TempDir());

  const std::string garbage = (tmp / "fcrlint_garbage.cache").string();
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a cache at all\n";
  }
  fcrlint::cache::ArtifactCache c1;
  EXPECT_FALSE(c1.load(garbage));
  EXPECT_EQ(c1.size(), 0u);

  // Right header, malformed record: the whole cache is rejected, not just
  // the bad line — a partial model would silently skew the tree analyses.
  const std::string truncated = (tmp / "fcrlint_truncated.cache").string();
  {
    std::ofstream out(truncated, std::ios::binary);
    out << "fcrlintcache " << fcrlint::cache::kFormatRev << " "
        << fcrlint::kRules.size() << "\n";
    out << "= 1234 src/sim/x.cpp\n";
    out << "F not-a-number oops\n";
  }
  fcrlint::cache::ArtifactCache c2;
  EXPECT_FALSE(c2.load(truncated));
  EXPECT_EQ(c2.size(), 0u);

  // A stale format revision (or rule-count drift) discards the file too.
  const std::string stale = (tmp / "fcrlint_stale.cache").string();
  {
    std::ofstream out(stale, std::ios::binary);
    out << "fcrlintcache 999 " << fcrlint::kRules.size() << "\n";
  }
  fcrlint::cache::ArtifactCache c3;
  EXPECT_FALSE(c3.load(stale));
  EXPECT_EQ(c3.size(), 0u);
}

// ---------------------------------------------------------------------- fix

TEST(ModelFix, MechanicalRewritesConvergeInOnePass) {
  const std::string src =
      "// doc header first\n"
      "#include <math.h>\n"
      "double fixture(double x);\n";
  const auto first = fcrlint::fix::apply_fixes("src/util/fixme.hpp", src);
  EXPECT_EQ(first.edits, 2u);
  EXPECT_NE(first.content.find("// doc header first\n#pragma once\n"),
            std::string::npos);
  EXPECT_NE(first.content.find("<cmath>"), std::string::npos);
  EXPECT_EQ(first.content.find("math.h"), std::string::npos);

  const auto second =
      fcrlint::fix::apply_fixes("src/util/fixme.hpp", first.content);
  EXPECT_EQ(second.edits, 0u);
  EXPECT_EQ(second.content, first.content);
}

// ---------------------------------------------------------------- real tree

TEST(ModelRealTree, SrcIsCleanAndRoundLoopReachesChannelResolution) {
  namespace fs = std::filesystem;
  const fs::path src_root = fs::path(FCRLINT_REPO_DIR) / "src";
  ASSERT_TRUE(fs::exists(src_root));

  std::vector<fcrlint::FileArtifacts> artifacts;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    const std::string rel =
        fs::relative(entry.path(), fs::path(FCRLINT_REPO_DIR))
            .generic_string();
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    artifacts.push_back(fcrlint::prepare_artifacts(rel, os.str()));
  }
  ASSERT_GT(artifacts.size(), 50u);

  // The shipped library carries zero findings (reasoned allows included).
  const std::vector<Finding> findings = fcrlint::finalize_tree(artifacts);
  std::string render;
  for (const Finding& f : findings) {
    render += f.file + ":" + std::to_string(f.line) + " [" + f.rule + "] " +
              f.message + "\n";
  }
  EXPECT_TRUE(findings.empty()) << render;

  // Static zero-alloc proof, part 1: the hot reachable set exists and
  // contains the channel resolution layer the round loops drive — BOTH the
  // per-node virtual loop and the columnar SoA loop, which must pull in the
  // columnar_decide implementations through virtual-call edge resolution.
  std::vector<fcrlint::model::TreeFile> tree;
  for (const fcrlint::FileArtifacts& a : artifacts) {
    if (a.has_model) tree.push_back({a.path, &a.model, &a.allows});
  }
  const fcrlint::model::ProgramModel pm =
      fcrlint::model::build_program_model(tree);
  const std::vector<std::size_t> roots = fcrlint::model::pmdetail::roots_matching(
      pm, {"ExecutionWorkspace::run_rounds",
           "ExecutionWorkspace::run_rounds_columnar"});
  ASSERT_GE(roots.size(), 2u);
  const std::vector<std::size_t> parent =
      fcrlint::model::reach_parents(pm, roots);

  std::size_t reached = 0;
  bool resolve_reached = false;
  bool columnar_decide_reached = false;
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    if (parent[i] == fcrlint::npos) continue;
    ++reached;
    if (pm.fns[i].facts.name == "resolve" &&
        fcrlint::detail::starts_with(pm.fns[i].file, "src/")) {
      resolve_reached = true;
    }
    if (pm.fns[i].facts.name == "columnar_decide" &&
        fcrlint::detail::starts_with(pm.fns[i].file, "src/")) {
      columnar_decide_reached = true;
    }
  }
  // The loop body (on_round_begin/resolve/on_round_end plumbing) is part of
  // the reachable set; a degenerate one-node set would mean the call-edge
  // resolution silently broke. The columnar per-algorithm decision kernels
  // must be inside the no-allocation region too.
  EXPECT_GE(reached, 5u);
  EXPECT_TRUE(resolve_reached);
  EXPECT_TRUE(columnar_decide_reached);
}

}  // namespace
