// Tests for the second-wave deployment generators (multi_scale) and
// deployment corner cases discovered during the experiments.
#include <gtest/gtest.h>

#include <numeric>

#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

TEST(MultiScale, PopulatesEveryRequestedClass) {
  Rng rng(50);
  const std::size_t levels = 8, per_level = 16;
  const Deployment dep = multi_scale(levels, per_level, rng).normalized();
  EXPECT_EQ(dep.size(), levels * per_level);

  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  const LinkClassPartition part(dep, ids);

  // Every class 0..levels-1 should hold roughly per_level nodes (boundary
  // nodes between levels may slip one class).
  for (std::size_t i = 0; i < levels; ++i) {
    EXPECT_GE(part.size_of(i), per_level / 2) << "class " << i;
    EXPECT_LE(part.size_of(i), per_level * 2) << "class " << i;
  }
}

TEST(MultiScale, LinkRatioGrowsGeometricallyWithLevels) {
  Rng rng(51);
  const double r4 = multi_scale(4, 8, rng).link_ratio();
  const double r8 = multi_scale(8, 8, rng).link_ratio();
  EXPECT_GT(r8, 8.0 * r4);  // each extra level doubles the top spacing
}

TEST(MultiScale, Validation) {
  Rng rng(52);
  EXPECT_THROW(multi_scale(0, 8, rng), std::invalid_argument);
  EXPECT_THROW(multi_scale(4, 1, rng), std::invalid_argument);
}

TEST(MultiScale, Deterministic) {
  Rng a(53), b(53);
  const Deployment da = multi_scale(4, 8, a);
  const Deployment db = multi_scale(4, 8, b);
  EXPECT_EQ(da.positions(), db.positions());
}

TEST(MultiScale, NeighboringScalesAreCoupled) {
  // The last node of level i and the first of level i+1 sit within one
  // level-i spacing of each other: the interference-coupling property the
  // generator exists for (unlike the exponential chain).
  Rng rng(54);
  const std::size_t levels = 5, per_level = 8;
  const Deployment dep = multi_scale(levels, per_level, rng);
  for (std::size_t i = 0; i + 1 < levels; ++i) {
    const NodeId last_of_i = static_cast<NodeId>((i + 1) * per_level - 1);
    const NodeId first_of_next = static_cast<NodeId>((i + 1) * per_level);
    const double gap =
        dist(dep.position(last_of_i), dep.position(first_of_next));
    const double spacing = std::pow(2.0, static_cast<double>(i));
    EXPECT_LE(gap, 1.2 * spacing) << "levels " << i << "/" << i + 1;
  }
}

}  // namespace
}  // namespace fcr
