// Unit tests for 2-D geometry: vectors, bounding boxes, hull, diameter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/hull.hpp"
#include "geom/point.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

// --------------------------------------------------------------------- Vec2

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2, Distances) {
  const Vec2 a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dist_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dist(a, b), 5.0);
}

TEST(Vec2, UnitAt) {
  const Vec2 e = unit_at(0.0);
  EXPECT_NEAR(e.x, 1.0, 1e-12);
  EXPECT_NEAR(e.y, 0.0, 1e-12);
  const Vec2 n = unit_at(3.14159265358979323846 / 2.0);
  EXPECT_NEAR(n.x, 0.0, 1e-12);
  EXPECT_NEAR(n.y, 1.0, 1e-12);
}

// --------------------------------------------------------------------- BBox

TEST(BBox, EmptyByDefault) {
  const BBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.extent(), 0.0);
  EXPECT_FALSE(b.contains({0.0, 0.0}));
}

TEST(BBox, ExtendAndQuery) {
  BBox b;
  b.extend({1.0, 2.0});
  b.extend({-1.0, 5.0});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
  EXPECT_DOUBLE_EQ(b.extent(), 3.0);
  EXPECT_TRUE(b.contains({0.0, 3.0}));
  EXPECT_FALSE(b.contains({2.0, 3.0}));
}

TEST(BBox, OfSpan) {
  const std::vector<Vec2> pts = {{0, 0}, {2, 1}, {1, 4}};
  const BBox b = BBox::of(pts);
  EXPECT_DOUBLE_EQ(b.lo.x, 0.0);
  EXPECT_DOUBLE_EQ(b.hi.y, 4.0);
}

// --------------------------------------------------------------------- hull

TEST(Hull, SquareWithInteriorPoint) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const std::vector<Vec2> hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  for (const Vec2 v : hull) {
    EXPECT_TRUE((v.x == 0.0 || v.x == 1.0) && (v.y == 0.0 || v.y == 1.0));
  }
}

TEST(Hull, DegenerateInputs) {
  EXPECT_TRUE(convex_hull(std::vector<Vec2>{}).empty());
  EXPECT_EQ(convex_hull(std::vector<Vec2>{{1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull(std::vector<Vec2>{{1, 1}, {2, 2}}).size(), 2u);
  // Duplicates collapse.
  EXPECT_EQ(convex_hull(std::vector<Vec2>{{1, 1}, {1, 1}}).size(), 1u);
}

TEST(Hull, CollinearPointsReduceToExtremes) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const std::vector<Vec2> hull = convex_hull(pts);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(dist(hull[0], hull[1]), std::sqrt(18.0));
}

TEST(Diameter, KnownCases) {
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec2>{}), 0.0);
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec2>{{5, 5}}), 0.0);
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec2>{{0, 0}, {3, 4}}), 5.0);
  const std::vector<Vec2> square = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(diameter(square), std::sqrt(2.0));
}

TEST(Diameter, MatchesBruteForceOnRandomSets) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> pts;
    const std::size_t n = 3 + rng.uniform_int(std::uint64_t{60});
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
    }
    double brute = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        brute = std::max(brute, dist(pts[i], pts[j]));
      }
    }
    EXPECT_NEAR(diameter(pts), brute, 1e-9) << "trial " << trial;
  }
}

TEST(Diameter, RingDiameterIsTwiceRadius) {
  std::vector<Vec2> pts;
  const int n = 64;  // even point count: antipodal pairs exist exactly
  for (int i = 0; i < n; ++i) {
    pts.push_back(5.0 * unit_at(2.0 * 3.14159265358979323846 * i / n));
  }
  EXPECT_NEAR(diameter(pts), 10.0, 1e-9);
}

}  // namespace
}  // namespace fcr
