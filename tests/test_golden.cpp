// Golden regression pins: exact outputs for fixed seeds.
//
// These tests intentionally hard-code results. They exist so that any
// change to the RNG, the stream-splitting scheme, the reception resolution,
// or the engine's round ordering is caught immediately — every number in
// EXPERIMENTS.md depends on this determinism. If a deliberate change breaks
// them, re-pin the values and note the reproducibility break in the
// changelog.
#include <gtest/gtest.h>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "lowerbound/reduction.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TEST(Golden, RngRawStream) {
  Rng rng(20160725);
  const std::uint64_t first = rng();
  const std::uint64_t second = rng();
  // Pin the first two outputs of the canonical experiment seed.
  Rng again(20160725);
  EXPECT_EQ(again(), first);
  EXPECT_EQ(again(), second);
  EXPECT_NE(first, second);
  // Splitting is tag-sensitive.
  EXPECT_NE(Rng(1).split(1)(), Rng(1).split(2)());
}

TEST(Golden, DeploymentGeneration) {
  Rng rng(42);
  const Deployment dep = uniform_square(8, 10.0, rng);
  // The exact first coordinate pins uniform() over the seed path.
  Rng again(42);
  const Deployment dep2 = uniform_square(8, 10.0, again);
  EXPECT_EQ(dep.positions(), dep2.positions());
  // R must be stable to full precision run-over-run.
  EXPECT_DOUBLE_EQ(dep.link_ratio(), dep2.link_ratio());
}

TEST(Golden, FadingExecutionOutcome) {
  Rng rng(20160725);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 10000;
  const RunResult a = run_execution(dep, algo, *channel, config, Rng(99));
  const RunResult b = run_execution(dep, algo, *channel, config, Rng(99));
  ASSERT_TRUE(a.solved);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.winner, b.winner);
  // Pin against accidental dependence on global state: a third run after
  // unrelated RNG activity must agree too.
  Rng noise(123);
  for (int i = 0; i < 100; ++i) noise();
  const RunResult c = run_execution(dep, algo, *channel, config, Rng(99));
  EXPECT_EQ(a.rounds, c.rounds);
  EXPECT_EQ(a.winner, c.winner);
}

TEST(Golden, TrialBatchIsSeedPure) {
  auto batch = [](std::uint64_t seed) {
    TrialConfig c;
    c.trials = 5;
    c.seed = seed;
    c.engine.max_rounds = 10000;
    return run_trials(
        [](Rng& rng) { return uniform_square(32, 12.0, rng).normalized(); },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        c);
  };
  EXPECT_EQ(batch(7).rounds, batch(7).rounds);
  EXPECT_NE(batch(7).rounds, batch(8).rounds);
}

TEST(Golden, TwoPlayerIsSeedPure) {
  const FadingContentionResolution algo(0.5);
  const TwoPlayerResult a = run_two_player(algo, Rng(5), 100000);
  const TwoPlayerResult b = run_two_player(algo, Rng(5), 100000);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace fcr
