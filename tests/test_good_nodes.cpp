// Good-node / annulus analyzer tests (paper Definition 1, Lemmas 2 and 6).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/good_nodes.hpp"
#include "deploy/generators.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

std::vector<NodeId> all_ids(const Deployment& dep) {
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return ids;
}

TEST(GoodNodeParams, EpsilonAndBudget) {
  GoodNodeParams p;
  p.alpha = 3.0;
  EXPECT_DOUBLE_EQ(p.epsilon(), 0.5);
  // Budget at t: 96 * 2^{t * (alpha - eps)} = 96 * 2^{2.5 t}.
  EXPECT_DOUBLE_EQ(p.annulus_limit(0), 96.0);
  EXPECT_DOUBLE_EQ(p.annulus_limit(1), 96.0 * std::pow(2.0, 2.5));
  EXPECT_DOUBLE_EQ(p.annulus_limit(2), 96.0 * std::pow(2.0, 5.0));
}

TEST(GoodNodeParams, RequiresSuperQuadraticAlpha) {
  GoodNodeParams p;
  p.alpha = 2.0;
  EXPECT_THROW(p.annulus_limit(0), std::invalid_argument);
}

TEST(GoodNodes, SparsePairIsGood) {
  const Deployment dep = single_pair(1.0);
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  EXPECT_TRUE(analyzer.is_good(0));
  EXPECT_TRUE(analyzer.is_good(1));
  const AnnulusProfile prof = analyzer.profile(0);
  EXPECT_EQ(prof.link_class, 0);
  ASSERT_FALSE(prof.counts.empty());
  // Annulus t=0 is the half-open shell (1, 2]; the partner at exactly
  // distance 1 = 2^0 sits on the excluded inner boundary.
  EXPECT_EQ(prof.counts[0], 0u);
}

TEST(GoodNodes, DenseAnnulusMakesNodeBad) {
  // After normalization the shortest link is 1, so the t=0 annulus of a
  // *class-0* node can never hold 96 unit-separated nodes — the packing
  // argument of Claim 2 in action. Violations come from big-class nodes
  // surrounded by small-class swarms (the Lemma 6 scenario): give node 0 a
  // partner at distance 16 (class 4) and pack > 96 unit-spaced nodes into
  // its t=0 annulus (16, 32].
  std::vector<Vec2> pts = {{0.0, 0.0}, {16.0, 0.0}};
  for (const double radius : {20.0, 22.0, 24.0, 26.0}) {
    for (int k = 0; k < 40; ++k) {
      pts.push_back(radius *
                    unit_at(2.0 * 3.14159265358979323846 * k / 40.0));
    }
  }
  const Deployment dep(std::move(pts));
  ASSERT_NEAR(dep.min_link(), 1.0, 1.0);  // ring spacing keeps links >= ~2
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  const AnnulusProfile prof = analyzer.profile(0);
  // Node 0's nearest active neighbor is the partner at 16 / min_link.
  EXPECT_GE(prof.link_class, 3);
  EXPECT_GT(prof.counts[0], 96u);
  EXPECT_FALSE(prof.good);
  EXPECT_FALSE(analyzer.is_good(0));
}

TEST(GoodNodes, ProfileCountsMatchAnnulusDefinition) {
  // Ring of nodes at known radii around node 0 with partner at distance 1.
  // Annulus t covers (2^t, 2^{t+1}].
  std::vector<Vec2> pts = {{0, 0}, {1.0, 0}};
  pts.push_back({0.0, 1.5});   // t=0 (dist 1.5)
  pts.push_back({0.0, -3.0});  // t=1 (dist 3)
  pts.push_back({5.0, 0.0});   // t=2 (dist 5)
  pts.push_back({0.0, 7.0});   // t=2 (dist 7)
  const Deployment dep(std::move(pts));
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  const AnnulusProfile prof = analyzer.profile(0);
  ASSERT_GE(prof.counts.size(), 3u);
  // t=0 shell (1, 2]: the node at 1.5 only (the partner at exactly 1 is on
  // the excluded boundary); t=1 shell (2, 4]: the node at 3; t=2 shell
  // (4, 8]: the nodes at 5 and 7.
  EXPECT_EQ(prof.counts[0], 1u);
  EXPECT_EQ(prof.counts[1], 1u);
  EXPECT_EQ(prof.counts[2], 2u);
}

TEST(GoodNodes, SoleSurvivorProfileIsRejected) {
  const Deployment dep({{0, 0}, {5, 0}});
  const std::vector<NodeId> only = {0};
  const GoodNodeAnalyzer analyzer(dep, only);
  EXPECT_THROW(analyzer.profile(0), std::invalid_argument);
}

TEST(GoodNodes, GoodFractionEmptyClassIsNullopt) {
  const Deployment dep = single_pair(1.0);
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  // Class 0 holds both nodes; any higher class bucket would be empty, but a
  // pair has exactly one class bucket, so probe class 0 only.
  const auto frac = analyzer.good_fraction(0);
  ASSERT_TRUE(frac.has_value());
  EXPECT_DOUBLE_EQ(*frac, 1.0);
}

TEST(GoodNodes, WellSpacedSubsetHonorsSpacing) {
  Rng rng(501);
  const Deployment dep = uniform_square(300, 30.0, rng).normalized();
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  const double s = 2.0;
  for (std::size_t i = 0; i < analyzer.classes().class_count(); ++i) {
    const auto subset = analyzer.well_spaced_subset(i, s);
    const double spacing = (s + 1.0) * std::pow(2.0, static_cast<double>(i));
    for (std::size_t a = 0; a < subset.size(); ++a) {
      for (std::size_t b = a + 1; b < subset.size(); ++b) {
        EXPECT_GT(dist(dep.position(subset[a]), dep.position(subset[b])),
                  spacing * (1.0 - 1e-12));
      }
    }
  }
}

TEST(GoodNodes, WellSpacedSubsetIsConstantFractionOfGood) {
  // Lemma 2: |S_i| = Theta(#good). The greedy construction with s=2 keeps
  // at least a 1/49-ish packing fraction; check a loose 1/60 floor.
  Rng rng(502);
  const Deployment dep = uniform_square(400, 60.0, rng).normalized();
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  for (std::size_t i = 0; i < analyzer.classes().class_count(); ++i) {
    const auto good = analyzer.good_in_class(i);
    if (good.size() < 10) continue;
    const auto subset = analyzer.well_spaced_subset(i, 2.0);
    EXPECT_GE(subset.size() * 60, good.size()) << "class " << i;
    EXPECT_LE(subset.size(), good.size());
  }
}

TEST(GoodNodes, PartnerIsNearestActiveNode) {
  const Deployment dep({{0, 0}, {1, 0}, {10, 0}});
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  EXPECT_EQ(analyzer.partner(0), 1u);
  EXPECT_EQ(analyzer.partner(1), 0u);
  EXPECT_EQ(analyzer.partner(2), 1u);
}

TEST(GoodNodes, Lemma6SmallLowerClassMassImpliesManyGoodNodes) {
  // Build a deployment dominated by one link class (a lattice with unit-ish
  // spacing) plus a tiny number of much-closer pairs (smaller classes).
  // Lemma 6: when n_{<i} <= delta * n_i, at least half of V_i is good.
  Rng rng(503);
  std::vector<Vec2> pts;
  // 20x20 lattice at spacing 8 (class 3 for nearest distance in [8, 16)).
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 20; ++c) {
      pts.push_back({8.0 * c + rng.uniform(-0.4, 0.4),
                     8.0 * r + rng.uniform(-0.4, 0.4)});
    }
  }
  // 4 tight pairs (unit distance, class 0), far from each other.
  for (int k = 0; k < 4; ++k) {
    const Vec2 base{170.0 + 25.0 * k, -40.0};
    pts.push_back(base);
    pts.push_back(base + Vec2{1.0, 0.0});
  }
  const Deployment dep(std::move(pts));
  const GoodNodeAnalyzer analyzer(dep, all_ids(dep));
  const LinkClassPartition& classes = analyzer.classes();

  // Identify the lattice's class: the most populated one.
  std::size_t big_class = 0;
  for (std::size_t i = 1; i < classes.class_count(); ++i) {
    if (classes.size_of(i) > classes.size_of(big_class)) big_class = i;
  }
  ASSERT_GE(classes.size_of(big_class), 300u);
  // Premise: n_{<i} is tiny relative to n_i.
  EXPECT_LE(classes.size_below(big_class),
            classes.size_of(big_class) / 10);
  const auto frac = analyzer.good_fraction(big_class);
  ASSERT_TRUE(frac.has_value());
  EXPECT_GE(*frac, 0.5);
}

}  // namespace
}  // namespace fcr
