// Spatial grid tests: every query is validated against brute force over
// several deployment shapes, including the stretched exponential chain that
// motivates the adaptive cell size.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "geom/grid.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

std::vector<Vec2> random_points(std::size_t n, double side, Rng& rng) {
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

/// Geometrically stretched line: adversarial for fixed-cell grids.
std::vector<Vec2> stretched_points(std::size_t n) {
  std::vector<Vec2> pts;
  double x = 0.0, gap = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({x, 0.1 * static_cast<double>(i % 3)});
    x += gap;
    gap *= 1.8;
  }
  return pts;
}

NodeId brute_nearest(const std::vector<Vec2>& pts, Vec2 q, NodeId exclude) {
  NodeId best = kInvalidNode;
  double best_sq = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i < pts.size(); ++i) {
    if (i == exclude) continue;
    const double d2 = dist_sq(q, pts[i]);
    if (d2 < best_sq) {
      best_sq = d2;
      best = i;
    }
  }
  return best;
}

TEST(Grid, EmptySubset) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 1}};
  const SpatialGrid grid(pts, std::vector<NodeId>{});
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_FALSE(grid.nearest({0, 0}).has_value());
  EXPECT_TRUE(grid.in_disk({0, 0}, 100.0).empty());
  EXPECT_EQ(grid.count_in_annulus({0, 0}, 0.0, 100.0), 0u);
}

TEST(Grid, SinglePoint) {
  const std::vector<Vec2> pts = {{2.0, 3.0}};
  const SpatialGrid grid(pts);
  const auto nn = grid.nearest({0, 0});
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->id, 0u);
  EXPECT_NEAR(nn->distance, std::sqrt(13.0), 1e-12);
  // Excluding the only point leaves nothing.
  EXPECT_FALSE(grid.nearest({0, 0}, 0).has_value());
}

TEST(Grid, NearestMatchesBruteForceOnUniformPoints) {
  Rng rng(1);
  const auto pts = random_points(300, 50.0, rng);
  const SpatialGrid grid(pts);
  for (NodeId q = 0; q < pts.size(); ++q) {
    const auto got = grid.nearest(pts[q], q);
    ASSERT_TRUE(got.has_value());
    const NodeId want = brute_nearest(pts, pts[q], q);
    EXPECT_DOUBLE_EQ(dist(pts[got->id], pts[q]), dist(pts[want], pts[q]));
  }
}

TEST(Grid, NearestMatchesBruteForceOnStretchedChain) {
  const auto pts = stretched_points(40);
  const SpatialGrid grid(pts);
  for (NodeId q = 0; q < pts.size(); ++q) {
    const auto got = grid.nearest(pts[q], q);
    ASSERT_TRUE(got.has_value());
    const NodeId want = brute_nearest(pts, pts[q], q);
    EXPECT_DOUBLE_EQ(dist(pts[got->id], pts[q]), dist(pts[want], pts[q]))
        << "query " << q;
  }
}

TEST(Grid, NearestFromFarOutsideTheBounds) {
  Rng rng(2);
  const auto pts = random_points(50, 10.0, rng);
  const SpatialGrid grid(pts);
  const Vec2 far{1000.0, -500.0};
  const auto got = grid.nearest(far);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, brute_nearest(pts, far, kInvalidNode));
}

TEST(Grid, NearestDistanceAgrees) {
  Rng rng(3);
  const auto pts = random_points(100, 20.0, rng);
  const SpatialGrid grid(pts);
  for (NodeId q = 0; q < 20; ++q) {
    const auto d = grid.nearest_distance(pts[q], q);
    ASSERT_TRUE(d.has_value());
    EXPECT_NEAR(*d, dist(pts[q], pts[brute_nearest(pts, pts[q], q)]), 1e-12);
  }
}

TEST(Grid, InDiskMatchesBruteForce) {
  Rng rng(4);
  const auto pts = random_points(200, 30.0, rng);
  const SpatialGrid grid(pts);
  for (const double radius : {0.5, 3.0, 10.0, 100.0}) {
    for (NodeId q = 0; q < 10; ++q) {
      auto got = grid.in_disk(pts[q], radius, q);
      std::sort(got.begin(), got.end());
      std::vector<NodeId> want;
      for (NodeId i = 0; i < pts.size(); ++i) {
        if (i != q && dist(pts[i], pts[q]) <= radius) want.push_back(i);
      }
      EXPECT_EQ(got, want) << "radius " << radius << " query " << q;
    }
  }
}

TEST(Grid, CountInDiskAndAnnulusMatchBruteForce) {
  Rng rng(5);
  const auto pts = random_points(200, 30.0, rng);
  const SpatialGrid grid(pts);
  for (NodeId q = 0; q < 10; ++q) {
    for (const double inner : {0.0, 1.0, 4.0}) {
      const double outer = inner * 2.0 + 1.0;
      std::size_t want = 0;
      for (NodeId i = 0; i < pts.size(); ++i) {
        if (i == q) continue;
        const double d = dist(pts[i], pts[q]);
        if (d > inner && d <= outer) ++want;
      }
      EXPECT_EQ(grid.count_in_annulus(pts[q], inner, outer, q), want);
    }
    std::size_t disk_want = 0;
    for (NodeId i = 0; i < pts.size(); ++i) {
      if (i != q && dist(pts[i], pts[q]) <= 5.0) ++disk_want;
    }
    EXPECT_EQ(grid.count_in_disk(pts[q], 5.0, q), disk_want);
  }
}

TEST(Grid, AnnulusBoundarySemantics) {
  // Annulus is (inner, outer]: a point exactly at the inner radius is
  // excluded, exactly at the outer radius included.
  const std::vector<Vec2> pts = {{1.0, 0.0}, {2.0, 0.0}};
  const SpatialGrid grid(pts);
  EXPECT_EQ(grid.count_in_annulus({0, 0}, 1.0, 2.0), 1u);  // only (2,0)
  EXPECT_EQ(grid.count_in_annulus({0, 0}, 0.5, 1.0), 1u);  // only (1,0)
}

TEST(Grid, InvalidAnnulusThrows) {
  const std::vector<Vec2> pts = {{0, 0}};
  const SpatialGrid grid(pts);
  EXPECT_THROW(grid.count_in_annulus({0, 0}, 2.0, 1.0), std::invalid_argument);
}

TEST(Grid, SubsetQueriesIgnoreUnindexedPoints) {
  const std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const std::vector<NodeId> subset = {0, 2};
  const SpatialGrid grid(pts, subset);
  EXPECT_EQ(grid.size(), 2u);
  const auto nn = grid.nearest({0.9, 0.0});
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->id, 0u);  // point 1 is not indexed
  EXPECT_EQ(grid.count_in_disk({0, 0}, 10.0), 2u);
}

TEST(Grid, ExplicitCellSizeIsHonored) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 10}};
  const SpatialGrid grid(pts, 2.5);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 2.5);
  const auto nn = grid.nearest({9.0, 9.0});
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->id, 1u);
}

TEST(Grid, CoincidentPointsAreAllFound) {
  const std::vector<Vec2> pts = {{1, 1}, {1, 1}, {1, 1}};
  const SpatialGrid grid(pts);
  EXPECT_EQ(grid.count_in_disk({1, 1}, 0.0), 3u);
  const auto nn = grid.nearest({1, 1}, 0);
  ASSERT_TRUE(nn.has_value());
  EXPECT_DOUBLE_EQ(nn->distance, 0.0);
}

TEST(Grid, OutOfRangeSubsetIdThrows) {
  const std::vector<Vec2> pts = {{0, 0}};
  EXPECT_THROW(SpatialGrid(pts, std::vector<NodeId>{5}), std::invalid_argument);
}

}  // namespace
}  // namespace fcr
