// Integration tests across modules: the paper's headline comparisons at
// small-but-meaningful scale, run end-to-end through the trial runner.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/registry.hpp"
#include "core/fading_cr.hpp"
#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "sim/runner.hpp"
#include "stats/regression.hpp"

namespace fcr {
namespace {

TrialConfig config_for(std::size_t trials, std::uint64_t max_rounds = 20000) {
  TrialConfig c;
  c.trials = trials;
  c.engine.max_rounds = max_rounds;
  return c;
}

TrialSetResult run_algo(const std::string& key, std::size_t n,
                        std::size_t trials = 20) {
  const bool cd = algorithm_spec(key).needs_collision_detection;
  const bool is_fading = key == "fading";
  return run_trials(
      [n](Rng& rng) {
        return uniform_square(n, std::sqrt(static_cast<double>(n)) * 2.0, rng)
            .normalized();
      },
      is_fading ? sinr_channel_factory(3.0, 1.5, 1e-9)
                : radio_channel_factory(cd),
      [&key](const Deployment& dep) { return make_algorithm(key, dep.size()); },
      config_for(trials));
}

TEST(Integration, EveryAlgorithmSolvesItsNativeSetting) {
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    if (spec.key == "no-knockout") continue;  // by design hopeless at n = 128
    const auto result = run_algo(spec.key, 128, 10);
    EXPECT_EQ(result.solved, result.trials) << spec.key;
  }
}

TEST(Integration, FadingBeatsDecayAtHighQuantiles) {
  // The paper's headline separation — O(log n) vs Theta(log^2 n) — is a
  // *high-probability* statement. Decay's EXPECTED time is also O(log n)
  // (one ladder slot per sweep sits near 1/#active, succeeding with
  // constant probability), so medians do not separate; the tail does:
  // reaching success probability 1 - 1/n costs decay Theta(log n) whole
  // sweeps of length Theta(log n).
  const auto fading = run_algo("fading", 512, 60);
  const auto decay = run_algo("decay", 512, 60);
  ASSERT_EQ(fading.solved, fading.trials);
  ASSERT_EQ(decay.solved, decay.trials);
  EXPECT_LT(fading.summary().p95, decay.summary().p95);
}

TEST(Integration, FadingRoundsScaleLogarithmically) {
  // Fit median rounds against log2 n; the paper's Theorem 11 predicts a
  // linear relationship with strong fit for poly-R deployments.
  std::vector<double> log_n, med;
  for (const std::size_t n : {32u, 64u, 128u, 256u, 512u}) {
    const auto result = run_algo("fading", n, 15);
    ASSERT_EQ(result.solved, result.trials) << n;
    log_n.push_back(std::log2(static_cast<double>(n)));
    med.push_back(result.summary().median);
  }
  const LinearFit fit = linear_fit(log_n, med);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_GT(fit.r_squared, 0.85);
}

TEST(Integration, RoundsGrowWithLinkRatioOnChains) {
  // Theorem 11's log R term: exponential chains with growing R cost more.
  auto chain_rounds = [](double span) {
    const auto result = run_trials(
        [span](Rng& rng) {
          return exponential_chain(96, span, rng).normalized();
        },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        config_for(15));
    EXPECT_EQ(result.solved, result.trials);
    return result.summary().median;
  };
  const double small_r = chain_rounds(1 << 8);
  const double large_r = chain_rounds(1 << 18);
  EXPECT_GT(large_r, small_r);
}

TEST(Integration, KnockoutsEmptyLinkClassesSmallestFirstTendency) {
  // Observe link-class dynamics through the observer hook: the smallest
  // non-empty class index should (weakly) increase over time as dense
  // regions thin out.
  Rng rng(900);
  const Deployment dep = two_clusters(128, 500.0, 8.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.stop_on_solve = false;
  config.max_rounds = 300;

  std::vector<std::size_t> smallest_class_trace;
  run_execution(dep, algo, *channel, config, rng.split(1),
                [&](const RoundView& view) {
                  std::vector<NodeId> active;
                  for (NodeId id = 0; id < view.size(); ++id) {
                    if (view.is_contending(id)) active.push_back(id);
                  }
                  if (active.size() < 2) return;
                  const LinkClassPartition part(dep, active);
                  smallest_class_trace.push_back(part.smallest_nonempty());
                });
  ASSERT_GT(smallest_class_trace.size(), 5u);
  // Tendency check (not strict monotonicity): the final smallest non-empty
  // class must not be below the initial one.
  EXPECT_GE(smallest_class_trace.back(), smallest_class_trace.front());
}

TEST(Integration, AlohaMatchesFadingOnlyWithExactKnowledge) {
  // ALOHA with exact n is O(1) expected: a knowledge-for-fading trade.
  const auto aloha = run_algo("aloha", 256, 20);
  const auto fading = run_algo("fading", 256, 20);
  ASSERT_EQ(aloha.solved, aloha.trials);
  // Both are fast; ALOHA's median should be a small constant.
  EXPECT_LT(aloha.summary().median, 20.0);
  EXPECT_LT(fading.summary().median, 200.0);
}

TEST(Integration, CdLeaderIsLogarithmicInTheStrongerModel) {
  const auto cd = run_algo("cd-leader", 256, 20);
  ASSERT_EQ(cd.solved, cd.trials);
  EXPECT_LT(cd.summary().median, 8.0 * std::log2(256.0));
}

TEST(Integration, BackoffIsLinearish) {
  const auto b64 = run_algo("backoff", 64, 15);
  const auto b256 = run_algo("backoff", 256, 15);
  ASSERT_EQ(b64.solved, b64.trials);
  ASSERT_EQ(b256.solved, b256.trials);
  // Quadrupling n should far more than double backoff's completion time,
  // while staying within the doubling-window structure (factor <= ~8).
  EXPECT_GT(b256.summary().median, 2.0 * b64.summary().median);
}

TEST(Integration, ObliviousSchedulesAreChannelInvariant) {
  // Decay never reacts to feedback, so its completion round distribution is
  // identical on the radio and SINR channels given the same seeds.
  const std::size_t n = 64;
  auto run_on = [n](const ChannelFactory& channel) {
    return run_trials(
        [n](Rng& rng) { return uniform_square(n, 16.0, rng).normalized(); },
        channel,
        [](const Deployment& dep) {
          return make_algorithm("decay", dep.size());
        },
        config_for(10));
  };
  const auto on_radio = run_on(radio_channel_factory(false));
  const auto on_sinr = run_on(sinr_channel_factory(3.0, 1.5, 1e-9));
  EXPECT_EQ(on_radio.rounds, on_sinr.rounds);
}

}  // namespace
}  // namespace fcr
