// Tests for the KS machinery and the isometry transforms, including the
// bit-exact invariance of executions under exact isometries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "deploy/transform.hpp"
#include "ext/rayleigh.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "stats/ks_test.hpp"

namespace fcr {
namespace {

// ----------------------------------------------------------------------- ks

TEST(KolmogorovTail, KnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_tail(0.0), 1.0);
  // Q(1.36) ~ 0.049 — the classic 5% critical value.
  EXPECT_NEAR(kolmogorov_tail(1.36), 0.049, 0.002);
  EXPECT_LT(kolmogorov_tail(2.0), 0.001);
  EXPECT_GT(kolmogorov_tail(0.5), 0.95);
  EXPECT_THROW(kolmogorov_tail(-1.0), std::invalid_argument);
}

TEST(KsOneSample, UniformSampleAgainstUniformCdf) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.uniform());
  const KsResult r = ks_test_one_sample(
      sample, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_GT(r.p_value, 0.01);  // should not reject
}

TEST(KsOneSample, DetectsWrongDistribution) {
  Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.uniform() * 0.5);
  const KsResult r = ks_test_one_sample(
      sample, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_GT(r.statistic, 0.4);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTwoSample, SameDistributionPasses) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.normal());
  for (int i = 0; i < 1500; ++i) b.push_back(rng.normal());
  const KsResult r = ks_test_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTwoSample, ShiftedDistributionFails) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.normal());
  for (int i = 0; i < 1500; ++i) b.push_back(rng.normal() + 0.5);
  const KsResult r = ks_test_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTwoSample, HandlesTiesAndIntegers) {
  // Completion rounds are integers: heavy ties must not break the scan.
  const std::vector<double> a = {1, 1, 2, 2, 2, 3, 4, 4};
  const std::vector<double> b = {1, 2, 2, 3, 3, 3, 4, 5};
  const KsResult r = ks_test_two_sample(a, b);
  EXPECT_GE(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
  // Identical samples: statistic exactly 0.
  const KsResult same = ks_test_two_sample(a, a);
  EXPECT_DOUBLE_EQ(same.statistic, 0.0);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
}

TEST(Ks, Validation) {
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(ks_test_two_sample(empty, one), std::invalid_argument);
  EXPECT_THROW(ks_test_one_sample(empty, [](double) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(ks_test_one_sample(one, Cdf{}), std::invalid_argument);
}

TEST(Ks, RayleighSeveritySweepIsDistributionallyFlat) {
  // The statistical backbone of E13's claim: completion-round samples at
  // severity 0 and severity 1 are not distinguishable at the 1% level.
  auto rounds_at = [](double severity) {
    std::vector<double> rounds;
    Rng rng(5);
    const Deployment dep = uniform_square(96, 20.0, rng).normalized();
    const SinrParams params =
        SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
    const RayleighSinrAdapter channel(params, severity, rng.split(9));
    const FadingContentionResolution algo;
    EngineConfig config;
    config.max_rounds = 20000;
    for (std::uint64_t t = 0; t < 300; ++t) {
      const RunResult r =
          run_execution(dep, algo, channel, config, rng.split(100 + t));
      rounds.push_back(static_cast<double>(r.rounds));
    }
    return rounds;
  };
  const KsResult r = ks_test_two_sample(rounds_at(0.0), rounds_at(1.0));
  EXPECT_GT(r.p_value, 0.01) << "KS statistic " << r.statistic;
}

// ----------------------------------------------------------------- isometry

TEST(Transform, GeometryIsPreserved) {
  Rng rng(6);
  const Deployment dep = uniform_square(60, 15.0, rng);
  for (const Deployment& t :
       {translated(dep, 100.0, -50.0), mirrored(dep), rotated90(dep),
        rotated(dep, 0.7)}) {
    EXPECT_EQ(t.size(), dep.size());
    EXPECT_NEAR(t.min_link(), dep.min_link(), 1e-9);
    EXPECT_NEAR(t.max_link(), dep.max_link(), 1e-9);
  }
  // Exact isometries preserve distances bit-for-bit.
  const Deployment m = mirrored(dep);
  const Deployment r90 = rotated90(dep);
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = 10; j < 20; ++j) {
      const double d0 = dist_sq(dep.position(i), dep.position(j));
      EXPECT_EQ(dist_sq(m.position(i), m.position(j)), d0);
      EXPECT_EQ(dist_sq(r90.position(i), r90.position(j)), d0);
    }
  }
}

TEST(Transform, ExecutionsAreBitIdenticalUnderExactIsometries) {
  // The whole stack consumes geometry only through squared distances, so
  // mirroring / rotating by 90 degrees must reproduce the execution
  // EXACTLY under the same seed.
  Rng rng(7);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;

  auto run_on = [&](const Deployment& d, std::uint64_t seed) {
    const SinrParams params =
        SinrParams::for_longest_link(3.0, 1.5, 1e-9, d.max_link());
    const SinrChannelAdapter adapter(params);
    return run_execution(d, algo, adapter, config, Rng(seed));
  };

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult base = run_on(dep, seed);
    const RunResult mir = run_on(mirrored(dep), seed);
    const RunResult rot = run_on(rotated90(dep), seed);
    EXPECT_EQ(base.rounds, mir.rounds) << seed;
    EXPECT_EQ(base.winner, mir.winner) << seed;
    EXPECT_EQ(base.rounds, rot.rounds) << seed;
    EXPECT_EQ(base.winner, rot.winner) << seed;
  }
}

TEST(Transform, GeneralRotationIsDistributionallyInvariant) {
  // Arbitrary-angle rotation perturbs distances by ~1 ulp; individual
  // executions may flip marginal receptions, but the completion-round
  // DISTRIBUTION must be unchanged (KS at the 1% level).
  Rng rng(8);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const Deployment rot = rotated(dep, 1.234);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;

  auto sample_on = [&](const Deployment& d) {
    const SinrParams params =
        SinrParams::for_longest_link(3.0, 1.5, 1e-9, d.max_link());
    const SinrChannelAdapter adapter(params);
    std::vector<double> rounds;
    for (std::uint64_t t = 0; t < 300; ++t) {
      rounds.push_back(static_cast<double>(
          run_execution(d, algo, adapter, config, Rng(1000 + t)).rounds));
    }
    return rounds;
  };
  const KsResult r = ks_test_two_sample(sample_on(dep), sample_on(rot));
  EXPECT_GT(r.p_value, 0.01) << "KS statistic " << r.statistic;
}

}  // namespace
}  // namespace fcr
