// Lane/scalar bit-identity harness for the SIMD lane engine.
//
// The lane route (LaneRng + per-algorithm lane_decide + the bitmask round
// loop) is only allowed to exist because it is bit-identical to the scalar
// columnar kernels, which are themselves proven against the virtual oracle
// (test_columnar_identity.cpp). This suite pins the chain end to end:
//   * LaneRng primitives against per-node scalar Rng streams, including
//     masked stepping (inactive lanes hold position) and the bernoulli
//     clamp cases p <= 0 / p >= 1;
//   * every certified registry kernel, kColumnarScalar vs kColumnarLanes,
//     across channels, ragged deployment sizes (n not a multiple of 64 or
//     8), and 32 seeds — full per-round history equality in observed mode,
//     outcome equality (and agreement with the virtual oracle, which pins
//     the mask round loop) in bare mode;
//   * both dispatch targets (AVX2 and the generic u64 fallback) produce the
//     same bits when the host supports both;
//   * a kernel whose lane_kernel_id is NOT in the certificate allowlist is
//     statically excluded from the SIMD route: auto routing falls back to
//     the scalar kernels and forcing kColumnarLanes throws.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "deploy/generators.hpp"
#include "sim/channel_adapter.hpp"
#include "sim/engine.hpp"
#include "sim/kernel_certificates.hpp"
#include "sim/runner.hpp"
#include "sim/workspace.hpp"
#include "util/rng.hpp"
#include "util/rng_lanes.hpp"

namespace fcr {
namespace {

// ------------------------------------------------------ LaneRng primitives

TEST(LaneRng, BernoulliAllMatchesScalarStreamsOnRaggedTail) {
  // n = 21: two full blocks plus a 5-lane tail.
  const std::size_t n = 21;
  for (const double p : {0.2, 0.5, 1e-3, 0.999}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Rng root(seed);
      std::vector<Rng> scalar;
      for (NodeId id = 0; id < n; ++id) scalar.push_back(root.split(id));
      LaneRng lanes;
      lanes.seed(root, n);
      const std::size_t words = (n + 63) / 64;
      for (int round = 0; round < 50; ++round) {
        std::vector<std::uint64_t> dec(words, 0);
        lanes.bernoulli_all(p, dec);
        for (NodeId id = 0; id < n; ++id) {
          const bool want = scalar[id].bernoulli(p);
          const bool got = ((dec[id >> 6] >> (id & 63)) & 1ULL) != 0;
          ASSERT_EQ(want, got)
              << "p=" << p << " seed=" << seed << " round=" << round
              << " id=" << id;
        }
      }
    }
  }
}

TEST(LaneRng, BernoulliClampsDrawNothingLikeScalar) {
  const std::size_t n = 13;
  const Rng root(99);
  std::vector<Rng> scalar;
  for (NodeId id = 0; id < n; ++id) scalar.push_back(root.split(id));
  LaneRng lanes;
  lanes.seed(root, n);
  std::vector<std::uint64_t> dec(1, 0);
  lanes.bernoulli_all(0.0, dec);   // p <= 0: no draw, no bit
  EXPECT_EQ(dec[0], 0u);
  lanes.bernoulli_all(1.0, dec);   // p >= 1: no draw, every bit
  EXPECT_EQ(dec[0], (std::uint64_t{1} << n) - 1);
  dec[0] = 0;
  // The streams must not have advanced: the next real draw still matches.
  lanes.bernoulli_all(0.5, dec);
  for (NodeId id = 0; id < n; ++id) {
    scalar[id].bernoulli(0.0);
    scalar[id].bernoulli(1.0);
    const bool want = scalar[id].bernoulli(0.5);
    EXPECT_EQ(want, ((dec[0] >> id) & 1ULL) != 0) << "id=" << id;
  }
}

TEST(LaneRng, BernoulliActiveStepsOnlyActiveLanes) {
  const std::size_t n = 70;  // one full word + 6-bit tail, ragged 8-lane tail
  const Rng root(7);
  std::vector<Rng> scalar;
  for (NodeId id = 0; id < n; ++id) scalar.push_back(root.split(id));
  LaneRng lanes;
  lanes.seed(root, n);

  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> active(words, ~std::uint64_t{0});
  active.back() = (std::uint64_t{1} << (n & 63)) - 1;
  std::vector<double> probability(LaneRng::padded_count(n), 0.2);

  Rng knockout_rng(555);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::uint64_t> dec(words, 0);
    lanes.bernoulli_active(active, probability.data(), dec);
    for (NodeId id = 0; id < n; ++id) {
      const bool is_active = ((active[id >> 6] >> (id & 63)) & 1ULL) != 0;
      const bool want = is_active && scalar[id].bernoulli(probability[id]);
      const bool got = ((dec[id >> 6] >> (id & 63)) & 1ULL) != 0;
      ASSERT_EQ(want, got) << "round=" << round << " id=" << id;
    }
    // Knock out a few random nodes between rounds: inactive lanes must hold
    // their stream position from now on.
    for (int k = 0; k < 3; ++k) {
      const auto id = static_cast<NodeId>(knockout_rng.uniform_int(
          static_cast<std::uint64_t>(n)));
      active[id >> 6] &= ~(std::uint64_t{1} << (id & 63));
    }
  }
}

TEST(LaneRng, UniformOffsetsPow2MatchesScalarUniformInt) {
  const std::size_t n = 19;
  const Rng root(31);
  std::vector<Rng> scalar;
  for (NodeId id = 0; id < n; ++id) scalar.push_back(root.split(id));
  LaneRng lanes;
  lanes.seed(root, n);
  std::vector<std::uint64_t> out(LaneRng::padded_count(n), 0);
  for (const std::uint64_t window : {1ULL, 2ULL, 8ULL, 64ULL, 4096ULL}) {
    const std::uint64_t base = window - 1;
    lanes.uniform_offsets_pow2(base, window, out.data());
    for (NodeId id = 0; id < n; ++id) {
      const std::uint64_t want = base + scalar[id].uniform_int(window);
      ASSERT_EQ(want, out[id]) << "window=" << window << " id=" << id;
    }
  }
}

TEST(LaneRng, RawAllMatchesScalarRawDraws) {
  const std::size_t n = 27;
  const Rng root(12345);
  std::vector<Rng> scalar;
  for (NodeId id = 0; id < n; ++id) scalar.push_back(root.split(id));
  LaneRng lanes;
  lanes.seed(root, n);
  for (int round = 0; round < 10; ++round) {
    const std::span<const std::uint64_t> raw = lanes.raw_all();
    ASSERT_GE(raw.size(), n);
    for (NodeId id = 0; id < n; ++id) {
      ASSERT_EQ(scalar[id](), raw[id]) << "round=" << round << " id=" << id;
    }
  }
}

TEST(LaneRng, SelectEqualMasksRaggedTail) {
  const std::size_t n = 67;  // 3-bit word tail; 3-lane block tail
  std::vector<std::uint64_t> column(LaneRng::padded_count(n), 42);
  column[3] = 7;
  column[66] = 7;
  // Phantom tail entries equal to the needle must NOT produce bits.
  for (std::size_t i = n; i < column.size(); ++i) column[i] = 7;
  std::vector<std::uint64_t> dec(2, 0);
  lane_select_equal(column.data(), 7, n, dec);
  EXPECT_EQ(dec[0], std::uint64_t{1} << 3);
  EXPECT_EQ(dec[1], std::uint64_t{1} << 2);
}

// ------------------------------------------------- both dispatch targets

bool avx2_available() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

TEST(LaneDispatch, BothTargetsProduceIdenticalBits) {
  if (!avx2_available()) {
    GTEST_SKIP() << "host has no AVX2; only the generic target can run";
  }
  const std::size_t n = 77;
  const std::size_t words = (n + 63) / 64;
  std::vector<double> probability(LaneRng::padded_count(n));
  for (std::size_t i = 0; i < probability.size(); ++i) {
    probability[i] = 0.05 + 0.9 * static_cast<double>(i) /
                                static_cast<double>(probability.size());
  }
  std::vector<std::uint64_t> active(words, ~std::uint64_t{0});
  active.back() = (std::uint64_t{1} << (n & 63)) - 1;
  active[0] &= 0xF0F0F0F0F0F0F0F0ULL;

  auto run_target = [&](LaneDispatch target) {
    force_lane_dispatch(target);
    LaneRng lanes;
    lanes.seed(Rng(2024), n);
    std::vector<std::uint64_t> transcript;
    for (int round = 0; round < 40; ++round) {
      std::vector<std::uint64_t> dec(words, 0);
      lanes.bernoulli_active(active, probability.data(), dec);
      transcript.insert(transcript.end(), dec.begin(), dec.end());
      dec.assign(words, 0);
      lanes.bernoulli_all(0.3, dec);
      transcript.insert(transcript.end(), dec.begin(), dec.end());
      const std::span<const std::uint64_t> raw = lanes.raw_all();
      transcript.insert(transcript.end(), raw.begin(), raw.end());
      std::vector<std::uint64_t> offsets(LaneRng::padded_count(n), 0);
      lanes.uniform_offsets_pow2(15, 16, offsets.data());
      transcript.insert(transcript.end(), offsets.begin(),
                        offsets.begin() + static_cast<std::ptrdiff_t>(n));
    }
    reset_lane_dispatch();
    return transcript;
  };

  const std::vector<std::uint64_t> generic = run_target(LaneDispatch::kGeneric);
  const std::vector<std::uint64_t> avx2 = run_target(LaneDispatch::kAvx2);
  EXPECT_EQ(generic, avx2);
}

// ------------------------------------------- engine-level identity suite

struct ChannelCase {
  const char* name;
  ChannelFactory factory;
};

std::vector<ChannelCase> channel_cases() {
  return {
      {"sinr", sinr_channel_factory(3.0, 1.5, 1e-9)},
      {"radio", radio_channel_factory(false)},
      {"radio-cd", radio_channel_factory(true)},
  };
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.solved, b.solved) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.winner, b.winner) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].round, b.history[r].round) << label << " r" << r;
    EXPECT_EQ(a.history[r].transmitters, b.history[r].transmitters)
        << label << " r" << r;
    EXPECT_EQ(a.history[r].receptions, b.history[r].receptions)
        << label << " r" << r;
    EXPECT_EQ(a.history[r].contending, b.history[r].contending)
        << label << " r" << r;
  }
}

TEST(LaneIdentity, EveryCertifiedKernelMatchesScalarAndVirtual) {
  const auto channels = channel_cases();
  // Ragged sizes on purpose: 48 (below the lane cutover, sub-word), 65 (one
  // bit past a word; one lane past a block), 127 (one bit short of two
  // words).
  const std::size_t sizes[] = {48, 65, 127};
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    if (spec.needs_collision_detection) continue;  // no lane kernels use CD
    for (const ChannelCase& chan : channels) {
      for (const std::size_t n : sizes) {
        Rng dep_rng(900 + n);
        const Deployment dep =
            uniform_square(n, 1.5 * static_cast<double>(n) / 3.0, dep_rng)
                .normalized();
        const auto channel = chan.factory(dep);
        const auto algorithm = make_algorithm(spec.key, dep.size());
        const ColumnarAlgorithm* columnar = algorithm->columnar();
        if (columnar == nullptr) continue;
        ASSERT_NE(columnar->lane_kernel_id(), nullptr)
            << spec.key << ": every registry columnar kernel ships a lane "
            << "form in this PR";
        ASSERT_TRUE(kernel_simd_certified(columnar->lane_kernel_id()))
            << spec.key;
        ExecutionWorkspace scalar_ws;
        ExecutionWorkspace lane_ws;
        ExecutionWorkspace virt_ws;
        for (std::uint64_t seed = 1; seed <= 32; ++seed) {
          const std::string label = std::string(spec.key) + "/" + chan.name +
                                    "/n" + std::to_string(n) + "/seed" +
                                    std::to_string(seed);
          // Observed mode: the lane route runs inside the materializing
          // loop; the full per-round history must match the scalar kernels.
          EngineConfig observed;
          observed.max_rounds = 192;
          observed.record_rounds = true;
          observed.path = ExecutionPath::kColumnarScalar;
          const RunResult scalar_run =
              scalar_ws.run(dep, *algorithm, *channel, observed, Rng(seed));
          observed.path = ExecutionPath::kColumnarLanes;
          const RunResult lane_run =
              lane_ws.run(dep, *algorithm, *channel, observed, Rng(seed));
          expect_identical(scalar_run, lane_run, label);

          // Bare mode: both columnar paths take the bitmask round loop
          // (when the algorithm/channel pair supports it); the virtual
          // oracle pins that loop's outcomes, not just lane/scalar
          // agreement.
          EngineConfig bare;
          bare.max_rounds = 192;
          bare.path = ExecutionPath::kColumnarScalar;
          const RunResult scalar_bare =
              scalar_ws.run(dep, *algorithm, *channel, bare, Rng(seed));
          bare.path = ExecutionPath::kColumnarLanes;
          const RunResult lane_bare =
              lane_ws.run(dep, *algorithm, *channel, bare, Rng(seed));
          bare.path = ExecutionPath::kVirtual;
          const RunResult virt_bare =
              virt_ws.run(dep, *algorithm, *channel, bare, Rng(seed));
          for (const RunResult* r : {&scalar_bare, &lane_bare}) {
            EXPECT_EQ(virt_bare.solved, r->solved) << label;
            EXPECT_EQ(virt_bare.rounds, r->rounds) << label;
            EXPECT_EQ(virt_bare.winner, r->winner) << label;
          }
          // Observed and bare agree on the outcome triple.
          EXPECT_EQ(scalar_run.solved, scalar_bare.solved) << label;
          EXPECT_EQ(scalar_run.rounds, scalar_bare.rounds) << label;
          EXPECT_EQ(scalar_run.winner, scalar_bare.winner) << label;
        }
      }
    }
  }
}

TEST(LaneIdentity, ForcedGenericDispatchMatchesAutoOnTheEngine) {
  if (!avx2_available()) {
    GTEST_SKIP() << "host has no AVX2; auto already IS the generic target";
  }
  Rng dep_rng(41);
  const Deployment dep = uniform_square(96, 28.0, dep_rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const auto algorithm = make_algorithm("fading", dep.size());
  EngineConfig config;
  config.max_rounds = 512;
  config.path = ExecutionPath::kColumnarLanes;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExecutionWorkspace ws_auto;
    const RunResult auto_run =
        ws_auto.run(dep, *algorithm, *channel, config, Rng(seed));
    force_lane_dispatch(LaneDispatch::kGeneric);
    ExecutionWorkspace ws_generic;
    const RunResult generic_run =
        ws_generic.run(dep, *algorithm, *channel, config, Rng(seed));
    reset_lane_dispatch();
    EXPECT_EQ(auto_run.solved, generic_run.solved) << seed;
    EXPECT_EQ(auto_run.rounds, generic_run.rounds) << seed;
    EXPECT_EQ(auto_run.winner, generic_run.winner) << seed;
  }
}

// ------------------------------------------- decertified-kernel rejection

/// A columnar algorithm whose lane_kernel_id is NOT in the certificate
/// allowlist: the engine must keep it off the SIMD route. The scalar kernel
/// delegates to columnar_bernoulli_all so the class stays lane-pure under
/// fcrlint's tree scan (this is a statically-excluded kernel, not an impure
/// one).
class UncertifiedLaneAlgo final : public Algorithm, public ColumnarAlgorithm {
 public:
  std::string name() const override { return "uncertified-lane"; }
  std::unique_ptr<NodeProtocol> make_node(NodeId /*id*/, Rng rng) const override {
    class Node final : public NodeProtocol {
     public:
      explicit Node(Rng rng) : rng_(rng) {}
      Action on_round_begin(std::uint64_t) override {
        return rng_.bernoulli(0.5) ? Action::kTransmit : Action::kListen;
      }
      void on_round_end(const Feedback&) override {}

     private:
      Rng rng_;
    };
    return std::make_unique<Node>(rng);
  }
  const ColumnarAlgorithm* columnar() const override { return this; }
  void columnar_decide(std::uint64_t /*round*/, ColumnarState& state,
                       std::span<std::uint64_t> decisions) const override {
    columnar_bernoulli_all(state, 0.5, decisions);
  }
  FeedbackMode feedback_mode() const override { return FeedbackMode::kNone; }
  const char* lane_kernel_id() const override {
    return "fcr::UncertifiedLaneAlgo::columnar_decide";  // not allowlisted
  }
  void lane_decide(std::uint64_t /*round*/, ColumnarState& /*state*/,
                   LaneRng& /*lanes*/,
                   std::span<std::uint64_t> /*decisions*/) const override {
    lane_decide_called = true;
  }

  mutable bool lane_decide_called = false;
};

TEST(LaneCertificates, UncertifiedKernelIsStaticallyExcludedFromSimdRoute) {
  ASSERT_FALSE(kernel_simd_certified("fcr::UncertifiedLaneAlgo::columnar_decide"));
  Rng dep_rng(17);
  // Well past both cutovers so auto routing would pick lanes if certified.
  const Deployment dep = uniform_square(128, 36.0, dep_rng).normalized();
  const auto channel = radio_channel_factory(false)(dep);
  UncertifiedLaneAlgo algo;
  ExecutionWorkspace ws;

  for (const ExecutionPath path :
       {ExecutionPath::kAuto, ExecutionPath::kColumnar,
        ExecutionPath::kColumnarScalar}) {
    EngineConfig config;
    config.max_rounds = 64;
    config.path = path;
    algo.lane_decide_called = false;
    (void)ws.run(dep, algo, *channel, config, Rng(3));
    EXPECT_FALSE(algo.lane_decide_called)
        << "path " << static_cast<int>(path)
        << " routed an uncertified kernel to the SIMD lane engine";
  }

  EngineConfig forced;
  forced.max_rounds = 64;
  forced.path = ExecutionPath::kColumnarLanes;
  EXPECT_THROW((void)ws.run(dep, algo, *channel, forced, Rng(3)),
               std::invalid_argument);
}

TEST(LaneCertificates, AllRegistryLaneKernelsAreCertified) {
  std::size_t lane_kernels = 0;
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    const auto algorithm = make_algorithm(spec.key, 64);
    const ColumnarAlgorithm* columnar = algorithm->columnar();
    if (columnar == nullptr || columnar->lane_kernel_id() == nullptr) continue;
    ++lane_kernels;
    EXPECT_TRUE(kernel_simd_certified(columnar->lane_kernel_id()))
        << spec.key << " ships a lane kernel without a certificate";
  }
  EXPECT_EQ(lane_kernels, std::size(kCertifiedLaneKernels));
}

}  // namespace
}  // namespace fcr
