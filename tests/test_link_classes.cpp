// Link-class partition tests against hand-constructed deployments where the
// nearest-neighbor structure is known exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

std::vector<NodeId> all_ids(const Deployment& dep) {
  std::vector<NodeId> ids(dep.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return ids;
}

TEST(LinkClasses, HandBuiltTwoScaleChain) {
  // Pairs at distance 1 and a far pair at distance 10; cross gaps 100.
  //   (0,0)-(1,0)            : class 0 members (nearest at 1)
  //   (101,0)-(111,0)        : nearest at 10 -> class 3 ([8,16))
  const Deployment dep({{0, 0}, {1, 0}, {101, 0}, {111, 0}});
  const LinkClassPartition part(dep, all_ids(dep));

  EXPECT_EQ(part.class_of(0), 0);
  EXPECT_EQ(part.class_of(1), 0);
  EXPECT_EQ(part.class_of(2), 3);
  EXPECT_EQ(part.class_of(3), 3);
  EXPECT_EQ(part.size_of(0), 2u);
  EXPECT_EQ(part.size_of(3), 2u);
  EXPECT_EQ(part.size_below(3), 2u);
  EXPECT_EQ(part.active_count(), 4u);
  EXPECT_EQ(part.smallest_nonempty(), 0u);
  EXPECT_DOUBLE_EQ(part.nearest_distance(0), 1.0);
  EXPECT_DOUBLE_EQ(part.nearest_distance(2), 10.0);
}

TEST(LinkClasses, ClassBucketsAreHalfOpenPowersOfTwo) {
  // Distances exactly at 2^i land in class i (range [2^i, 2^{i+1})).
  const Deployment dep({{0, 0}, {1, 0},        // unit pair: class 0
                        {100, 0}, {104, 0}});  // distance 4: class 2
  const LinkClassPartition part(dep, all_ids(dep));
  EXPECT_EQ(part.class_of(2), 2);
  EXPECT_EQ(part.class_of(3), 2);
}

TEST(LinkClasses, MigrationWhenNearestNeighborDeactivates) {
  // Nodes at 0, 1, 9: with all active, node 0's nearest is 1 (class 0).
  // When node 1 deactivates, node 0's nearest becomes node 2 at 9: class 3.
  const Deployment dep({{0, 0}, {1, 0}, {9, 0}});
  const LinkClassPartition before(dep, all_ids(dep));
  EXPECT_EQ(before.class_of(0), 0);

  const std::vector<NodeId> after_ids = {0, 2};
  const LinkClassPartition after(dep, after_ids);
  EXPECT_EQ(after.class_of(0), 3);  // 9 in [8, 16)
  EXPECT_EQ(after.class_of(2), 3);
  // No node can join a *smaller* link class by deactivations (paper §3.3).
  EXPECT_GE(after.class_of(0), before.class_of(0));
}

TEST(LinkClasses, SoleSurvivorHasNoClass) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const std::vector<NodeId> only = {1};
  const LinkClassPartition part(dep, only);
  EXPECT_EQ(part.class_of(1), kNoLinkClass);
  EXPECT_DOUBLE_EQ(part.nearest_distance(1), 0.0);
  EXPECT_EQ(part.active_count(), 1u);
  EXPECT_EQ(part.smallest_nonempty(), part.class_count());
}

TEST(LinkClasses, EmptyActiveSet) {
  const Deployment dep({{0, 0}, {1, 0}});
  const LinkClassPartition part(dep, std::vector<NodeId>{});
  EXPECT_EQ(part.active_count(), 0u);
  EXPECT_EQ(part.smallest_nonempty(), part.class_count());
  EXPECT_THROW(part.class_of(0), std::invalid_argument);
}

TEST(LinkClasses, InactiveQueriesAreRejected) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const std::vector<NodeId> subset = {0, 1};
  const LinkClassPartition part(dep, subset);
  EXPECT_THROW(part.class_of(2), std::invalid_argument);
  EXPECT_THROW(part.nearest_distance(2), std::invalid_argument);
  EXPECT_THROW(part.class_of(99), std::invalid_argument);
}

TEST(LinkClasses, DuplicateActiveIdsAreRejected) {
  const Deployment dep({{0, 0}, {1, 0}});
  const std::vector<NodeId> dup = {0, 0};
  EXPECT_THROW(LinkClassPartition(dep, dup), std::invalid_argument);
}

TEST(LinkClasses, SizesSumToActiveCount) {
  Rng rng(400);
  const Deployment dep = uniform_square(200, 40.0, rng).normalized();
  const LinkClassPartition part(dep, all_ids(dep));
  const auto sizes = part.sizes();
  const std::size_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(sizes.size(), dep.link_class_count());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], part.size_of(i));
  }
}

TEST(LinkClasses, ClassIndexMatchesNearestDistanceLog) {
  Rng rng(401);
  const Deployment dep = uniform_square(100, 25.0, rng).normalized();
  const LinkClassPartition part(dep, all_ids(dep));
  for (NodeId id = 0; id < dep.size(); ++id) {
    const double d = part.nearest_distance(id);
    const auto i = part.class_of(id);
    ASSERT_NE(i, kNoLinkClass);
    EXPECT_GE(d, std::pow(2.0, static_cast<double>(i)) * (1.0 - 1e-9));
    if (static_cast<std::size_t>(i) + 1 < part.class_count()) {
      EXPECT_LT(d, std::pow(2.0, static_cast<double>(i + 1)) * (1.0 + 1e-9));
    }
  }
}

TEST(LinkClasses, UnnormalizedDeploymentUsesRelativeDistances) {
  // Same geometry at 1000x scale must yield identical classes.
  const Deployment small({{0, 0}, {1, 0}, {101, 0}, {111, 0}});
  const Deployment big = small.scaled(1000.0);
  const LinkClassPartition ps(small, all_ids(small));
  const LinkClassPartition pb(big, all_ids(big));
  for (NodeId id = 0; id < small.size(); ++id) {
    EXPECT_EQ(ps.class_of(id), pb.class_of(id));
  }
}

}  // namespace
}  // namespace fcr
