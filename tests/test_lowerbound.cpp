// Lower-bound machinery tests: the restricted k-hitting game, player
// strategies, the Lemma 14 reduction, and the two-player simulator —
// including the reduction's consistency property (the simulated pair's view
// matches a genuine 2-node execution).
#include <gtest/gtest.h>

#include <cmath>

#include "core/fading_cr.hpp"
#include "lowerbound/hitting_game.hpp"
#include "lowerbound/players.hpp"
#include "lowerbound/reduction.hpp"
#include "stats/summary.hpp"

namespace fcr {
namespace {

TEST(HittingGame, RefereeEvaluatesIntersections) {
  const HittingGameReferee ref(10, {2, 7});
  EXPECT_EQ(ref.universe_size(), 10u);
  const std::vector<std::size_t> neither = {0, 1, 3};
  const std::vector<std::size_t> one = {2, 3, 4};
  const std::vector<std::size_t> other = {7};
  const std::vector<std::size_t> both = {2, 7, 9};
  EXPECT_FALSE(ref.evaluate(neither));
  EXPECT_TRUE(ref.evaluate(one));
  EXPECT_TRUE(ref.evaluate(other));
  EXPECT_FALSE(ref.evaluate(both));
  EXPECT_FALSE(ref.evaluate({}));
}

TEST(HittingGame, RefereeValidation) {
  Rng rng(1);
  EXPECT_THROW(HittingGameReferee(1, rng), std::invalid_argument);
  EXPECT_THROW(HittingGameReferee(10, {7, 2}), std::invalid_argument);
  EXPECT_THROW(HittingGameReferee(10, {2, 10}), std::invalid_argument);
  const HittingGameReferee ref(10, {2, 7});
  const std::vector<std::size_t> oob = {11};
  EXPECT_THROW(ref.evaluate(oob), std::invalid_argument);
}

TEST(HittingGame, RandomTargetIsUniformish) {
  Rng rng(2);
  int first_is_zero = 0;
  const int samples = 5000;
  for (int i = 0; i < samples; ++i) {
    const HittingGameReferee ref(10, rng);
    EXPECT_LT(ref.target().first, ref.target().second);
    EXPECT_LT(ref.target().second, 10u);
    if (ref.target().first == 0) ++first_is_zero;
  }
  // P(0 in target) = 2/10; P(0 is the smaller element) = 2/10 as well
  // (0 is always the smaller element when present).
  EXPECT_NEAR(static_cast<double>(first_is_zero) / samples, 0.2, 0.02);
}

TEST(HittingGame, PlayLoopReportsWinningRound) {
  const HittingGameReferee ref(5, {1, 3});
  SingletonSweepPlayer player(5);  // proposes {0}, {1}, ...
  const HittingGameResult r = play_hitting_game(ref, player, 100);
  EXPECT_TRUE(r.won);
  EXPECT_EQ(r.rounds, 2u);  // {1} splits the target
}

TEST(HittingGame, MaxRoundsBoundsTheGame) {
  const HittingGameReferee ref(5, {1, 3});
  /// Player that always proposes the full universe (never splits).
  class FullSetPlayer final : public HittingPlayer {
   public:
    std::string name() const override { return "full-set"; }
    std::vector<std::size_t> propose(std::uint64_t) override {
      return {0, 1, 2, 3, 4};
    }
  };
  FullSetPlayer player;
  const HittingGameResult r = play_hitting_game(ref, player, 10);
  EXPECT_FALSE(r.won);
  EXPECT_EQ(r.rounds, 10u);
}

TEST(Players, RandomHalfWinsEachRoundWithProbabilityHalf) {
  Rng rng(3);
  StreamingSummary rounds;
  for (int trial = 0; trial < 400; ++trial) {
    const HittingGameReferee ref(64, rng);
    RandomHalfPlayer player(64, rng.split(static_cast<std::uint64_t>(trial)));
    const HittingGameResult r = play_hitting_game(ref, player, 10000);
    ASSERT_TRUE(r.won);
    rounds.add(static_cast<double>(r.rounds));
  }
  EXPECT_NEAR(rounds.mean(), 2.0, 0.25);  // geometric(1/2)
}

TEST(Players, DecayScheduleEventuallyWins) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const HittingGameReferee ref(32, rng);
    DecaySchedulePlayer player(32, rng.split(static_cast<std::uint64_t>(trial)));
    const HittingGameResult r = play_hitting_game(ref, player, 10000);
    EXPECT_TRUE(r.won);
  }
}

TEST(Players, SingletonSweepWinsWithinKRounds) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const HittingGameReferee ref(32, rng);
    SingletonSweepPlayer player(32);
    const HittingGameResult r = play_hitting_game(ref, player, 32);
    EXPECT_TRUE(r.won);
    // Wins exactly when the smaller target element is proposed.
    EXPECT_EQ(r.rounds, ref.target().first + 1);
  }
}

TEST(Reduction, ProposesTheBroadcasterSet) {
  const FadingContentionResolution algo(0.5);
  AlgorithmHittingPlayer player(algo, 16, Rng(6));
  const auto proposal = player.propose(1);
  for (const std::size_t e : proposal) EXPECT_LT(e, 16u);
  EXPECT_NE(player.name().find("fading"), std::string::npos);
}

TEST(Reduction, SimulatedPairMatchesRealTwoPlayerRun) {
  // Core soundness of Lemma 14: with the same seeds, the reduction's
  // simulated nodes i and j behave exactly like a real 2-node execution
  // until the game is won. We verify by comparing the winning round of the
  // reduction (target {i,j}) with the direct two-player run seeded with the
  // same per-node streams.
  const FadingContentionResolution algo(0.35);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Rng master(seed);
    // Direct two-player run with node streams split(0), split(1).
    const TwoPlayerResult direct = run_two_player(algo, master, 100000);
    ASSERT_TRUE(direct.broken);

    // Reduction over k = 2 simulated nodes uses the same split streams.
    AlgorithmHittingPlayer player(algo, 2, master);
    const HittingGameReferee ref(2, {0, 1});
    const HittingGameResult game = play_hitting_game(ref, player, 100000);
    ASSERT_TRUE(game.won);
    EXPECT_EQ(game.rounds, direct.rounds) << "seed " << seed;
  }
}

TEST(Reduction, WorksForLargerUniverses) {
  Rng rng(7);
  const FadingContentionResolution algo(0.5);
  for (const std::size_t k : {4u, 16u, 64u}) {
    int wins = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Rng trial_rng = rng.split(k * 100 + static_cast<std::uint64_t>(trial));
      const HittingGameReferee ref(k, trial_rng);
      AlgorithmHittingPlayer player(algo, k, trial_rng.split(999));
      if (play_hitting_game(ref, player, 20000).won) ++wins;
    }
    EXPECT_EQ(wins, 20) << "k=" << k;
  }
}

TEST(TwoPlayer, ConstantProbabilityBreaksSymmetryGeometrically) {
  const FadingContentionResolution algo(0.5);
  StreamingSummary rounds;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const TwoPlayerResult r = run_two_player(algo, Rng(seed), 100000);
    ASSERT_TRUE(r.broken);
    rounds.add(static_cast<double>(r.rounds));
  }
  // Asymmetry probability per round: 2 * 0.5 * 0.5 = 0.5 -> mean 2.
  EXPECT_NEAR(rounds.mean(), 2.0, 0.3);
}

TEST(TwoPlayer, HighQuantileGrowsWithTargetConfidence) {
  // Empirical Theorem 12 shape: the number of rounds needed to reach
  // success probability 1 - 1/k grows like log k for the (optimal-order)
  // constant-probability strategy.
  const FadingContentionResolution algo(0.5);
  std::vector<double> rounds;
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    const TwoPlayerResult r = run_two_player(algo, Rng(seed), 100000);
    rounds.push_back(static_cast<double>(r.rounds));
  }
  const double q16 = percentile(rounds, 1.0 - 1.0 / 16.0);
  const double q256 = percentile(rounds, 1.0 - 1.0 / 256.0);
  EXPECT_GT(q256, q16);
  // log2(256)/log2(16) = 2: doubling the log doubles the quantile (+/- slack).
  EXPECT_NEAR(q256 / q16, 2.0, 0.6);
}

TEST(TwoPlayer, Validation) {
  const FadingContentionResolution algo(0.5);
  EXPECT_THROW(run_two_player(algo, Rng(1), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fcr
