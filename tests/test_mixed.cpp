// Tests for the mixed-population wrapper and the domination analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/decay.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/local_leaders.hpp"
#include "ext/mixed.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

// -------------------------------------------------------------------- mixed

TEST(Mixed, AssignmentsRouteNodes) {
  EXPECT_EQ(split_assignment(3)(0), 0u);
  EXPECT_EQ(split_assignment(3)(2), 0u);
  EXPECT_EQ(split_assignment(3)(3), 1u);
  EXPECT_EQ(round_robin_assignment(3)(0), 0u);
  EXPECT_EQ(round_robin_assignment(3)(4), 1u);
  EXPECT_EQ(round_robin_assignment(3)(5), 2u);
  EXPECT_THROW(round_robin_assignment(0), std::invalid_argument);
}

TEST(Mixed, NodesRunTheirAssignedProtocol) {
  // Population 0: never transmits (p tiny over few rounds won't fire with
  // certainty, so use distinct structural behaviour instead): decay's slot
  // schedule vs a node that always transmits in round 1 with p ~ 1.
  auto eager = std::make_shared<FadingContentionResolution>(0.999);
  auto shy = std::make_shared<FadingContentionResolution>(0.001);
  const MixedAlgorithm algo({eager, shy}, split_assignment(1));
  int eager_tx = 0, shy_tx = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto a = algo.make_node(0, Rng(seed));
    const auto b = algo.make_node(1, Rng(seed));
    if (a->on_round_begin(1) == Action::kTransmit) ++eager_tx;
    if (b->on_round_begin(1) == Action::kTransmit) ++shy_tx;
  }
  EXPECT_GT(eager_tx, 190);
  EXPECT_LT(shy_tx, 5);
}

TEST(Mixed, CapabilitiesAreUnions) {
  auto fading = std::make_shared<FadingContentionResolution>();
  auto decay = std::make_shared<DecayKnownN>(64);
  const MixedAlgorithm algo({fading, decay}, round_robin_assignment(2));
  EXPECT_TRUE(algo.uses_size_bound());  // decay's requirement surfaces
  EXPECT_FALSE(algo.requires_collision_detection());
  EXPECT_NE(algo.name().find("mixed("), std::string::npos);
  EXPECT_EQ(algo.population_count(), 2u);
}

TEST(Mixed, Validation) {
  auto fading = std::make_shared<FadingContentionResolution>();
  EXPECT_THROW(MixedAlgorithm({}, round_robin_assignment(1)),
               std::invalid_argument);
  EXPECT_THROW(MixedAlgorithm({nullptr}, round_robin_assignment(1)),
               std::invalid_argument);
  EXPECT_THROW(MixedAlgorithm({fading}, PopulationAssignment{}),
               std::invalid_argument);
  // Out-of-range assignment is caught at node construction.
  const MixedAlgorithm broken({fading}, [](NodeId) { return std::size_t{7}; });
  EXPECT_THROW(broken.make_node(0, Rng(1)), ContractViolation);
}

TEST(Mixed, CoexistenceStillSolves) {
  // Half the network runs the paper's algorithm, half runs legacy decay:
  // the shared channel still resolves (whoever's solo round comes first).
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(64, 16.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [](const Deployment& dep) {
        return std::make_unique<MixedAlgorithm>(
            std::vector<std::shared_ptr<const Algorithm>>{
                std::make_shared<FadingContentionResolution>(),
                std::make_shared<DecayKnownN>(dep.size())},
            round_robin_assignment(2));
      },
      [] {
        TrialConfig c;
        c.trials = 20;
        c.engine.max_rounds = 20000;
        return c;
      }());
  EXPECT_EQ(result.solved, result.trials);
  EXPECT_LT(result.summary().median, 200.0);
}

// --------------------------------------------------------------- domination

TEST(Domination, FullCoverageSingleLeader) {
  Rng rng(97);
  const Deployment dep = uniform_square(40, 10.0, rng).normalized();
  const std::vector<NodeId> leader = {0};
  const DominationReport r =
      analyze_domination(dep, leader, dep.max_link() + 1.0);
  EXPECT_EQ(r.leaders, 1u);
  EXPECT_EQ(r.covered, 39u);
  EXPECT_EQ(r.uncovered, 0u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_LE(r.max_assignment, dep.max_link());
}

TEST(Domination, TinyRadiusLeavesNodesUncovered) {
  const Deployment dep({{0, 0}, {1, 0}, {10, 0}});
  const std::vector<NodeId> leader = {0};
  const DominationReport r = analyze_domination(dep, leader, 2.0);
  EXPECT_EQ(r.covered, 1u);    // node 1
  EXPECT_EQ(r.uncovered, 1u);  // node 2
  EXPECT_NEAR(r.coverage, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.max_assignment, 10.0);
}

TEST(Domination, ElectedLeadersDominateAtTheDecodingScale) {
  // The E14 claim, unit-tested: the quiesced leader set covers (almost)
  // every node within ~2x the decoding radius.
  Rng rng(98);
  const Deployment dep = uniform_square(128, 40.0, rng).normalized();
  SinrParams params;
  params.alpha = 3.0;
  params.beta = 1.5;
  params.noise = 1e-9;
  const double radius = dep.max_link() / 4.0;
  params.power = params.beta * params.noise * std::pow(radius, params.alpha);

  const LocalLeaderResult leaders =
      elect_local_leaders(dep, params, 0.2, rng.split(1));
  ASSERT_TRUE(leaders.quiesced);
  ASSERT_GE(leaders.leaders.size(), 2u);
  const DominationReport r =
      analyze_domination(dep, leaders.leaders, 2.0 * radius);
  EXPECT_GE(r.coverage, 0.95);
}

TEST(Domination, Validation) {
  const Deployment dep = single_pair(1.0);
  EXPECT_THROW(analyze_domination(dep, std::vector<NodeId>{}, 1.0),
               std::invalid_argument);
  const std::vector<NodeId> bad = {5};
  EXPECT_THROW(analyze_domination(dep, bad, 1.0), std::invalid_argument);
  const std::vector<NodeId> ok = {0};
  EXPECT_THROW(analyze_domination(dep, ok, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fcr
