// Determinism stress test for run_trials_parallel: the repository's headline
// claim is that the parallel runner is BIT-IDENTICAL to the serial reference
// for every thread count and seed. This binary is also the designated
// ThreadSanitizer workload (the tsan preset / CI job runs it), so it
// deliberately oversubscribes threads and hammers the shared factories from
// many workers at once.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "fadingcr.hpp"

namespace fcr {
namespace {

TrialConfig stress_config(std::size_t trials, std::uint64_t seed) {
  TrialConfig c;
  c.trials = trials;
  c.seed = seed;
  c.engine.max_rounds = 20000;
  return c;
}

DeploymentFactory uniform_factory(std::size_t n) {
  return [n](Rng& rng) {
    return uniform_square(n, 2.0 * std::sqrt(static_cast<double>(n)), rng)
        .normalized();
  };
}

AlgorithmFactory fading_factory() {
  return [](const Deployment&) {
    return std::make_unique<FadingContentionResolution>();
  };
}

/// Thread counts from degenerate through oversubscribed: 1, 2, the hardware
/// parallelism, and twice that (so workers genuinely contend for cores).
std::vector<std::size_t> stress_thread_counts() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return {1, 2, hw, 2 * hw};
}

TEST(ParallelDeterminismStress, BitIdenticalAcrossThreadCountsAndSeeds) {
  for (const std::uint64_t seed : {1ULL, 20160725ULL, 0xFADEDC0DEULL}) {
    const TrialConfig config = stress_config(32, seed);
    const TrialSetResult serial =
        run_trials(uniform_factory(32), sinr_channel_factory(3.0, 1.5, 1e-9),
                   fading_factory(), config);
    for (const std::size_t threads : stress_thread_counts()) {
      const TrialSetResult parallel = run_trials_parallel(
          uniform_factory(32), sinr_channel_factory(3.0, 1.5, 1e-9),
          fading_factory(), config, threads);
      // Bit-identical: same trial count, same solves, and the exact same
      // per-trial completion rounds in the exact same order.
      EXPECT_EQ(parallel.trials, serial.trials)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(parallel.solved, serial.solved)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(parallel.rounds, serial.rounds)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismStress, SharedFactoriesHammeredByWorkers) {
  // The factories are shared state called concurrently from every worker;
  // count invocations to prove each trial builds exactly one deployment,
  // channel, and algorithm even under heavy oversubscription. TSan watches
  // the factory call path for races.
  const std::size_t kTrials = 64;
  std::atomic<std::size_t> deployments{0};
  std::atomic<std::size_t> channels{0};
  std::atomic<std::size_t> algorithms{0};

  const DeploymentFactory counted_deployment =
      [&deployments, inner = uniform_factory(24)](Rng& rng) {
        deployments.fetch_add(1, std::memory_order_relaxed);
        return inner(rng);
      };
  const ChannelFactory counted_channel =
      [&channels, inner = sinr_channel_factory(3.0, 1.5, 1e-9)](
          const Deployment& dep) {
        channels.fetch_add(1, std::memory_order_relaxed);
        return inner(dep);
      };
  const AlgorithmFactory counted_algorithm =
      [&algorithms](const Deployment&) {
        algorithms.fetch_add(1, std::memory_order_relaxed);
        return std::make_unique<FadingContentionResolution>();
      };

  const TrialConfig config = stress_config(kTrials, 7);
  const std::size_t threads =
      2 * std::max(1u, std::thread::hardware_concurrency());
  const TrialSetResult parallel = run_trials_parallel(
      counted_deployment, counted_channel, counted_algorithm, config, threads);

  EXPECT_EQ(deployments.load(), kTrials);
  EXPECT_EQ(channels.load(), kTrials);
  EXPECT_EQ(algorithms.load(), kTrials);

  const TrialSetResult serial =
      run_trials(uniform_factory(24), sinr_channel_factory(3.0, 1.5, 1e-9),
                 [](const Deployment&) {
                   return std::make_unique<FadingContentionResolution>();
                 },
                 config);
  EXPECT_EQ(parallel.solved, serial.solved);
  EXPECT_EQ(parallel.rounds, serial.rounds);
}

TEST(ParallelDeterminismStress, ConcurrentBatchesDoNotInterfere) {
  // Two whole parallel batches racing each other (as a sweep driver would
  // run them) must each still reproduce the serial reference bit-for-bit.
  const TrialConfig config_a = stress_config(24, 11);
  const TrialConfig config_b = stress_config(24, 13);
  const TrialSetResult serial_a =
      run_trials(uniform_factory(24), sinr_channel_factory(3.0, 1.5, 1e-9),
                 fading_factory(), config_a);
  const TrialSetResult serial_b =
      run_trials(uniform_factory(24), sinr_channel_factory(3.0, 1.5, 1e-9),
                 fading_factory(), config_b);

  TrialSetResult parallel_a;
  TrialSetResult parallel_b;
  std::thread racer_a([&] {
    parallel_a = run_trials_parallel(uniform_factory(24),
                                     sinr_channel_factory(3.0, 1.5, 1e-9),
                                     fading_factory(), config_a, 4);
  });
  std::thread racer_b([&] {
    parallel_b = run_trials_parallel(uniform_factory(24),
                                     sinr_channel_factory(3.0, 1.5, 1e-9),
                                     fading_factory(), config_b, 4);
  });
  racer_a.join();
  racer_b.join();

  EXPECT_EQ(parallel_a.rounds, serial_a.rounds);
  EXPECT_EQ(parallel_a.solved, serial_a.solved);
  EXPECT_EQ(parallel_b.rounds, serial_b.rounds);
  EXPECT_EQ(parallel_b.solved, serial_b.solved);
}

}  // namespace
}  // namespace fcr
