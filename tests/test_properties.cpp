// Property-based suites (parameterized gtest): model invariants checked
// across a grid of deployment shapes and sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/fading_cr.hpp"
#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sinr/channel.hpp"

namespace fcr {
namespace {

struct PropertyCase {
  const char* shape;
  std::size_t n;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << c.shape << "_n" << c.n;
}

Deployment make_shape(const PropertyCase& c, Rng& rng) {
  const std::string shape = c.shape;
  const double side = 2.0 * std::sqrt(static_cast<double>(c.n));
  if (shape == "square") return uniform_square(c.n, side, rng).normalized();
  if (shape == "disk") return uniform_disk(c.n, side / 2.0, rng).normalized();
  if (shape == "clusters")
    return two_clusters(c.n, side * 10.0, side / 8.0, rng).normalized();
  if (shape == "chain")
    return exponential_chain(c.n, static_cast<double>(c.n) * 16.0, rng)
        .normalized();
  if (shape == "ring") return ring(c.n, side, 0.001, rng).normalized();
  if (shape == "poisson") {
    // Intensity chosen so the expected count is c.n; actual count varies.
    return poisson_field(static_cast<double>(c.n) / (side * side), side, rng)
        .normalized();
  }
  ADD_FAILURE() << "unknown shape " << shape;
  return single_pair(1.0);
}

class FadingProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(FadingProperties, SolvesWithinGenerousLogBound) {
  const PropertyCase c = GetParam();
  Rng rng(1000 + c.n);
  const Deployment dep = make_shape(c, rng);
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const RunResult r =
        run_execution(dep, algo, *channel, config, rng.split(seed));
    ASSERT_TRUE(r.solved) << "seed " << seed;
    const double bound =
        60.0 * (std::log2(static_cast<double>(dep.size())) +
                std::log2(std::max(2.0, dep.link_ratio()))) +
        200.0;
    EXPECT_LT(static_cast<double>(r.rounds), bound) << "seed " << seed;
  }
}

TEST_P(FadingProperties, WinnerTransmittedAloneThatRound) {
  const PropertyCase c = GetParam();
  Rng rng(2000 + c.n);
  const Deployment dep = make_shape(c, rng);
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;

  std::uint64_t solo_round = 0;
  NodeId solo_tx = kInvalidNode;
  const RunResult r = run_execution(
      dep, algo, *channel, config, rng.split(7), [&](const RoundView& view) {
        if (view.transmitters.size() == 1 && solo_round == 0) {
          solo_round = view.round;
          solo_tx = view.transmitters[0];
        }
      });
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.rounds, solo_round);
  EXPECT_EQ(r.winner, solo_tx);
}

TEST_P(FadingProperties, EveryReceptionSatisfiesTheSinrInequality) {
  const PropertyCase c = GetParam();
  Rng rng(3000 + c.n);
  const Deployment dep = make_shape(c, rng);
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const SinrChannelAdapter adapter(params);
  const SinrChannel& channel = adapter.channel();
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 500;
  config.stop_on_solve = false;

  std::size_t checked = 0;
  run_execution(
      dep, algo, adapter, config, rng.split(8), [&](const RoundView& view) {
        for (std::size_t i = 0; i < view.listeners.size(); ++i) {
          const Feedback& f = view.listener_feedback[i];
          if (!f.received || checked >= 200) continue;
          ++checked;
          std::vector<NodeId> interferers;
          for (const NodeId w : view.transmitters) {
            if (w != f.sender) interferers.push_back(w);
          }
          EXPECT_TRUE(channel.can_receive(dep, f.sender, view.listeners[i],
                                          interferers))
              << "round " << view.round;
        }
      });
  EXPECT_GT(checked, 0u);
}

TEST_P(FadingProperties, DeterministicAcrossIdenticalRuns) {
  const PropertyCase c = GetParam();
  Rng rng(4000 + c.n);
  const Deployment dep = make_shape(c, rng);
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.max_rounds = 20000;
  const RunResult a = run_execution(dep, algo, *channel, config, Rng(123));
  const RunResult b = run_execution(dep, algo, *channel, config, Rng(123));
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.winner, b.winner);
}

TEST_P(FadingProperties, LinkClassIndicesNeverDecreasePerNode) {
  // Paper Section 3.3: "no node can join a smaller link class" — knockouts
  // only remove neighbors, so each node's nearest-active distance (hence
  // class) is non-decreasing while it stays active.
  const PropertyCase c = GetParam();
  Rng rng(5000 + c.n);
  const Deployment dep = make_shape(c, rng);
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.stop_on_solve = false;
  config.max_rounds = 150;

  std::vector<std::int32_t> last_class(dep.size(), -1);
  run_execution(
      dep, algo, *channel, config, rng.split(9), [&](const RoundView& view) {
        std::vector<NodeId> active;
        for (NodeId id = 0; id < view.size(); ++id) {
          if (view.is_contending(id)) active.push_back(id);
        }
        if (active.size() < 2) return;
        const LinkClassPartition part(dep, active);
        for (const NodeId id : active) {
          const std::int32_t now = part.class_of(id);
          if (now == kNoLinkClass) continue;
          EXPECT_GE(now, last_class[id]) << "node " << id;
          last_class[id] = now;
        }
      });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FadingProperties,
    ::testing::Values(PropertyCase{"square", 32}, PropertyCase{"square", 128},
                      PropertyCase{"disk", 64}, PropertyCase{"clusters", 64},
                      PropertyCase{"chain", 48}, PropertyCase{"ring", 64},
                      PropertyCase{"poisson", 96}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

// ------------------------------------------------- probability sweep (E5ish)

class ProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ProbabilitySweep, AnyConstantProbabilitySolves) {
  const double p = GetParam();
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(96, 20.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [p](const Deployment&) {
        return std::make_unique<FadingContentionResolution>(p);
      },
      [] {
        TrialConfig c;
        c.trials = 10;
        c.engine.max_rounds = 50000;
        return c;
      }());
  EXPECT_EQ(result.solved, result.trials) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ProbabilitySweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2, 0.4, 0.6));

// ----------------------------------------------------- alpha sweep (E6ish)

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, SuperQuadraticFadingSolves) {
  const double alpha = GetParam();
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(96, 20.0, rng).normalized(); },
      sinr_channel_factory(alpha, 1.5, 1e-9),
      [](const Deployment&) {
        return std::make_unique<FadingContentionResolution>();
      },
      [] {
        TrialConfig c;
        c.trials = 10;
        c.engine.max_rounds = 50000;
        return c;
      }());
  EXPECT_EQ(result.solved, result.trials) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(2.2, 2.5, 3.0, 4.0, 6.0));

}  // namespace
}  // namespace fcr
