// Classical radio channel and channel-adapter tests.
#include <gtest/gtest.h>

#include <vector>

#include "deploy/generators.hpp"
#include "radio/channel.hpp"
#include "sim/channel_adapter.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

TEST(RadioChannel, ObservationSemanticsWithoutCd) {
  const RadioChannel ch(false);
  EXPECT_EQ(ch.observe(0), RadioObservation::kSilence);
  EXPECT_EQ(ch.observe(1), RadioObservation::kMessage);
  // Collisions are indistinguishable from silence without CD.
  EXPECT_EQ(ch.observe(2), RadioObservation::kSilence);
  EXPECT_EQ(ch.observe(100), RadioObservation::kSilence);
}

TEST(RadioChannel, ObservationSemanticsWithCd) {
  const RadioChannel ch(true);
  EXPECT_EQ(ch.observe(0), RadioObservation::kSilence);
  EXPECT_EQ(ch.observe(1), RadioObservation::kMessage);
  EXPECT_EQ(ch.observe(2), RadioObservation::kCollision);
}

TEST(RadioChannel, DecodedSender) {
  const std::vector<NodeId> one = {7};
  EXPECT_EQ(RadioChannel::decoded_sender(one), 7u);
  const std::vector<NodeId> two = {7, 9};
  EXPECT_EQ(RadioChannel::decoded_sender(two), kInvalidNode);
  EXPECT_EQ(RadioChannel::decoded_sender({}), kInvalidNode);
}

TEST(RadioAdapter, BroadcastsSoloMessageToAllListeners) {
  Rng rng(300);
  const Deployment dep = uniform_square(10, 5.0, rng);
  const RadioChannelAdapter adapter(false);
  const std::vector<NodeId> tx = {3};
  const std::vector<NodeId> listeners = {0, 1, 2};
  std::vector<Feedback> fb(listeners.size());
  adapter.resolve(dep, tx, listeners, fb);
  for (const Feedback& f : fb) {
    EXPECT_TRUE(f.received);
    EXPECT_EQ(f.sender, 3u);
    EXPECT_EQ(f.observation, RadioObservation::kMessage);
  }
}

TEST(RadioAdapter, CollisionLosesMessageEverywhere) {
  Rng rng(301);
  const Deployment dep = uniform_square(10, 5.0, rng);
  const RadioChannelAdapter plain(false);
  const RadioChannelAdapter cd(true);
  const std::vector<NodeId> tx = {3, 4};
  const std::vector<NodeId> listeners = {0, 1};
  std::vector<Feedback> fb(listeners.size());

  plain.resolve(dep, tx, listeners, fb);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kSilence);
  }

  cd.resolve(dep, tx, listeners, fb);
  for (const Feedback& f : fb) {
    EXPECT_FALSE(f.received);
    EXPECT_EQ(f.observation, RadioObservation::kCollision);
  }
}

TEST(RadioAdapter, NamesAndCapabilities) {
  EXPECT_EQ(RadioChannelAdapter(false).name(), "radio");
  EXPECT_EQ(RadioChannelAdapter(true).name(), "radio-cd");
  EXPECT_FALSE(RadioChannelAdapter(false).provides_collision_detection());
  EXPECT_TRUE(RadioChannelAdapter(true).provides_collision_detection());
}

TEST(SinrAdapter, FeedbackMirrorsReceptions) {
  const Deployment dep = single_pair(2.0);
  SinrParams params;
  params.alpha = 3.0;
  params.beta = 1.5;
  params.noise = 0.0;
  params.power = 1.0;
  const SinrChannelAdapter adapter(params);
  EXPECT_EQ(adapter.name(), "sinr");
  EXPECT_FALSE(adapter.provides_collision_detection());

  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> fb(1);
  adapter.resolve(dep, tx, listeners, fb);
  EXPECT_TRUE(fb[0].received);
  EXPECT_EQ(fb[0].sender, 0u);
  EXPECT_EQ(fb[0].observation, RadioObservation::kMessage);
}

TEST(Adapters, SizeMismatchIsRejected) {
  const Deployment dep = single_pair(2.0);
  const RadioChannelAdapter adapter(false);
  const std::vector<NodeId> tx = {0};
  const std::vector<NodeId> listeners = {1};
  std::vector<Feedback> wrong(2);
  EXPECT_THROW(adapter.resolve(dep, tx, listeners, wrong),
               std::invalid_argument);
}

TEST(Adapters, FactoriesProduceWorkingAdapters) {
  SinrParams params;
  params.alpha = 3.0;
  const auto sinr = make_sinr_adapter(params);
  EXPECT_EQ(sinr->name(), "sinr");
  const auto radio = make_radio_adapter(true);
  EXPECT_EQ(radio->name(), "radio-cd");
}

}  // namespace
}  // namespace fcr
