// Unit tests for the deterministic RNG and its distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace fcr {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: the seeding path must never change silently, or every
  // recorded experiment row becomes irreproducible.
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 2);
}

TEST(Rng, ZeroSeedProducesNonDegenerateStream) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, SplitIsDeterministicAndDoesNotPerturbParent) {
  Rng parent(7);
  const std::uint64_t before = Rng(7)();
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(1);
  EXPECT_EQ(child1(), child2());  // same tag -> same child stream
  EXPECT_EQ(parent(), before);    // splitting consumed no parent output
}

TEST(Rng, SplitWithDistinctTagsGivesDistinctStreams) {
  Rng parent(7);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntIsUnbiasedAcrossSmallRange) {
  Rng r(11);
  std::vector<int> counts(7, 0);
  const int samples = 140000;
  for (int i = 0; i < samples; ++i) ++counts[r.uniform_int(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), samples / 7.0, samples / 7.0 * 0.05);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.uniform_int(std::int64_t{-2}, std::int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsZeroBound) {
  Rng r(13);
  EXPECT_THROW(r.uniform_int(std::uint64_t{0}), std::invalid_argument);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(14);
  const double p = 0.3;
  int hits = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    if (r.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / samples, p, 0.01);
}

TEST(Rng, BernoulliExtremesAreExact) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(16);
  const double lambda = 2.5;
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) sum += r.exponential(lambda);
  EXPECT_NEAR(sum / samples, 1.0 / lambda, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng r(17);
  double sum = 0.0, sum_sq = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / samples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / samples, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng r(18);
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / samples, 10.0, 0.05);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng r(19);
  const double lambda = 4.0;
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    sum += static_cast<double>(r.poisson(lambda));
  }
  EXPECT_NEAR(sum / samples, lambda, 0.05);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng r(20);
  const double lambda = 200.0;
  double sum = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    sum += static_cast<double>(r.poisson(lambda));
  }
  EXPECT_NEAR(sum / samples, lambda, 1.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng r(21);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, GeometricMeanMatchesFailureCount) {
  Rng r(22);
  const double p = 0.25;
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    sum += static_cast<double>(r.geometric(p));
  }
  // Mean failures before success: (1-p)/p = 3.
  EXPECT_NEAR(sum / samples, (1.0 - p) / p, 0.05);
}

TEST(Rng, GeometricCertainSuccessIsZero) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, InvalidDistributionParametersThrow) {
  Rng r(24);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(r.poisson(-1.0), std::invalid_argument);
  EXPECT_THROW(r.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(r.geometric(1.5), std::invalid_argument);
  EXPECT_THROW(r.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace fcr
