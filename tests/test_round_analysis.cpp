// Tests for the Sift baseline, the beep channel, the ASCII plot helper,
// and the round-analysis pipeline (Corollary 7 on live executions).
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/cd_leader.hpp"
#include "algorithms/sift.hpp"
#include "core/fading_cr.hpp"
#include "core/round_analysis.hpp"
#include "deploy/generators.hpp"
#include "geom/ascii_plot.hpp"
#include "sim/beep.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

// --------------------------------------------------------------------- sift

TEST(Sift, SlotDistributionIsGeometricAndNormalized) {
  const SiftWindow algo(16, 0.7);
  double total = 0.0;
  for (std::size_t s = 0; s < 16; ++s) {
    const double p = algo.slot_probability(s);
    total += p;
    if (s > 0) {
      EXPECT_NEAR(p / algo.slot_probability(s - 1), 0.7, 1e-12) << s;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(algo.slot_probability(16), std::invalid_argument);
}

TEST(Sift, TransmitsExactlyOncePerWindow) {
  const SiftWindow algo(8, 0.8);
  const auto node = algo.make_node(0, Rng(3));
  for (int epoch = 0; epoch < 20; ++epoch) {
    int tx = 0;
    for (std::uint64_t s = 0; s < 8; ++s) {
      const std::uint64_t round = static_cast<std::uint64_t>(epoch) * 8 + s + 1;
      if (node->on_round_begin(round) == Action::kTransmit) ++tx;
      node->on_round_end(Feedback{});
    }
    EXPECT_EQ(tx, 1) << "epoch " << epoch;
  }
}

TEST(Sift, EmpiricalSlotFrequenciesMatchTheDistribution) {
  const SiftWindow algo(8, 0.8);
  std::vector<int> counts(8, 0);
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const auto node = algo.make_node(0, Rng(static_cast<std::uint64_t>(i)));
    for (std::uint64_t s = 0; s < 8; ++s) {
      if (node->on_round_begin(s + 1) == Action::kTransmit) {
        ++counts[s];
        break;
      }
      node->on_round_end(Feedback{});
    }
  }
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]) / samples,
                algo.slot_probability(s), 0.01)
        << "slot " << s;
  }
}

TEST(Sift, SolvesContention) {
  Rng rng(70);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const SiftWindow algo;
  const RadioChannelAdapter channel(false);
  EngineConfig config;
  config.max_rounds = 20000;
  const RunResult r = run_execution(dep, algo, channel, config, rng.split(1));
  EXPECT_TRUE(r.solved);
}

TEST(Sift, Validation) {
  EXPECT_THROW(SiftWindow(1, 0.5), std::invalid_argument);
  EXPECT_THROW(SiftWindow(8, 0.0), std::invalid_argument);
  EXPECT_THROW(SiftWindow(8, 1.0), std::invalid_argument);
}

// --------------------------------------------------------------------- beep

TEST(Beep, ActivityBitOnly) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const BeepChannelAdapter channel;
  EXPECT_TRUE(channel.provides_collision_detection());
  const std::vector<NodeId> listeners = {0};
  std::vector<Feedback> fb(1);

  channel.resolve(dep, {}, listeners, fb);
  EXPECT_EQ(fb[0].observation, RadioObservation::kSilence);
  EXPECT_FALSE(fb[0].received);

  const std::vector<NodeId> one = {1};
  channel.resolve(dep, one, listeners, fb);
  EXPECT_EQ(fb[0].observation, RadioObservation::kCollision);
  EXPECT_FALSE(fb[0].received);  // beeps are not messages

  const std::vector<NodeId> two = {1, 2};
  channel.resolve(dep, two, listeners, fb);
  EXPECT_EQ(fb[0].observation, RadioObservation::kCollision);
}

TEST(Beep, CdLeaderRunsUnmodifiedOnBeeps) {
  // The survivor-halving strategy only consumes the activity bit, so it
  // solves contention resolution on the beeping channel at the same
  // logarithmic rate.
  Rng rng(71);
  const Deployment dep = uniform_square(128, 24.0, rng).normalized();
  const CollisionDetectLeader algo;
  const BeepChannelAdapter channel;
  EngineConfig config;
  config.max_rounds = 2000;
  int solved = 0;
  StreamingSummary rounds;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r =
        run_execution(dep, algo, channel, config, rng.split(seed));
    if (r.solved) {
      ++solved;
      rounds.add(static_cast<double>(r.rounds));
    }
  }
  EXPECT_EQ(solved, 10);
  EXPECT_LT(rounds.mean(), 6.0 * std::log2(128.0));
}

// --------------------------------------------------------------- ascii plot

TEST(AsciiPlot, MarksPointsAndHighlights) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 10}, {5, 5}};
  const std::vector<std::size_t> highlight = {1};
  const std::string plot = ascii_scatter(pts, highlight, 20, 10);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
  // 10 lines of 20 chars + newlines.
  EXPECT_EQ(plot.size(), 10u * 21u);
}

TEST(AsciiPlot, DegenerateAndInvalidInputs) {
  const std::vector<Vec2> single = {{3, 3}};
  const std::string plot = ascii_scatter(single, 8, 4);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_THROW(ascii_scatter(single, 1, 4), std::invalid_argument);
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW(ascii_scatter(single, bad, 8, 4), std::invalid_argument);
}

TEST(AsciiPlot, OverlapUsesMixedMarker) {
  const std::vector<Vec2> pts = {{0, 0}, {0, 0}, {10, 10}};
  const std::vector<std::size_t> highlight = {0};
  const std::string plot = ascii_scatter(pts, highlight, 10, 5);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

// ---------------------------------------------------------- round analysis

TEST(RoundAnalysis, RecordsCoverEveryRoundAndClass) {
  Rng rng(72);
  const Deployment dep = uniform_square(96, 20.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  RoundAnalysisPipeline pipeline(dep, GoodNodeParams{}, 0.5, 2.0);
  EngineConfig config;
  config.max_rounds = 500;
  config.stop_on_solve = false;
  run_execution(dep, algo, *channel, config, rng.split(1),
                pipeline.observer());

  ASSERT_FALSE(pipeline.records().empty());
  for (const ClassRoundRecord& rec : pipeline.records()) {
    EXPECT_GT(rec.v_i, 0u);
    EXPECT_LE(rec.good, rec.v_i);
    EXPECT_LE(rec.s_i, rec.good);
    EXPECT_LE(rec.knocked_s_i, rec.s_i);
    EXPECT_LE(rec.knocked_v_i, rec.v_i);
    EXPECT_LE(rec.knocked_s_i, rec.knocked_v_i);
    EXPECT_EQ(rec.premise, static_cast<double>(rec.n_below) <=
                               0.5 * static_cast<double>(rec.v_i));
  }
}

TEST(RoundAnalysis, Corollary7HoldsOnAverage) {
  // Where the premise holds, the good fraction should be large and a
  // constant per-round knockout rate should be visible in S_i.
  Rng rng(73);
  const Deployment dep = uniform_square(256, 32.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  RoundAnalysisPipeline pipeline(dep, GoodNodeParams{}, 0.5, 2.0);
  EngineConfig config;
  config.max_rounds = 300;
  config.stop_on_solve = false;
  run_execution(dep, algo, *channel, config, rng.split(1),
                pipeline.observer());

  const AnalysisSummary s = pipeline.summarize();
  EXPECT_GT(s.rounds_analyzed, 0u);
  EXPECT_GT(s.premise_cells, 0u);
  EXPECT_GE(s.mean_good_fraction, 0.5);  // Lemma 6's conclusion
  EXPECT_GT(s.mean_s_i_knockout_fraction, 0.05);  // Corollary 7's conclusion
}

TEST(RoundAnalysis, Validation) {
  const Deployment dep = single_pair(1.0);
  EXPECT_THROW(RoundAnalysisPipeline(dep, GoodNodeParams{}, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(RoundAnalysisPipeline(dep, GoodNodeParams{}, 0.5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace fcr
