// Multi-trial runner tests: aggregation, determinism, factory plumbing.
#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TrialConfig small_config(std::size_t trials = 8, std::uint64_t seed = 1) {
  TrialConfig c;
  c.trials = trials;
  c.seed = seed;
  c.engine.max_rounds = 20000;
  return c;
}

TEST(Runner, AggregatesSolvedTrials) {
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(32, 20.0, rng).normalized(); },
      sinr_channel_factory(3.0, 1.5, 1e-9),
      [](const Deployment&) {
        return std::make_unique<FadingContentionResolution>();
      },
      small_config());
  EXPECT_EQ(result.trials, 8u);
  EXPECT_EQ(result.solved, 8u);
  EXPECT_EQ(result.rounds.size(), 8u);
  EXPECT_DOUBLE_EQ(result.solve_rate(), 1.0);
  const BatchSummary s = result.summary();
  EXPECT_GT(s.median, 0.0);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.max);
}

TEST(Runner, SameSeedSameResults) {
  auto run_once = [] {
    return run_trials(
        [](Rng& rng) { return uniform_square(24, 15.0, rng).normalized(); },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        small_config(6, 99));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Runner, DifferentSeedsDiffer) {
  auto run_with_seed = [](std::uint64_t seed) {
    return run_trials(
        [](Rng& rng) { return uniform_square(24, 15.0, rng).normalized(); },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        small_config(6, seed));
  };
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2);
  EXPECT_NE(a.rounds, b.rounds);
}

TEST(Runner, FixedDeploymentFactoryReturnsNormalizedCopy) {
  Rng rng(7);
  const Deployment dep = uniform_square(16, 10.0, rng);
  const DeploymentFactory factory = fixed_deployment(dep);
  Rng unused(0);
  const Deployment a = factory(unused);
  const Deployment b = factory(unused);
  EXPECT_TRUE(a.is_normalized(1e-9));
  EXPECT_EQ(a.size(), dep.size());
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(Runner, SizeAwareAlgorithmsSeeTheDeployment) {
  std::size_t observed_n = 0;
  run_trials(
      [](Rng& rng) { return uniform_square(20, 15.0, rng).normalized(); },
      radio_channel_factory(false),
      [&](const Deployment& dep) {
        observed_n = dep.size();
        return make_algorithm("aloha", dep.size());
      },
      small_config(2));
  EXPECT_EQ(observed_n, 20u);
}

TEST(Runner, UnsolvedTrialsAreCounted) {
  // An impossible setup: no-knockout with n = 64 and tiny round budget.
  TrialConfig c = small_config(4);
  c.engine.max_rounds = 3;
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(64, 20.0, rng).normalized(); },
      radio_channel_factory(false),
      [](const Deployment&) { return make_algorithm("no-knockout", 0); },
      c);
  EXPECT_LT(result.solved, result.trials);
  EXPECT_EQ(result.rounds.size(), result.solved);
}

TEST(Runner, ValidatesInputs) {
  TrialConfig c = small_config(0);
  EXPECT_THROW(
      run_trials([](Rng& rng) { return uniform_square(4, 5.0, rng); },
                 radio_channel_factory(false),
                 [](const Deployment&) { return make_algorithm("backoff", 0); },
                 c),
      std::invalid_argument);
  EXPECT_THROW(
      run_trials(nullptr, radio_channel_factory(false),
                 [](const Deployment&) { return make_algorithm("backoff", 0); },
                 small_config()),
      std::invalid_argument);
}

TEST(Runner, RadioChannelFactoryRespectsCdFlag) {
  const Deployment dep = single_pair(1.0);
  EXPECT_FALSE(radio_channel_factory(false)(dep)->provides_collision_detection());
  EXPECT_TRUE(radio_channel_factory(true)(dep)->provides_collision_detection());
}

TEST(Runner, SinrChannelFactorySetsSingleHopPower) {
  Rng rng(8);
  const Deployment dep = uniform_square(16, 12.0, rng).normalized();
  const auto adapter = sinr_channel_factory(3.0, 1.5, 1e-6)(dep);
  const auto* sinr = dynamic_cast<const SinrChannelAdapter*>(adapter.get());
  ASSERT_NE(sinr, nullptr);
  EXPECT_TRUE(sinr->channel().params().is_single_hop(dep.max_link()));
}

}  // namespace
}  // namespace fcr
