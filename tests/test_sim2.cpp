// Tests for the second-wave sim/ and sinr/ features: parallel runner,
// contention metrics, model validation, and the umbrella header.
#include <gtest/gtest.h>

#include "fadingcr.hpp"  // the umbrella header must compile standalone

namespace fcr {
namespace {

TrialConfig quick_config(std::size_t trials) {
  TrialConfig c;
  c.trials = trials;
  c.engine.max_rounds = 20000;
  return c;
}

DeploymentFactory uniform_factory(std::size_t n) {
  return [n](Rng& rng) {
    return uniform_square(n, 2.0 * std::sqrt(static_cast<double>(n)), rng)
        .normalized();
  };
}

AlgorithmFactory fading_factory() {
  return [](const Deployment&) {
    return std::make_unique<FadingContentionResolution>();
  };
}

// ----------------------------------------------------------- parallel runner

TEST(ParallelRunner, BitIdenticalToSerial) {
  const TrialConfig config = quick_config(24);
  const auto serial =
      run_trials(uniform_factory(48), sinr_channel_factory(3.0, 1.5, 1e-9),
                 fading_factory(), config);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto parallel = run_trials_parallel(
        uniform_factory(48), sinr_channel_factory(3.0, 1.5, 1e-9),
        fading_factory(), config, threads);
    EXPECT_EQ(parallel.trials, serial.trials) << threads;
    EXPECT_EQ(parallel.solved, serial.solved) << threads;
    EXPECT_EQ(parallel.rounds, serial.rounds) << threads;
  }
}

TEST(ParallelRunner, MoreThreadsThanTrials) {
  const auto result = run_trials_parallel(
      uniform_factory(16), sinr_channel_factory(3.0, 1.5, 1e-9),
      fading_factory(), quick_config(3), 64);
  EXPECT_EQ(result.trials, 3u);
  EXPECT_EQ(result.solved, 3u);
}

TEST(ParallelRunner, PropagatesFactoryErrorsWithTrialProvenance) {
  const AlgorithmFactory broken = [](const Deployment&) {
    throw std::runtime_error("factory exploded");
    return std::unique_ptr<Algorithm>{};
  };
  const TrialConfig config = quick_config(4);
  try {
    run_trials_parallel(uniform_factory(8),
                        sinr_channel_factory(3.0, 1.5, 1e-9), broken, config,
                        2);
    FAIL() << "the broken factory must abort the batch";
  } catch (const Error& e) {
    // Foreign exceptions surface as structured fcr::Error carrying which
    // trial (and master seed) hit them.
    EXPECT_NE(std::string(e.what()).find("factory exploded"),
              std::string::npos);
    EXPECT_TRUE(e.provenance().has_seed);
    EXPECT_EQ(e.provenance().master_seed, config.seed);
    EXPECT_LT(e.provenance().trial, 4u);
  }
}

TEST(ParallelRunner, Validation) {
  EXPECT_THROW(run_trials_parallel(nullptr, radio_channel_factory(false),
                                   fading_factory(), quick_config(2)),
               std::invalid_argument);
}

// ------------------------------------------------------------------ metrics

RunResult recorded_run(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Deployment dep =
      uniform_square(n, 2.0 * std::sqrt(static_cast<double>(n)), rng)
          .normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;
  config.record_rounds = true;
  config.stop_on_solve = false;
  config.max_rounds = 400;
  return run_execution(dep, algo, *channel, config, rng.split(1));
}

TEST(Metrics, ContentionDecayShape) {
  const RunResult r = recorded_run(128, 5);
  const ContentionDecay d = contention_decay(r.history);
  EXPECT_GT(d.survival_ratio, 0.0);
  EXPECT_LT(d.survival_ratio, 1.0);  // the active set does shrink
  EXPECT_GE(d.half_life, 1u);
  EXPECT_GE(d.rounds_to_one, d.half_life);
  EXPECT_GT(d.rounds_to_one, 0u);
}

TEST(Metrics, TransmitterLoadTracksP) {
  const RunResult r = recorded_run(128, 6);
  // Early rounds: ~p * n transmitters; averaged over the whole (shrinking)
  // execution the load is below p but positive.
  const double load = mean_transmitter_load(r.history, 128);
  EXPECT_GT(load, 0.0);
  EXPECT_LT(load, 0.25);
}

TEST(Metrics, ReceptionEfficiency) {
  const RunResult r = recorded_run(128, 7);
  const auto eff = reception_efficiency(r.history);
  ASSERT_TRUE(eff.has_value());
  EXPECT_GT(*eff, 0.0);  // spatial reuse: messages do get through

  const std::vector<RoundStats> silent = {{1, 0, 0, 5}};
  EXPECT_FALSE(reception_efficiency(silent).has_value());
}

TEST(Metrics, Validation) {
  const std::vector<RoundStats> empty;
  EXPECT_THROW(contention_decay(empty), std::invalid_argument);
  const std::vector<RoundStats> one = {{1, 2, 1, 4}};
  EXPECT_THROW(mean_transmitter_load(one, 0), std::invalid_argument);
}

// --------------------------------------------------------- model validation

TEST(Validate, CanonicalSetupPassesAllChecks) {
  Rng rng(8);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const ModelReport report = validate_model(dep, params);
  EXPECT_TRUE(report.all_satisfied()) << report.to_string();
  EXPECT_EQ(report.checks.size(), 5u);
}

TEST(Validate, FlagsEachViolationIndividually) {
  Rng rng(9);
  const Deployment dep = uniform_square(64, 16.0, rng).normalized();
  SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());

  SinrParams bad_alpha = params;
  bad_alpha.alpha = 2.0;
  EXPECT_FALSE(validate_model(dep, bad_alpha).all_satisfied());

  SinrParams bad_beta = params;
  bad_beta.beta = 0.5;
  EXPECT_FALSE(validate_model(dep, bad_beta).all_satisfied());

  SinrParams weak = params;
  weak.power = params.power / 100.0;
  const ModelReport weak_report = validate_model(dep, weak);
  EXPECT_FALSE(weak_report.all_satisfied());
  // Exactly the single-hop check fails.
  std::size_t failures = 0;
  for (const ModelCheck& c : weak_report.checks) {
    if (!c.satisfied) {
      ++failures;
      EXPECT_EQ(c.name, "single-hop power");
    }
  }
  EXPECT_EQ(failures, 1u);
}

TEST(Validate, FlagsUnnormalizedDeployments) {
  Rng rng(10);
  const Deployment raw = uniform_square(64, 16.0, rng);  // not normalized
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, raw.max_link());
  const ModelReport report = validate_model(raw, params);
  bool norm_failed = false;
  for (const ModelCheck& c : report.checks) {
    if (c.name.find("normalized") != std::string::npos && !c.satisfied) {
      norm_failed = true;
    }
  }
  EXPECT_TRUE(norm_failed);
}

TEST(Validate, ReportRendersOneLinePerCheck) {
  Rng rng(11);
  const Deployment dep = uniform_square(16, 8.0, rng).normalized();
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const std::string text = validate_model(dep, params).to_string();
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace fcr
