// SINR channel tests: the model equation on hand-computed configurations,
// the strongest-transmitter optimization against exhaustive per-sender
// checks, parameter validation, and the single-hop power bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "deploy/generators.hpp"
#include "sinr/channel.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

SinrParams basic_params(double alpha = 3.0, double beta = 1.5,
                        double noise = 0.0, double power = 1.0) {
  SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  p.noise = noise;
  p.power = power;
  return p;
}

TEST(SinrParams, ValidationRejectsBadDomains) {
  EXPECT_NO_THROW(basic_params().validate());
  EXPECT_THROW(basic_params(2.0).validate(true), std::invalid_argument);
  EXPECT_NO_THROW(basic_params(2.0).validate(false));
  EXPECT_THROW(basic_params(3.0, 0.0).validate(), std::invalid_argument);
  EXPECT_THROW(basic_params(3.0, 1.0, -1.0).validate(), std::invalid_argument);
  EXPECT_THROW(basic_params(3.0, 1.0, 0.0, 0.0).validate(), std::invalid_argument);
}

TEST(SinrParams, SignalDecaysWithExponent) {
  const SinrParams p = basic_params(3.0);
  EXPECT_DOUBLE_EQ(p.signal(1.0), 1.0);
  EXPECT_DOUBLE_EQ(p.signal(2.0), 1.0 / 8.0);
}

TEST(SinrParams, SingleHopPowerBound) {
  const double power = SinrParams::single_hop_power(3.0, 1.5, 1e-6, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(power, 2.0 * 4.0 * 1.5 * 1e-6 * 1e6);
  const SinrParams p = SinrParams::for_longest_link(3.0, 1.5, 1e-6, 100.0, 2.0);
  EXPECT_TRUE(p.is_single_hop(100.0));
  SinrParams weak = p;
  weak.power = p.power / 4.0;
  EXPECT_FALSE(weak.is_single_hop(100.0));
}

TEST(SinrChannel, SoleTransmitterNoNoiseHasInfiniteSinr) {
  const Deployment dep = single_pair(10.0);
  const SinrChannel ch(basic_params());
  EXPECT_TRUE(std::isinf(ch.sinr(dep, 0, 1, {})));
  EXPECT_TRUE(ch.can_receive(dep, 0, 1, {}));
}

TEST(SinrChannel, HandComputedThreeNodeCase) {
  // Receiver at origin; sender at distance 1; interferer at distance 2.
  // alpha=3, P=1, N=0: SINR = 1 / (1/8) = 8.
  const Deployment dep({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  const SinrChannel ch(basic_params());
  const std::vector<NodeId> interferers = {2};
  EXPECT_NEAR(ch.sinr(dep, 1, 0, interferers), 8.0, 1e-12);
  EXPECT_TRUE(ch.can_receive(dep, 1, 0, interferers));
}

TEST(SinrChannel, NoiseLimitsRange) {
  // SINR = P d^-a / N; with P=1, N=1e-3, beta=1.5, alpha=3 the max decoding
  // distance is (1/(1.5e-3))^(1/3) ~ 8.74.
  const SinrParams p = basic_params(3.0, 1.5, 1e-3);
  const SinrChannel ch(p);
  const Deployment near = single_pair(8.0);
  EXPECT_TRUE(ch.can_receive(near, 0, 1, {}));
  const Deployment far = single_pair(9.0);
  EXPECT_FALSE(ch.can_receive(far, 0, 1, {}));
}

TEST(SinrChannel, InterferenceBlocksReception) {
  // Interferer right next to the receiver swamps the sender.
  const Deployment dep({{0.0, 0.0}, {1.0, 0.0}, {0.1, 0.1}});
  const SinrChannel ch(basic_params());
  const std::vector<NodeId> interferers = {2};
  EXPECT_FALSE(ch.can_receive(dep, 1, 0, interferers));
}

TEST(SinrChannel, ResolveEmptyTransmitterSet) {
  Rng rng(200);
  const Deployment dep = uniform_square(10, 5.0, rng);
  const SinrChannel ch(basic_params());
  const std::vector<NodeId> listeners = {0, 1, 2};
  const auto receptions = ch.resolve(dep, {}, listeners);
  ASSERT_EQ(receptions.size(), 3u);
  for (const Reception& r : receptions) EXPECT_FALSE(r.received());
}

TEST(SinrChannel, ResolveSoloTransmitterReachesAllInSingleHopRange) {
  Rng rng(201);
  Deployment dep = uniform_square(32, 10.0, rng).normalized();
  const SinrParams p =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link(), 2.0);
  const SinrChannel ch(p);
  std::vector<NodeId> listeners;
  for (NodeId i = 1; i < dep.size(); ++i) listeners.push_back(i);
  const std::vector<NodeId> tx = {0};
  const auto receptions = ch.resolve(dep, tx, listeners);
  for (std::size_t i = 0; i < listeners.size(); ++i) {
    EXPECT_TRUE(receptions[i].received()) << "listener " << listeners[i];
    EXPECT_EQ(receptions[i].sender, 0u);
  }
}

TEST(SinrChannel, ResolveAgreesWithExhaustivePerSenderCheck) {
  // The strongest-transmitter shortcut must match testing every candidate
  // sender with the full SINR formula (beta > 1 makes the decodable sender
  // unique when one exists).
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Deployment dep = uniform_square(40, 8.0, trial_rng).normalized();
    const SinrParams p =
        SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link(), 2.0);
    const SinrChannel ch(p);

    std::vector<NodeId> tx, listeners;
    for (NodeId i = 0; i < dep.size(); ++i) {
      (trial_rng.bernoulli(0.3) ? tx : listeners).push_back(i);
    }
    if (tx.empty()) continue;

    const auto receptions = ch.resolve(dep, tx, listeners);
    for (std::size_t li = 0; li < listeners.size(); ++li) {
      const NodeId v = listeners[li];
      NodeId exhaustive = kInvalidNode;
      for (const NodeId u : tx) {
        std::vector<NodeId> others;
        for (const NodeId w : tx) {
          if (w != u) others.push_back(w);
        }
        if (ch.can_receive(dep, u, v, others)) {
          EXPECT_EQ(exhaustive, kInvalidNode)
              << "two decodable senders with beta > 1";
          exhaustive = u;
        }
      }
      EXPECT_EQ(receptions[li].sender, exhaustive) << "listener " << v;
    }
  }
}

TEST(SinrChannel, FastAlphaPathsMatchGenericPow) {
  for (const double alpha : {2.0, 3.0, 4.0, 6.0}) {
    const SinrChannel fast(basic_params(alpha));
    // Force the generic path with a nearby non-special alpha.
    const SinrChannel generic(basic_params(alpha + 1e-13));
    for (const double d2 : {0.25, 1.0, 7.3, 1e6}) {
      EXPECT_NEAR(fast.signal_from_dist_sq(d2),
                  generic.signal_from_dist_sq(d2),
                  fast.signal_from_dist_sq(d2) * 1e-9)
          << "alpha " << alpha << " d2 " << d2;
    }
  }
}

TEST(SinrChannel, InterferenceAtPointSumsSignals) {
  const Deployment dep({{1.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}});
  const SinrChannel ch(basic_params(3.0));
  const std::vector<NodeId> tx = {0, 1, 2};
  const double at_origin = ch.interference_at(dep, {0, 0}, tx);
  EXPECT_NEAR(at_origin, 1.0 + 1.0 / 8.0 + 1.0 / 64.0, 1e-12);
  // Excluding one transmitter removes its term.
  EXPECT_NEAR(ch.interference_at(dep, {0, 0}, tx, 0), 1.0 / 8.0 + 1.0 / 64.0,
              1e-12);
}

TEST(SinrChannel, SinrArgumentValidation) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const SinrChannel ch(basic_params());
  EXPECT_THROW(ch.sinr(dep, 0, 0, {}), std::invalid_argument);
  const std::vector<NodeId> bad = {0};  // interferer equals sender
  EXPECT_THROW(ch.sinr(dep, 0, 1, bad), std::invalid_argument);
}

TEST(SinrChannel, ColocationIsRejectedByEveryEntryPoint) {
  // One documented behavior for zero-distance links: std::invalid_argument,
  // from the signal helper, from resolve (listener in the transmitter set),
  // and from interference_at (probe on a transmitter that is not excluded).
  // interference_at used to SKIP colocated transmitters silently while
  // signal_from_dist_sq crashed — this pins the unified policy.
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  const SinrChannel ch(basic_params(3.0));
  EXPECT_THROW((void)ch.signal_from_dist_sq(0.0), std::invalid_argument);

  const std::vector<NodeId> tx = {0, 1};
  const std::vector<NodeId> overlap = {1, 2};  // listener 1 also transmits
  EXPECT_THROW((void)ch.resolve(dep, tx, overlap), std::invalid_argument);

  // Probe exactly on transmitter 0: without exclusion the interference is
  // unbounded -> throw; excluding it restores the finite sum.
  EXPECT_THROW((void)ch.interference_at(dep, {0, 0}, tx),
               std::invalid_argument);
  EXPECT_NEAR(ch.interference_at(dep, {0, 0}, tx, 0), 1.0, 1e-12);
}

TEST(SinrChannel, ColocatedDeploymentRejectedAtConstruction) {
  // Duplicate positions never reach the channel: Deployment construction
  // (where min_link would be 0) refuses them up front.
  const std::vector<Vec2> dup = {{0, 0}, {1, 0}, {0, 0}};
  EXPECT_THROW(Deployment{dup}, std::invalid_argument);
}

TEST(SinrChannel, ReceptionIsMonotoneInBeta) {
  Rng rng(203);
  const Deployment dep = uniform_square(30, 6.0, rng).normalized();
  const std::vector<NodeId> tx = {0, 1, 2};
  std::vector<NodeId> listeners;
  for (NodeId i = 3; i < dep.size(); ++i) listeners.push_back(i);

  std::size_t prev = listeners.size() + 1;
  for (const double beta : {1.0, 2.0, 4.0, 8.0}) {
    const SinrChannel ch(basic_params(3.0, beta, 1e-9, 10.0));
    const auto receptions = ch.resolve(dep, tx, listeners);
    std::size_t count = 0;
    for (const Reception& r : receptions) {
      if (r.received()) ++count;
    }
    EXPECT_LE(count, prev) << "beta " << beta;
    prev = count;
  }
}

}  // namespace
}  // namespace fcr
