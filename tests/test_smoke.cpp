// End-to-end smoke test: the paper's algorithm resolves contention on a
// small uniform deployment over the SINR channel.
#include <gtest/gtest.h>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

namespace fcr {
namespace {

TEST(Smoke, FadingAlgorithmResolvesSmallUniformDeployment) {
  Rng rng(42);
  const Deployment dep = uniform_square(64, 100.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;

  EngineConfig config;
  config.max_rounds = 10000;
  const RunResult result =
      run_execution(dep, algo, *channel, config, rng.split(1));

  EXPECT_TRUE(result.solved);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_LT(result.rounds, 10000u);
  EXPECT_NE(result.winner, kInvalidNode);
}

}  // namespace
}  // namespace fcr
