// Tests for the base statistics module: streaming summaries, percentiles,
// regression, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

// ----------------------------------------------------------------- summary

TEST(StreamingSummary, EmptyIsZeroed) {
  const StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(StreamingSummary, KnownMoments) {
  StreamingSummary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(StreamingSummary, NumericallyStableOnShiftedData) {
  // Welford must handle a large offset without catastrophic cancellation.
  StreamingSummary s;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);  // linear interpolation
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);  // order-independent
}

TEST(Percentile, Validation) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(percentile(one, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 1.0);
}

TEST(BatchSummary, ConsistentWithPieces) {
  Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.uniform(0.0, 10.0));
  const BatchSummary s = BatchSummary::of(v);
  EXPECT_EQ(s.count, 500u);
  EXPECT_DOUBLE_EQ(s.median, median(v));
  EXPECT_DOUBLE_EQ(s.p95, percentile(v, 0.95));
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.max);
}

TEST(BatchSummary, EmptyBatch) {
  const BatchSummary s = BatchSummary::of(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(ToDoubles, ConvertsFaithfully) {
  const std::vector<std::uint64_t> v = {1, 2, 1ULL << 40};
  const auto d = to_doubles(v);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[2], std::pow(2.0, 40.0));
}

// --------------------------------------------------------------- regression

TEST(Regression, ExactLineIsRecovered) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double xi : x) y.push_back(3.0 + 2.0 * xi);
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 23.0, 1e-12);
}

TEST(Regression, NoisyLineHasHighButImperfectR2) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(1.0 + 0.5 * i + rng.normal(0.0, 3.0));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_GT(fit.r_squared, 0.9);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(Regression, ConstantYIsPerfectFit) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Regression, Validation) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {2.0};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
  const std::vector<double> x2 = {1.0, 1.0};
  const std::vector<double> y2 = {2.0, 3.0};
  EXPECT_THROW(linear_fit(x2, y2), std::invalid_argument);  // constant x
  const std::vector<double> y3 = {1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(x2, y3), std::invalid_argument);  // length mismatch
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(3.0);    // bucket 1
  h.add(9.99);   // bucket 4
  h.add(-1.0);   // underflow -> bucket 0
  h.add(100.0);  // overflow  -> bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string r = h.render(10);
  EXPECT_NE(r.find("##########"), std::string::npos);
  EXPECT_NE(r.find('\n'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bucket_lo(2), std::invalid_argument);
}

}  // namespace
}  // namespace fcr
