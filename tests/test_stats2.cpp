// Tests for bootstrap confidence intervals and the Chernoff-bound helpers,
// plus Monte Carlo validation that the bounds actually bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/chernoff.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace fcr {
namespace {

// ---------------------------------------------------------------- bootstrap

TEST(Bootstrap, MedianCiCoversTheTruth) {
  // Large normal sample: the CI must cover the true median (0) and be
  // reasonably tight.
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.normal());
  Rng boot_rng(2);
  const ConfidenceInterval ci = bootstrap_median_ci(sample, boot_rng);
  EXPECT_TRUE(ci.contains(0.0)) << "[" << ci.lo << ", " << ci.hi << "]";
  EXPECT_LT(ci.width(), 0.2);
  EXPECT_LE(ci.lo, ci.hi);
}

TEST(Bootstrap, QuantileCiOrdersWithQ) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.uniform());
  Rng boot_rng(4);
  const ConfidenceInterval low = bootstrap_quantile_ci(sample, 0.25, boot_rng);
  const ConfidenceInterval high = bootstrap_quantile_ci(sample, 0.75, boot_rng);
  EXPECT_LT(low.hi, high.lo);
  // A 95% CI misses the true value 5% of the time; assert the weaker and
  // deterministic property that each interval sits near its target.
  EXPECT_NEAR(0.5 * (low.lo + low.hi), 0.25, 0.05);
  EXPECT_NEAR(0.5 * (high.lo + high.hi), 0.75, 0.05);
}

TEST(Bootstrap, DeterministicUnderSeed) {
  std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  Rng a(9), b(9);
  const ConfidenceInterval ca = bootstrap_median_ci(sample, a, 200);
  const ConfidenceInterval cb = bootstrap_median_ci(sample, b, 200);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, Validation) {
  Rng rng(5);
  const std::vector<double> empty;
  EXPECT_THROW(bootstrap_median_ci(empty, rng), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(bootstrap_median_ci(one, rng, 5), std::invalid_argument);
  EXPECT_THROW(bootstrap_quantile_ci(one, 1.5, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(one, Statistic{}, rng), std::invalid_argument);
}

TEST(Bootstrap, SingletonSampleDegenerates) {
  const std::vector<double> one = {7.0};
  Rng rng(6);
  const ConfidenceInterval ci = bootstrap_median_ci(one, rng, 100);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

// ----------------------------------------------------------------- chernoff

TEST(Chernoff, ClosedForms) {
  EXPECT_DOUBLE_EQ(claim3_doubling_bound(3.0), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(corollary5_halving_bound(8.0), std::exp(-1.0));
  EXPECT_NEAR(chernoff_upper_tail(10.0, 1.0), std::exp(-10.0 / 3.0), 1e-12);
  EXPECT_NEAR(chernoff_lower_tail(10.0, 0.5), std::exp(-1.25), 1e-12);
}

TEST(Chernoff, BoundsDecreaseWithMean) {
  EXPECT_GT(claim3_doubling_bound(1.0), claim3_doubling_bound(10.0));
  EXPECT_GT(corollary5_halving_bound(1.0), corollary5_halving_bound(10.0));
}

TEST(Chernoff, Validation) {
  EXPECT_THROW(chernoff_upper_tail(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(chernoff_upper_tail(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(chernoff_lower_tail(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(whp_segments(0.0, 10), std::invalid_argument);
  EXPECT_THROW(whp_segments(0.5, 1), std::invalid_argument);
}

TEST(Chernoff, MonteCarloTailsRespectTheBounds) {
  // Sum of 40 Bernoulli(0.25): mu = 10. Empirical doubling/halving tail
  // frequencies must sit below the closed-form bounds.
  Rng rng(7);
  const int trials = 20000;
  const double mu = 10.0;
  int doubled = 0, halved = 0;
  for (int t = 0; t < trials; ++t) {
    int x = 0;
    for (int i = 0; i < 40; ++i) {
      if (rng.bernoulli(0.25)) ++x;
    }
    if (x >= 2.0 * mu) ++doubled;
    if (x < mu / 2.0) ++halved;
  }
  EXPECT_LE(static_cast<double>(doubled) / trials, claim3_doubling_bound(mu));
  EXPECT_LE(static_cast<double>(halved) / trials, corollary5_halving_bound(mu));
}

TEST(Chernoff, WhpSegmentsShape) {
  // Constant per-segment success: T grows logarithmically in n and with c.
  const std::size_t t1 = whp_segments(0.5, 1 << 10);
  const std::size_t t2 = whp_segments(0.5, 1 << 20);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1), 1.0);
  EXPECT_GT(whp_segments(0.5, 1 << 10, 2.0), t1);
  // Higher per-segment success needs fewer segments.
  EXPECT_LT(whp_segments(0.9, 1 << 10), t1);
  // A Monte Carlo sanity check: after T segments, failure rate <= 1/n.
  Rng rng(8);
  const std::size_t n = 256;
  const std::size_t T = whp_segments(0.5, n);
  int failures = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    bool ok = false;
    for (std::size_t s = 0; s < T && !ok; ++s) ok = rng.bernoulli(0.5);
    if (!ok) ++failures;
  }
  EXPECT_LE(static_cast<double>(failures) / trials,
            1.2 / static_cast<double>(n));
}

}  // namespace
}  // namespace fcr
