// Tests for the proof-constant chain (Section 3.2) and its closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"

namespace fcr {
namespace {

TEST(Theory, AlphaThreeBetaOnePointFiveChain) {
  const TheoryConstants tc = theory_constants(3.0, 1.5);
  EXPECT_DOUBLE_EQ(tc.epsilon, 0.5);
  // c_max = 96 / (1 - 2^{-1/2}).
  EXPECT_NEAR(tc.c_max, 96.0 / (1.0 - 1.0 / std::sqrt(2.0)), 1e-9);
  // c = 1 / (2^5 * 1.5).
  EXPECT_NEAR(tc.c_corollary5, 1.0 / 48.0, 1e-12);
  EXPECT_NEAR(tc.p, tc.c_corollary5 / (4.0 * tc.c_max), 1e-15);
  EXPECT_NEAR(tc.c_prime,
              tc.c_corollary5 * tc.c_corollary5 / (24.0 * tc.c_max * tc.c_max),
              1e-15);
  EXPECT_NEAR(tc.c_geo, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(tc.gamma_good, (1.0 - 1.0 / std::sqrt(2.0)) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(tc.delta, tc.gamma_good / 2.0);
}

TEST(Theory, AllConstantsInDomain) {
  for (const double alpha : {2.1, 2.5, 3.0, 4.0, 6.0}) {
    for (const double beta : {1.0, 1.5, 3.0}) {
      const TheoryConstants tc = theory_constants(alpha, beta);
      EXPECT_GT(tc.epsilon, 0.0);
      EXPECT_GT(tc.c_max, 96.0);          // 1/(1-2^{-eps}) > 1
      EXPECT_GT(tc.c_corollary5, 0.0);
      EXPECT_GT(tc.p, 0.0);
      EXPECT_LT(tc.p, 0.25);              // p = c/(4 c_max) << 1/4
      EXPECT_GT(tc.s, 1.0);
      EXPECT_GT(tc.c_geo, 1.0);           // the Lemma 6 series must converge
      EXPECT_GT(tc.gamma_good, 0.0);
      EXPECT_LT(tc.gamma_good, 0.5);
      EXPECT_GT(tc.delta, 0.0);
      EXPECT_LT(tc.delta, tc.gamma_good);
    }
  }
}

TEST(Theory, RequiresSuperQuadraticAlpha) {
  EXPECT_THROW(theory_constants(2.0, 1.5), std::invalid_argument);
  EXPECT_THROW(theory_constants(1.5, 1.5), std::invalid_argument);
  EXPECT_THROW(theory_constants(3.0, 0.0), std::invalid_argument);
}

TEST(Theory, CmaxDecreasesWithAlpha) {
  // Stronger fading (larger eps) shrinks the geometric tail.
  const double c3 = theory_constants(3.0, 1.5).c_max;
  const double c4 = theory_constants(4.0, 1.5).c_max;
  const double c6 = theory_constants(6.0, 1.5).c_max;
  EXPECT_GT(c3, c4);
  EXPECT_GT(c4, c6);
}

TEST(Theory, CmaxBlowsUpAsAlphaApproachesTwo) {
  const double near = theory_constants(2.01, 1.5).c_max;
  EXPECT_GT(near, 10000.0);  // eps -> 0 makes the series diverge
}

TEST(Theory, InterferenceBudgetsScaleWithLinkClass) {
  const TheoryConstants tc = theory_constants(3.0, 1.5);
  const double power = 8.0;
  // Budget drops by 2^alpha per class.
  const double b0 = outside_interference_budget(tc, power, 0);
  const double b1 = outside_interference_budget(tc, power, 1);
  EXPECT_NEAR(b0 / b1, std::pow(2.0, 3.0), 1e-9);
  EXPECT_NEAR(b0, tc.c_corollary5 * power, 1e-12);

  const double m0 = max_interference_coefficient(tc, power, 0);
  EXPECT_NEAR(m0, tc.c_max * power, 1e-9);
  EXPECT_GT(m0, b0);  // the all-transmit budget dominates the w.h.p. one
}

TEST(Theory, BudgetValidation) {
  const TheoryConstants tc = theory_constants(3.0, 1.5);
  EXPECT_THROW(outside_interference_budget(tc, 0.0, 0), std::invalid_argument);
  EXPECT_THROW(max_interference_coefficient(tc, -1.0, 0), std::invalid_argument);
}

TEST(Theory, PredictedStepsShape) {
  // Theta(log n + log R): doubling n (fixed m) adds a constant; doubling m
  // (fixed n) adds ell per extra class.
  const double t_small = predicted_steps(1 << 8, 4);
  const double t_big_n = predicted_steps(1 << 16, 4);
  const double t_big_m = predicted_steps(1 << 8, 8);
  EXPECT_GT(t_big_n, t_small);
  EXPECT_GT(t_big_m, t_small);
  // Linearity in log n: the increment 8->16 bits roughly equals 16->24 bits.
  const double inc1 = predicted_steps(1 << 16, 4) - predicted_steps(1 << 8, 4);
  const double inc2 = predicted_steps(1 << 24, 4) - predicted_steps(1 << 16, 4);
  EXPECT_NEAR(inc1, inc2, 2.0);
}

}  // namespace
}  // namespace fcr
