// ThreadPool contract tests plus the pool-reuse stress the tsan CI preset
// runs: many small trial sets through the persistent global pool, with
// oversubscription and concurrent callers, all bit-identical to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"
#include "sinr/channel.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fcr {
namespace {

TrialConfig tiny_config(std::size_t trials, std::uint64_t seed) {
  TrialConfig c;
  c.trials = trials;
  c.seed = seed;
  c.engine.max_rounds = 20000;
  return c;
}

DeploymentFactory uniform_factory(std::size_t n) {
  return [n](Rng& rng) {
    return uniform_square(n, 2.0 * std::sqrt(static_cast<double>(n)), rng)
        .normalized();
  };
}

AlgorithmFactory fading_factory() {
  return [](const Deployment&) {
    return std::make_unique<FadingContentionResolution>();
  };
}

TEST(ThreadPool, ForEachVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 20000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    const std::size_t count = 1 + static_cast<std::size_t>(round) % 7;
    pool.for_each(count, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), count * (count + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAndAbortsNewClaims) {
  ThreadPool pool(4);
  std::atomic<std::size_t> started{0};
  constexpr std::size_t kCount = 100000;
  try {
    pool.for_each(kCount, [&](std::size_t) {
      started.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("task failed");
    });
    FAIL() << "for_each must rethrow the task's exception";
  } catch (const Error& e) {
    // The pool wraps foreign exceptions into fcr::Error with the failed
    // task's index attached.
    EXPECT_EQ(e.category(), ErrorCategory::kEngine);
    EXPECT_NE(std::string(e.what()).find("task failed"), std::string::npos);
    EXPECT_LT(e.provenance().task, kCount);
  }
  // Abort is checked BEFORE an index is claimed, so once the first task
  // throws only the pumps already past the check may still start one task
  // each: far fewer invocations than indices.
  EXPECT_LE(started.load(), pool.worker_count() + 1);
}

TEST(ThreadPool, FailureContextIdentifiesExactTask) {
  ThreadPool pool(4);
  try {
    pool.for_each(64, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom at seventeen");
    });
    FAIL() << "for_each must rethrow";
  } catch (const Error& e) {
    EXPECT_EQ(e.provenance().task, 17u);
    EXPECT_NE(std::string(e.what()).find("task 17"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("boom at seventeen"),
              std::string::npos);
  }
}

TEST(ThreadPool, StructuredErrorsPassThroughWithTaskAttached) {
  ThreadPool pool(2);
  try {
    pool.for_each(8, [](std::size_t i) {
      if (i == 3) {
        TrialProvenance prov;
        prov.round = 42;
        throw Error(ErrorCategory::kChannel, "bad gain matrix",
                    std::move(prov));
      }
    });
    FAIL() << "for_each must rethrow";
  } catch (const Error& e) {
    // An already-structured Error keeps its category and payload; the
    // pool only adds the task index.
    EXPECT_EQ(e.category(), ErrorCategory::kChannel);
    EXPECT_EQ(e.provenance().round, 42u);
    EXPECT_EQ(e.provenance().task, 3u);
  }
}

TEST(ThreadPool, MaxParallelismOneIsCallerOnly) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> foreign{false};
  pool.for_each(
      64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) foreign.store(true);
      },
      /*max_parallelism=*/1);
  EXPECT_FALSE(foreign.load());
}

TEST(ThreadPool, HugeMaxParallelismIsClampedSafely) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.for_each(
      100, [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
      /*max_parallelism=*/1000000);
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPool, ZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RejectsNullFunction) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.for_each(4, std::function<void(std::size_t)>{}),
               std::invalid_argument);
}

TEST(ThreadPool, ConcurrentForEachCallsOnOnePoolBothComplete) {
  // Two racing batches on the same pool: caller participation guarantees
  // progress for both even when every worker is pinned by the other batch.
  ThreadPool pool(2);
  std::atomic<std::size_t> a{0}, b{0};
  std::thread other([&] {
    pool.for_each(5000,
                  [&](std::size_t) { a.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.for_each(5000,
                [&](std::size_t) { b.fetch_add(1, std::memory_order_relaxed); });
  other.join();
  EXPECT_EQ(a.load(), 5000u);
  EXPECT_EQ(b.load(), 5000u);
}

// ------------------------------------------------- pool-reuse trial stress
//
// The sweep-driver pattern: many SMALL trial sets in sequence through the
// shared global pool, with more threads requested than the machine has.
// Every set must aggregate bit-identically to its serial run. This suite
// (name matched by the CI tsan regex) is the data-race canary for the
// pool + batch-resolver stack.

TEST(ThreadPoolStress, ManySmallTrialSetsBitIdenticalToSerial) {
  const std::size_t oversub =
      2 * std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::uint64_t set = 0; set < 8; ++set) {
    const TrialConfig config = tiny_config(5 + set % 3, 900 + set);
    const auto serial =
        run_trials(uniform_factory(32), sinr_channel_factory(3.0, 1.5, 1e-9),
                   fading_factory(), config);
    const auto parallel = run_trials_parallel(
        uniform_factory(32), sinr_channel_factory(3.0, 1.5, 1e-9),
        fading_factory(), config, oversub);
    ASSERT_EQ(parallel.trials, serial.trials) << "set " << set;
    ASSERT_EQ(parallel.solved, serial.solved) << "set " << set;
    ASSERT_EQ(parallel.rounds, serial.rounds) << "set " << set;
  }
}

TEST(ThreadPoolStress, ConcurrentTrialSetsDoNotInterfere) {
  // Two sweep drivers racing on the global pool, each its own config; both
  // must match their serial references.
  const TrialConfig ca = tiny_config(6, 1234);
  const TrialConfig cb = tiny_config(4, 5678);
  const auto serial_a =
      run_trials(uniform_factory(24), sinr_channel_factory(3.0, 1.5, 1e-9),
                 fading_factory(), ca);
  const auto serial_b =
      run_trials(uniform_factory(40), sinr_channel_factory(3.0, 1.5, 1e-9),
                 fading_factory(), cb);

  TrialSetResult pa, pb;
  std::thread other([&] {
    pa = run_trials_parallel(uniform_factory(24),
                             sinr_channel_factory(3.0, 1.5, 1e-9),
                             fading_factory(), ca, 4);
  });
  pb = run_trials_parallel(uniform_factory(40),
                           sinr_channel_factory(3.0, 1.5, 1e-9),
                           fading_factory(), cb, 4);
  other.join();

  EXPECT_EQ(pa.solved, serial_a.solved);
  EXPECT_EQ(pa.rounds, serial_a.rounds);
  EXPECT_EQ(pb.solved, serial_b.solved);
  EXPECT_EQ(pb.rounds, serial_b.rounds);
}

TEST(ThreadPoolStress, PoolConstructionAndTeardownLoop) {
  // Local pools built and torn down repeatedly: the drain-on-shutdown path
  // must not lose tasks or hang.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(1 + static_cast<std::size_t>(i) % 4);
    std::atomic<std::size_t> sum{0};
    pool.for_each(32, [&](std::size_t j) {
      sum.fetch_add(j, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 32u * 31u / 2u) << "iteration " << i;
  }
}

}  // namespace
}  // namespace fcr
