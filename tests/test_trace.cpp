// Execution-trace and knockout-forest tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/fading_cr.hpp"
#include "core/knockout_forest.hpp"
#include "deploy/generators.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace fcr {
namespace {

/// Runs one fading execution with both instrumentation hooks attached.
struct InstrumentedRun {
  Deployment dep;
  ExecutionTrace trace;
  KnockoutForest forest;
  RunResult result;

  explicit InstrumentedRun(std::size_t n, std::uint64_t seed)
      : dep([&] {
          Rng rng(seed);
          return uniform_square(n, 20.0, rng).normalized();
        }()),
        forest(dep.size()) {
    const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
    const FadingContentionResolution algo;
    EngineConfig config;
    config.max_rounds = 10000;
    auto trace_obs = trace.observer();
    auto forest_obs = forest.observer();
    result = run_execution(dep, algo, *channel, config, Rng(seed + 1),
                           [&](const RoundView& view) {
                             trace_obs(view);
                             forest_obs(view);
                           });
  }
};

TEST(Trace, RecordsEveryRoundUntilSolved) {
  InstrumentedRun run(64, 42);
  ASSERT_TRUE(run.result.solved);
  ASSERT_EQ(run.trace.rounds().size(), run.result.rounds);
  EXPECT_EQ(run.trace.first_solo_round(), run.result.rounds);
  // The final round has exactly one transmitter: the winner.
  const TraceRound& last = run.trace.rounds().back();
  ASSERT_EQ(last.transmitters.size(), 1u);
  EXPECT_EQ(last.transmitters[0], run.result.winner);
}

TEST(Trace, TransmissionAccountingIsConsistent) {
  InstrumentedRun run(64, 43);
  const auto per_node = run.trace.transmissions_per_node();
  std::size_t total = 0;
  for (const std::size_t c : per_node) total += c;
  EXPECT_EQ(total, run.trace.total_transmissions());
  EXPECT_GT(run.trace.total_transmissions(), 0u);
  EXPECT_GT(run.trace.total_receptions(), 0u);
}

TEST(Trace, CsvHasOneLinePerEvent) {
  InstrumentedRun run(32, 44);
  std::ostringstream os;
  run.trace.write_csv(os);
  std::size_t lines = 0;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 1 /*header*/ + run.trace.total_transmissions() +
                       run.trace.total_receptions());
  EXPECT_EQ(os.str().substr(0, 24), "round,event,node,sender\n");
}

TEST(Trace, EmptyTraceBehaves) {
  ExecutionTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_receptions(), 0u);
  EXPECT_EQ(trace.first_solo_round(), 0u);
  EXPECT_TRUE(trace.transmissions_per_node().empty());
}

TEST(KnockoutForest, KillersAreRecordedWithRounds) {
  InstrumentedRun run(64, 45);
  ASSERT_TRUE(run.result.solved);
  std::size_t knocked = 0;
  for (NodeId id = 0; id < run.dep.size(); ++id) {
    if (run.forest.killer(id) != kInvalidNode) {
      ++knocked;
      EXPECT_GE(run.forest.knockout_round(id), 1u);
      EXPECT_LE(run.forest.knockout_round(id), run.result.rounds);
      // A node cannot knock itself out.
      EXPECT_NE(run.forest.killer(id), id);
    } else {
      EXPECT_EQ(run.forest.knockout_round(id), 0u);
    }
  }
  EXPECT_EQ(knocked, run.forest.knockout_count());
  EXPECT_EQ(run.forest.survivors().size() + knocked, run.dep.size());
}

TEST(KnockoutForest, WinnerIsASurvivor) {
  InstrumentedRun run(64, 46);
  ASSERT_TRUE(run.result.solved);
  const auto survivors = run.forest.survivors();
  EXPECT_NE(std::find(survivors.begin(), survivors.end(), run.result.winner),
            survivors.end());
}

TEST(KnockoutForest, KillerChainsHaveIncreasingRounds) {
  InstrumentedRun run(128, 47);
  for (NodeId id = 0; id < run.dep.size(); ++id) {
    const NodeId k = run.forest.killer(id);
    if (k == kInvalidNode || run.forest.killer(k) == kInvalidNode) continue;
    // The killer was still active when it transmitted, so its own knockout
    // round is strictly later (a node cannot transmit after deactivation).
    EXPECT_GT(run.forest.knockout_round(k), run.forest.knockout_round(id));
  }
}

TEST(KnockoutForest, SubtreeAndDegreeAccounting) {
  InstrumentedRun run(96, 48);
  std::size_t degree_total = 0;
  for (NodeId id = 0; id < run.dep.size(); ++id) {
    degree_total += run.forest.out_degree(id);
    EXPECT_GE(run.forest.subtree_size(id), run.forest.out_degree(id));
  }
  EXPECT_EQ(degree_total, run.forest.knockout_count());
  // Sum of root subtrees = all knocked-out nodes.
  std::size_t root_subtrees = 0;
  for (const NodeId r : run.forest.survivors()) {
    root_subtrees += run.forest.subtree_size(r);
  }
  EXPECT_EQ(root_subtrees, run.forest.knockout_count());
}

TEST(KnockoutForest, DepthIsBoundedByRounds) {
  InstrumentedRun run(128, 49);
  ASSERT_TRUE(run.result.solved);
  EXPECT_GT(run.forest.depth(), 0u);
  // Rounds strictly increase along a chain, so depth <= total rounds.
  EXPECT_LE(run.forest.depth(), run.result.rounds);
}

TEST(KnockoutForest, HandlesNoKnockouts) {
  KnockoutForest forest(4);
  EXPECT_EQ(forest.depth(), 0u);
  EXPECT_EQ(forest.knockout_count(), 0u);
  EXPECT_EQ(forest.survivors().size(), 4u);
  EXPECT_EQ(forest.subtree_size(0), 0u);
  EXPECT_THROW(forest.killer(4), std::invalid_argument);
}

}  // namespace
}  // namespace fcr
