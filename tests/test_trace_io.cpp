// Trace CSV round-trip tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace fcr {
namespace {

ExecutionTrace make_real_trace(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Deployment dep = uniform_square(n, 12.0, rng).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  ExecutionTrace trace;
  EngineConfig config;
  config.max_rounds = 200;
  config.stop_on_solve = false;
  run_execution(dep, algo, *channel, config, rng.split(1), trace.observer());
  return trace;
}

TEST(TraceIo, RoundTripPreservesEveryEvent) {
  const ExecutionTrace original = make_real_trace(32, 50);
  std::stringstream ss;
  original.write_csv(ss);
  const ExecutionTrace loaded = read_trace_csv(ss);

  ASSERT_EQ(loaded.rounds().size(), original.rounds().size());
  for (std::size_t i = 0; i < original.rounds().size(); ++i) {
    const TraceRound& a = original.rounds()[i];
    const TraceRound& b = loaded.rounds()[i];
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.transmitters, b.transmitters) << "round " << a.round;
    ASSERT_EQ(a.receptions.size(), b.receptions.size()) << "round " << a.round;
    for (std::size_t j = 0; j < a.receptions.size(); ++j) {
      EXPECT_EQ(a.receptions[j].listener, b.receptions[j].listener);
      EXPECT_EQ(a.receptions[j].sender, b.receptions[j].sender);
    }
  }
  EXPECT_EQ(loaded.total_transmissions(), original.total_transmissions());
  EXPECT_EQ(loaded.total_receptions(), original.total_receptions());
  EXPECT_EQ(loaded.first_solo_round(), original.first_solo_round());
}

TEST(TraceIo, SilentRoundsAreMaterialized) {
  // Rounds with no events vanish from the CSV; the reader recreates them as
  // empty rounds so indices stay aligned.
  std::vector<TraceRound> rounds(3);
  for (std::size_t i = 0; i < 3; ++i) rounds[i].round = i + 1;
  rounds[2].transmitters = {4};  // only round 3 has an event
  const ExecutionTrace sparse = ExecutionTrace::from_rounds(rounds);

  std::stringstream ss;
  sparse.write_csv(ss);
  const ExecutionTrace loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.rounds().size(), 3u);
  EXPECT_TRUE(loaded.rounds()[0].transmitters.empty());
  EXPECT_TRUE(loaded.rounds()[1].transmitters.empty());
  EXPECT_EQ(loaded.rounds()[2].transmitters, std::vector<NodeId>{4});
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("wrong,header\n");
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("round,event,node,sender\n1,zap,3,\n");
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("round,event,node,sender\n1,tx,3,9\n");  // tx + sender
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("round,event,node,sender\n0,tx,3,\n");  // round 0
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
  {
    std::istringstream in("round,event,node,sender\n1,rx,3\n");  // 3 fields
    EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  }
}

TEST(TraceIo, LoadedTracePassesTheAuditor) {
  Rng rng(51);
  const Deployment dep = uniform_square(32, 12.0, rng).normalized();
  const SinrParams params =
      SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
  const SinrChannelAdapter adapter(params);
  const SinrChannel channel(params);
  const FadingContentionResolution algo;
  ExecutionTrace trace;
  EngineConfig config;
  config.max_rounds = 100;
  config.stop_on_solve = false;
  run_execution(dep, algo, adapter, config, rng.split(1), trace.observer());

  std::stringstream ss;
  trace.write_csv(ss);
  const ExecutionTrace loaded = read_trace_csv(ss);
  EXPECT_TRUE(audit_trace(loaded, dep, channel).clean());
}

}  // namespace
}  // namespace fcr
