// Unit tests for the utility layer: contracts, CSV, tables, CLI, logging.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace fcr {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(FCR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FCR_CHECK_MSG(true, "never shown"));
  EXPECT_NO_THROW(FCR_ENSURE_ARG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsContractViolationWithLocation) {
  try {
    FCR_CHECK(2 + 2 == 5);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Check, FailingCheckMsgIncludesMessage) {
  try {
    FCR_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, EnsureArgThrowsInvalidArgument) {
  EXPECT_THROW(FCR_ENSURE_ARG(false, "bad input"), std::invalid_argument);
}

TEST(Check, ContractViolationIsLogicError) {
  EXPECT_THROW(FCR_CHECK(false), std::logic_error);
}

// ---------------------------------------------------------------------- csv

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"1", "2"});
  csv.row({"x", "y"});
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os, {"field"});
  csv.row({"has,comma"});
  csv.row({"has\"quote"});
  csv.row({"has\nnewline"});
  EXPECT_EQ(os.str(),
            "field\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, RejectsWrongArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(Csv, RejectsEmptyHeader) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), std::invalid_argument);
}

TEST(Csv, NumericFormattingRoundTrips) {
  EXPECT_EQ(CsvWriter::num(std::int64_t{-42}), "-42");
  EXPECT_EQ(CsvWriter::num(std::uint64_t{42}), "42");
  const std::string d = CsvWriter::num(0.1);
  EXPECT_DOUBLE_EQ(std::stod(d), 0.1);
}

// -------------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.row({"1"}), std::invalid_argument);
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(std::int64_t{-5}), "-5");
  EXPECT_EQ(TablePrinter::fmt(std::uint64_t{7}), "7");
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("test");
  cli.add_flag("n", "10", "count");
  cli.add_flag("rate", "0.5", "rate");
  cli.add_flag("label", "foo", "label");
  cli.add_flag("fast", "false", "speed");
  const char* argv[] = {"prog", "--n=32", "--rate", "0.25", "--fast"};
  ASSERT_TRUE(cli.parse(5, argv)) << cli.error();
  EXPECT_EQ(cli.get_int("n"), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
  EXPECT_EQ(cli.get_string("label"), "foo");
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, NegatedBooleans) {
  CliParser cli("test");
  cli.add_flag("verbose", "true", "verbosity");
  const char* argv[] = {"prog", "--no-verbose"};
  ASSERT_TRUE(cli.parse(2, argv)) << cli.error();
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("unknown flag"), std::string::npos);
}

TEST(Cli, HelpRequested) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  std::ostringstream os;
  cli.print_help(os);
  EXPECT_NE(os.str().find("--help"), std::string::npos);
}

TEST(Cli, ListFlags) {
  CliParser cli("test");
  cli.add_flag("sizes", "1,2,4", "sizes");
  cli.add_flag("probs", "0.1,0.2", "probs");
  const char* argv[] = {"prog", "--sizes=8,16,32"};
  ASSERT_TRUE(cli.parse(2, argv)) << cli.error();
  EXPECT_EQ(cli.get_int_list("sizes"), (std::vector<std::int64_t>{8, 16, 32}));
  EXPECT_EQ(cli.get_double_list("probs"), (std::vector<double>{0.1, 0.2}));
}

TEST(Cli, MalformedNumbersThrowOnAccess) {
  CliParser cli("test");
  cli.add_flag("n", "10", "count");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("n"), std::invalid_argument);
}

TEST(Cli, ValueRequiredForNonBoolean) {
  CliParser cli("test");
  cli.add_flag("n", "10", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  CliParser cli("test");
  cli.add_flag("n", "10", "count");
  EXPECT_THROW(cli.add_flag("n", "20", "again"), std::invalid_argument);
}

// ---------------------------------------------------------------------- log

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace fcr
