// Wide integration scenarios: knowledge misestimation, composed fault
// models, Poisson fields across intensities, and a pinned-slope regression
// guarding the E1 headline.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/registry.hpp"
#include "core/fading_cr.hpp"
#include "deploy/generators.hpp"
#include "ext/duty_cycle.hpp"
#include "ext/faults.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/runner.hpp"
#include "stats/regression.hpp"

namespace fcr {
namespace {

TrialConfig cfg(std::size_t trials, std::uint64_t seed = 77) {
  TrialConfig c;
  c.trials = trials;
  c.seed = seed;
  c.engine.max_rounds = 100000;
  return c;
}

TEST(WideIntegration, AlohaDegradesWithMisestimation) {
  // ALOHA's knowledge dependence, quantified: correct n is fast; a 16x
  // overestimate costs roughly the same factor in the median.
  auto run_with_estimate = [](std::size_t factor) {
    return run_trials(
        [](Rng& rng) { return uniform_square(128, 24.0, rng).normalized(); },
        radio_channel_factory(false),
        [factor](const Deployment& dep) {
          return make_algorithm("aloha", dep.size() * factor);
        },
        cfg(25));
  };
  const auto exact = run_with_estimate(1);
  const auto over16 = run_with_estimate(16);
  ASSERT_EQ(exact.solved, exact.trials);
  ASSERT_EQ(over16.solved, over16.trials);
  EXPECT_GT(over16.summary().median, 4.0 * exact.summary().median);
}

TEST(WideIntegration, DutyCycledLossyCrashyNetworkStillResolves) {
  // All three fault models at once: duty cycle 1/2 (random phases), 25%
  // decode loss, 0.5% per-round crashes.
  const auto result = run_trials(
      [](Rng& rng) { return uniform_square(64, 16.0, rng).normalized(); },
      [](const Deployment& dep) -> std::unique_ptr<ChannelAdapter> {
        const SinrParams params =
            SinrParams::for_longest_link(3.0, 1.5, 1e-9, dep.max_link());
        return std::make_unique<LossyChannelAdapter>(make_sinr_adapter(params),
                                                     0.25, Rng(5));
      },
      [](const Deployment&) -> std::unique_ptr<Algorithm> {
        auto inner = std::make_shared<DutyCycled>(
            std::make_shared<FadingContentionResolution>(), 2,
            random_phases(2, 9));
        return std::make_unique<CrashFaults>(inner, 0.005);
      },
      cfg(20));
  EXPECT_GE(result.solve_rate(), 0.9);
}

TEST(WideIntegration, PoissonFieldsAcrossIntensities) {
  for (const double intensity : {0.05, 0.25, 1.0}) {
    const auto result = run_trials(
        [intensity](Rng& rng) {
          return poisson_field(intensity, 30.0, rng).normalized();
        },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        cfg(15, 1000 + static_cast<std::uint64_t>(intensity * 100)));
    EXPECT_EQ(result.solved, result.trials) << "intensity " << intensity;
  }
}

TEST(WideIntegration, E1SlopeRegressionPin) {
  // Guard the headline number: the fading algorithm's median-vs-log2(n)
  // slope on uniform deployments stays in a sane band (measured ~2.1 at
  // p = 0.2). A slope drifting out of [1, 4] signals a behaviour change in
  // the engine, channel, or algorithm.
  std::vector<double> xs, med;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const auto result = run_trials_parallel(
        [n](Rng& rng) {
          return uniform_square(n, 2.0 * std::sqrt(static_cast<double>(n)),
                                rng)
              .normalized();
        },
        sinr_channel_factory(3.0, 1.5, 1e-9),
        [](const Deployment&) {
          return std::make_unique<FadingContentionResolution>();
        },
        cfg(30, n));
    ASSERT_EQ(result.solved, result.trials);
    xs.push_back(std::log2(static_cast<double>(n)));
    med.push_back(result.summary().median);
  }
  const LinearFit fit = linear_fit(xs, med);
  EXPECT_GT(fit.slope, 1.0);
  EXPECT_LT(fit.slope, 4.0);
}

TEST(WideIntegration, EveryRegistryAlgorithmHandlesTinyNetworks) {
  // n = 2 and n = 3 edge cases across the whole catalog.
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    for (const std::size_t n : {2u, 3u}) {
      const auto result = run_trials(
          [n](Rng& rng) { return uniform_square(n, 4.0, rng).normalized(); },
          spec.key == "fading" || spec.key == "no-knockout"
              ? sinr_channel_factory(3.0, 1.5, 1e-9)
              : radio_channel_factory(spec.needs_collision_detection),
          [&spec](const Deployment& dep) {
            return make_algorithm(spec.key, dep.size());
          },
          cfg(10, n * 31));
      EXPECT_EQ(result.solved, result.trials) << spec.key << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace fcr
