// Workspace-layer guarantees:
//   * incremental LinkClassPartition / GoodNodeAnalyzer updates are
//     bit-identical to from-scratch reconstruction (the oracle) under
//     randomized knockout sequences on structurally different deployments,
//   * SpatialGrid::remove leaves every query answering exactly as a fresh
//     grid over the surviving subset,
//   * repeated executions on one ExecutionWorkspace are deterministic and
//     reentrancy-safe,
//   * a WARM workspace runs whole executions with ZERO heap allocations
//     (global operator new/delete counting hooks).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "algorithms/registry.hpp"
#include "core/fading_cr.hpp"
#include "core/good_nodes.hpp"
#include "core/link_classes.hpp"
#include "deploy/generators.hpp"
#include "geom/grid.hpp"
#include "sim/channel_adapter.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sim/workspace.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. Every allocation in the test binary funnels
// through these replaceable operators; the steady-state test asserts the
// count stays flat across warm executions.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// The replaced operators pair new->malloc with delete->free by design;
// GCC's heuristic cannot see that both sides are replaced consistently.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
// ---------------------------------------------------------------------------

namespace fcr {
namespace {

std::vector<NodeId> all_ids(std::size_t n) {
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return ids;
}

// Exact equality across every observable of the partition — the contract is
// bit-identity, so doubles are compared with ==, not a tolerance.
void expect_partition_equal(const LinkClassPartition& incremental,
                            const LinkClassPartition& oracle) {
  ASSERT_EQ(incremental.active_count(), oracle.active_count());
  EXPECT_EQ(incremental.active(), oracle.active());
  ASSERT_EQ(incremental.class_count(), oracle.class_count());
  for (std::size_t i = 0; i < oracle.class_count(); ++i) {
    EXPECT_EQ(incremental.nodes_in(i), oracle.nodes_in(i)) << "class " << i;
  }
  for (const NodeId id : oracle.active()) {
    EXPECT_EQ(incremental.class_of(id), oracle.class_of(id)) << "node " << id;
    const double a = incremental.nearest_distance(id);
    const double b = oracle.nearest_distance(id);
    EXPECT_EQ(a, b) << "nearest_distance of node " << id;
  }
  EXPECT_EQ(incremental.smallest_nonempty(), oracle.smallest_nonempty());
  EXPECT_EQ(incremental.sizes(), oracle.sizes());
}

// Drives a persistent partition through a random knockout schedule and
// checks it against a from-scratch oracle after every round.
void run_knockout_schedule(const Deployment& dep, std::uint64_t seed) {
  std::vector<NodeId> active = all_ids(dep.size());
  LinkClassPartition incremental(dep, active);
  Rng rng(seed);

  while (!active.empty()) {
    std::vector<NodeId> knocked, survivors;
    for (const NodeId id : active) {
      (rng.bernoulli(0.35) ? knocked : survivors).push_back(id);
    }
    if (knocked.empty()) {
      // Force progress: knock out one random active node.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(survivors.size()));
      knocked.push_back(survivors[pick]);
      survivors.erase(survivors.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    incremental.apply_knockouts(knocked);
    const LinkClassPartition oracle(dep, survivors);
    expect_partition_equal(incremental, oracle);
    active = std::move(survivors);
  }
}

TEST(IncrementalPartition, MatchesOracleOnUniform) {
  Rng gen(101);
  const Deployment dep = uniform_square(160, 26.0, gen).normalized();
  run_knockout_schedule(dep, 7);
  run_knockout_schedule(dep, 8);
}

TEST(IncrementalPartition, MatchesOracleOnExponentialChain) {
  Rng gen(102);
  const Deployment dep = exponential_chain(96, 1 << 14, gen).normalized();
  run_knockout_schedule(dep, 9);
}

TEST(IncrementalPartition, MatchesOracleOnMultiScale) {
  Rng gen(103);
  const Deployment dep = multi_scale(4, 24, gen).normalized();
  run_knockout_schedule(dep, 10);
  run_knockout_schedule(dep, 11);
}

TEST(IncrementalPartition, MatchesOracleOnExactTieLattice) {
  // A lattice maximizes exact-distance ties: every interior node has four
  // neighbors at identical distance, so this exercises the smallest-id
  // tie-break that the incremental==oracle argument depends on.
  std::vector<Vec2> pts;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const Deployment dep(std::move(pts));
  run_knockout_schedule(dep, 12);
  run_knockout_schedule(dep, 13);
}

TEST(IncrementalPartition, SingleKnockoutsDownToEmpty) {
  Rng gen(104);
  const Deployment dep = uniform_square(40, 13.0, gen).normalized();
  std::vector<NodeId> active = all_ids(dep.size());
  LinkClassPartition incremental(dep, active);
  Rng rng(5);
  while (!active.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(active.size()));
    const NodeId victim = active[pick];
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    incremental.apply_knockouts(std::vector<NodeId>{victim});
    expect_partition_equal(incremental, LinkClassPartition(dep, active));
  }
}

TEST(IncrementalPartition, RejectsInactiveKnockout) {
  const Deployment dep({{0, 0}, {1, 0}, {5, 0}});
  LinkClassPartition part(dep, all_ids(3));
  part.apply_knockouts(std::vector<NodeId>{1});
  EXPECT_THROW(part.apply_knockouts(std::vector<NodeId>{1}),
               std::invalid_argument);
  EXPECT_THROW(part.apply_knockouts(std::vector<NodeId>{7}),
               std::invalid_argument);
}

TEST(SpatialGridRemoval, QueriesMatchFreshGridOverSurvivors) {
  Rng gen(105);
  const Deployment dep = uniform_square(120, 22.0, gen).normalized();
  std::vector<NodeId> alive = all_ids(dep.size());
  SpatialGrid grid(dep.positions(), alive);

  Rng rng(6);
  while (alive.size() > 1) {
    // Remove a random batch.
    std::vector<NodeId> keep;
    for (const NodeId id : alive) {
      if (rng.bernoulli(0.3)) {
        ASSERT_TRUE(grid.remove(id, dep.position(id)));
      } else {
        keep.push_back(id);
      }
    }
    alive = std::move(keep);

    // The fresh grid picks a different auto cell size for the smaller
    // subset; every query must agree anyway.
    const SpatialGrid fresh(dep.positions(), alive);
    ASSERT_EQ(grid.size(), fresh.size());
    for (const NodeId id : alive) {
      const auto a = grid.nearest(dep.position(id), id);
      const auto b = fresh.nearest(dep.position(id), id);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->id, b->id);
        EXPECT_EQ(a->distance, b->distance);
      }
      EXPECT_EQ(grid.count_in_annulus(dep.position(id), 0.5, 4.0, id),
                fresh.count_in_annulus(dep.position(id), 0.5, 4.0, id));
      EXPECT_EQ(grid.count_in_disk(dep.position(id), 2.5, id),
                fresh.count_in_disk(dep.position(id), 2.5, id));
    }
  }
}

TEST(SpatialGridRemoval, RemoveReportsMembership) {
  const Deployment dep({{0, 0}, {1, 0}, {2, 0}});
  SpatialGrid grid(dep.positions());
  EXPECT_TRUE(grid.remove(1, dep.position(1)));
  EXPECT_FALSE(grid.remove(1, dep.position(1)));  // already gone
  EXPECT_EQ(grid.size(), 2u);
  const auto nn = grid.nearest(dep.position(0), 0);
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->id, 2u);
}

TEST(GoodNodeAnalyzerIncremental, MatchesFreshAnalyzer) {
  Rng gen(106);
  const Deployment dep = uniform_square(72, 17.0, gen).normalized();
  std::vector<NodeId> active = all_ids(dep.size());
  GoodNodeAnalyzer incremental(dep, active);

  Rng rng(14);
  for (int step = 0; step < 3 && active.size() > 8; ++step) {
    std::vector<NodeId> knocked, survivors;
    for (const NodeId id : active) {
      (rng.bernoulli(0.3) ? knocked : survivors).push_back(id);
    }
    if (knocked.empty()) continue;
    incremental.apply_knockouts(knocked);
    active = survivors;

    const GoodNodeAnalyzer fresh(dep, active);
    expect_partition_equal(incremental.classes(), fresh.classes());
    for (std::size_t i = 0; i < fresh.classes().class_count(); ++i) {
      EXPECT_EQ(incremental.good_in_class(i), fresh.good_in_class(i));
      EXPECT_EQ(incremental.well_spaced_subset(i, 1.0),
                fresh.well_spaced_subset(i, 1.0));
    }
    for (const NodeId u : active) {
      EXPECT_EQ(incremental.partner(u), fresh.partner(u));
    }
  }
}

TEST(Workspace, RepeatedRunsAreDeterministic) {
  Rng gen(107);
  const Deployment dep = uniform_square(64, 16.0, gen).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;

  const RunResult first = run_execution(dep, algo, *channel, config, Rng(42));
  for (int i = 0; i < 3; ++i) {
    const RunResult again = run_execution(dep, algo, *channel, config, Rng(42));
    EXPECT_EQ(again.solved, first.solved);
    EXPECT_EQ(again.rounds, first.rounds);
    EXPECT_EQ(again.winner, first.winner);
  }

  // A private stack workspace must agree with the thread's shared one.
  ExecutionWorkspace local;
  const RunResult scoped = local.run(dep, algo, *channel, config, Rng(42));
  EXPECT_EQ(scoped.solved, first.solved);
  EXPECT_EQ(scoped.rounds, first.rounds);
  EXPECT_EQ(scoped.winner, first.winner);
}

TEST(Workspace, ReentrantExecutionFromObserver) {
  Rng gen(108);
  const Deployment dep = uniform_square(24, 10.0, gen).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;

  const RunResult inner_expected =
      run_execution(dep, algo, *channel, config, Rng(9));
  const RunResult outer_expected =
      run_execution(dep, algo, *channel, config, Rng(10));

  // The observer launches a nested execution every round; the nested run
  // must not disturb the outer one (it gets a stack-local workspace).
  std::size_t nested_runs = 0;
  const RunResult outer = run_execution(
      dep, algo, *channel, config, Rng(10), [&](const RoundView&) {
        const RunResult inner =
            run_execution(dep, algo, *channel, config, Rng(9));
        EXPECT_EQ(inner.solved, inner_expected.solved);
        EXPECT_EQ(inner.rounds, inner_expected.rounds);
        EXPECT_EQ(inner.winner, inner_expected.winner);
        ++nested_runs;
      });
  EXPECT_GT(nested_runs, 0u);
  EXPECT_EQ(outer.solved, outer_expected.solved);
  EXPECT_EQ(outer.rounds, outer_expected.rounds);
  EXPECT_EQ(outer.winner, outer_expected.winner);
}

TEST(Workspace, SteadyStateExecutionsAllocateNothing) {
  Rng gen(109);
  const Deployment dep = uniform_square(96, 19.0, gen).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const FadingContentionResolution algo;
  EngineConfig config;  // stop_on_solve, no history recording

  ExecutionWorkspace ws;
  // Warm pass: sizes every buffer (slab, round buffers, resolver scratch)
  // for exactly the executions the measured pass repeats.
  std::vector<RunResult> expected;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expected.push_back(ws.run(dep, algo, *channel, config, Rng(seed)));
  }

  const std::size_t before = g_allocations.load();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RunResult r = ws.run(dep, algo, *channel, config, Rng(seed));
    EXPECT_EQ(r.solved, expected[seed - 1].solved);
    EXPECT_EQ(r.rounds, expected[seed - 1].rounds);
    EXPECT_EQ(r.winner, expected[seed - 1].winner);
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "a warm workspace must run executions without heap allocation";
}

TEST(Workspace, SlabPathUsedByFadingAlgorithm) {
  // The zero-allocation guarantee rests on the slab path; make sure the
  // paper's algorithm actually publishes an in-place layout.
  const FadingContentionResolution algo;
  const NodeLayout layout = algo.node_layout();
  EXPECT_GT(layout.size, 0u);
  EXPECT_GT(layout.align, 0u);
  EXPECT_LE(layout.align, alignof(std::max_align_t));
}

TEST(Workspace, EveryRegistryAlgorithmPublishesSlabLayout) {
  // The slab contract used to cover only aloha/no-knockout/fading; the
  // paper's baselines fell back to make_node heap allocation every warm
  // run. Every catalog entry must publish an in-place layout now.
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    const auto algorithm = make_algorithm(spec.key, 64);
    const NodeLayout layout = algorithm->node_layout();
    EXPECT_GT(layout.size, 0u) << spec.key;
    EXPECT_GT(layout.align, 0u) << spec.key;
  }
}

TEST(Workspace, WarmRunsAllocateNothingForEveryRegistryAlgorithm) {
  // The PR-4 proof sampled one algorithm; this iterates the whole catalog
  // on both round loops. Each (algorithm, path) pair warms a private
  // workspace, then repeats the same runs under the counter: the repeats
  // must be bit-identical and allocation-free.
  Rng gen(110);
  const Deployment dep = uniform_square(96, 19.0, gen).normalized();
  const auto sinr = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const auto radio_cd = make_radio_adapter(true);
  for (const AlgorithmSpec& spec : algorithm_catalog()) {
    const auto algorithm = make_algorithm(spec.key, dep.size());
    const ChannelAdapter& channel =
        spec.needs_collision_detection ? *radio_cd : *sinr;
    for (const ExecutionPath path :
         {ExecutionPath::kVirtual, ExecutionPath::kAuto}) {
      EngineConfig config;
      config.path = path;
      // Bounds the feedback-oblivious baselines that rarely solve n=96
      // (no-knockout); result equality still proves determinism.
      config.max_rounds = 512;

      ExecutionWorkspace ws;
      std::vector<RunResult> expected;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        expected.push_back(ws.run(dep, *algorithm, channel, config, Rng(seed)));
      }
      const std::size_t before = g_allocations.load();
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const RunResult r = ws.run(dep, *algorithm, channel, config, Rng(seed));
        EXPECT_EQ(r.solved, expected[seed - 1].solved) << spec.key;
        EXPECT_EQ(r.rounds, expected[seed - 1].rounds) << spec.key;
        EXPECT_EQ(r.winner, expected[seed - 1].winner) << spec.key;
      }
      EXPECT_EQ(g_allocations.load() - before, 0u)
          << "warm runs of '" << spec.key << "' on the "
          << (path == ExecutionPath::kVirtual ? "virtual" : "auto")
          << " path must not allocate";
    }
  }
}

// ---------------------------------------------------------------------------
// Over-aligned slab support: node state padded to a cache line must land on
// 64-byte slots even though new[] only guarantees max_align_t.

std::atomic<std::size_t> g_misaligned_nodes{0};

struct alignas(64) OveralignedNode final : public NodeProtocol {
  explicit OveralignedNode(Rng rng) : rng_(rng) {
    if (reinterpret_cast<std::uintptr_t>(this) % 64 != 0) {
      ++g_misaligned_nodes;
    }
  }
  Action on_round_begin(std::uint64_t /*round*/) override {
    return rng_.bernoulli(0.25) ? Action::kTransmit : Action::kListen;
  }
  void on_round_end(const Feedback&) override {}

  Rng rng_;
};

class OveralignedAlgorithm final : public Algorithm {
 public:
  /// slab = false withholds the layout, forcing the make_node heap
  /// fallback — the oracle the slab path must match bit for bit.
  explicit OveralignedAlgorithm(bool slab) : slab_(slab) {}

  std::string name() const override { return "overaligned-test"; }
  std::unique_ptr<NodeProtocol> make_node(NodeId /*id*/, Rng rng) const override {
    return std::make_unique<OveralignedNode>(rng);
  }
  NodeLayout node_layout() const override {
    if (!slab_) return {};
    return {sizeof(OveralignedNode), alignof(OveralignedNode)};
  }
  NodeProtocol* construct_node_at(void* storage, NodeId /*id*/,
                                  Rng rng) const override {
    return ::new (storage) OveralignedNode(rng);
  }

 private:
  bool slab_;
};

TEST(Workspace, OverAlignedNodeTypesGetAlignedSlabSlots) {
  Rng gen(111);
  const Deployment dep = uniform_square(48, 14.0, gen).normalized();
  const auto channel = sinr_channel_factory(3.0, 1.5, 1e-9)(dep);
  const OveralignedAlgorithm slab_algo(/*slab=*/true);
  const OveralignedAlgorithm heap_algo(/*slab=*/false);
  EngineConfig config;
  config.max_rounds = 256;

  g_misaligned_nodes.store(0);
  ExecutionWorkspace ws;
  const RunResult slab_run = ws.run(dep, slab_algo, *channel, config, Rng(3));
  EXPECT_EQ(g_misaligned_nodes.load(), 0u)
      << "slab slots must satisfy alignas(64)";

  // Same decisions as the heap-constructed oracle.
  ExecutionWorkspace heap_ws;
  const RunResult heap_run =
      heap_ws.run(dep, heap_algo, *channel, config, Rng(3));
  EXPECT_EQ(slab_run.solved, heap_run.solved);
  EXPECT_EQ(slab_run.rounds, heap_run.rounds);
  EXPECT_EQ(slab_run.winner, heap_run.winner);

  // And the over-aligned slab keeps the warm zero-allocation contract.
  const RunResult warm_expected = ws.run(dep, slab_algo, *channel, config, Rng(4));
  const std::size_t before = g_allocations.load();
  const RunResult warm = ws.run(dep, slab_algo, *channel, config, Rng(4));
  EXPECT_EQ(g_allocations.load() - before, 0u);
  EXPECT_EQ(warm.rounds, warm_expected.rounds);
  EXPECT_EQ(warm.winner, warm_expected.winner);
}

}  // namespace
}  // namespace fcr
