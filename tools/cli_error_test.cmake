# CTest driver: fcrsim's CLI error paths must exit nonzero with a ONE-LINE
# diagnosed error on stderr — taxonomy category plus an actionable hint —
# never an unhandled exception / abort.

function(expect_cli_error name expected_category expected_hint_fragment)
  execute_process(
    COMMAND ${FCRSIM} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${name}: expected failure, got exit 0")
  endif()
  # An abort/signal shows up as a non-numeric result ("SIGABRT" etc.).
  if(NOT rc MATCHES "^[0-9]+$")
    message(FATAL_ERROR "${name}: crashed (${rc}) instead of a clean error")
  endif()
  if(NOT err MATCHES "fcrsim: error\\[${expected_category}\\]")
    message(FATAL_ERROR
      "${name}: stderr lacks 'fcrsim: error[${expected_category}]':\n${err}")
  endif()
  if(NOT err MATCHES "${expected_hint_fragment}")
    message(FATAL_ERROR
      "${name}: stderr lacks hint '${expected_hint_fragment}':\n${err}")
  endif()
endfunction()

expect_cli_error(missing_deployment_file io "check the path"
  --deployment-file ${WORKDIR}/definitely_missing_deployment.csv --trials 2)

expect_cli_error(resume_without_checkpoint config "--help"
  --n 16 --trials 2 --resume)

expect_cli_error(zero_retries config "--help"
  --n 16 --trials 2 --retries 0 --checkpoint ${WORKDIR}/cli_err.ckpt)

expect_cli_error(negative_threads config "--help"
  --n 16 --trials 2 --threads -3)

# A corrupt checkpoint under --resume is NOT an error: the campaign must
# report the rejection and fall back to a fresh run (exit 0).
file(WRITE ${WORKDIR}/cli_corrupt.ckpt "this is not a checkpoint")
execute_process(
  COMMAND ${FCRSIM} --n 16 --trials 2
          --checkpoint ${WORKDIR}/cli_corrupt.ckpt --resume
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "corrupt checkpoint must fall back to a fresh run, got exit ${rc}:\n${err}")
endif()
if(NOT out MATCHES "checkpoint rejected")
  message(FATAL_ERROR
    "fresh-run fallback must report the rejection:\n${out}")
endif()
