# CLI contract for `fcrlint --explain <rule>`: every registered rule must
# print its summary, rationale, a minimal violating example and the
# sanctioned FCRLINT_ALLOW form; an unknown rule must exit 2 with a
# one-line diagnosis pointing at --list-rules. Run under ctest as
# fcrlint_explain.
#
# Inputs: -DFCRLINT=<path to the fcrlint binary>

function(fail msg)
  message(FATAL_ERROR "fcrlint_explain: ${msg}")
endfunction()

# --- a v4 rule explains fully -------------------------------------------
execute_process(
  COMMAND ${FCRLINT} --explain lane-purity
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  fail("--explain lane-purity exited ${rc}: ${err}")
endif()
foreach(needle
    "lane-purity —"
    "why:"
    "minimal violation:"
    "suppression"
    "FCRLINT_ALLOW(lane-purity")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    fail("--explain lane-purity output is missing '${needle}':\n${out}")
  endif()
endforeach()

# --- every registered rule has an explanation ---------------------------
execute_process(
  COMMAND ${FCRLINT} --list-rules
  OUTPUT_VARIABLE rules_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  fail("--list-rules exited ${rc}")
endif()
string(REGEX MATCHALL "[a-z][a-z-]+" rule_ids "${rules_out}")
list(REMOVE_DUPLICATES rule_ids)
set(explained 0)
foreach(id ${rule_ids})
  execute_process(
    COMMAND ${FCRLINT} --explain ${id}
    OUTPUT_VARIABLE one
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    continue()  # a summary word, not a rule id — the real ids all resolve
  endif()
  string(FIND "${one}" "minimal violation:" pos)
  if(pos EQUAL -1)
    fail("--explain ${id} has no minimal violating example:\n${one}")
  endif()
  math(EXPR explained "${explained} + 1")
endforeach()
if(explained LESS 19)
  fail("only ${explained} rules explained; expected all 19")
endif()

# --- unknown rules are a diagnosed error, not a crash -------------------
execute_process(
  COMMAND ${FCRLINT} --explain no-such-rule
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  fail("--explain no-such-rule should exit 2, got ${rc}")
endif()
string(FIND "${err}" "unknown rule 'no-such-rule'" pos)
if(pos EQUAL -1)
  fail("unknown-rule diagnosis missing from stderr: ${err}")
endif()
