// fcrd — the campaign fabric coordinator.
//
// Runs one campaign (the same SweepSpec flags as fcrsim) sharded over fcrw
// worker processes connected to --socket. Leases, heartbeats, strikes,
// quarantine, and the local-fallback degradation ladder live in
// fabric::SocketBackend (src/fabric/coordinator.hpp); this binary is just
// flags + the campaign report + per-trial CSV output.
//
//   fcrd --socket /tmp/fcr.sock --n 64 --trials 100 --csv out.csv &
//   fcrw --socket /tmp/fcr.sock &   # as many as you like
//
// Transport fault injection: set FCR_FAILPOINT_SPEC (e.g.
// "fabric/send=drop:hash=7") in either process's environment; the
// campaign result must not change (docs/ROBUSTNESS.md §6).
#include <iostream>

#include "fabric/coordinator.hpp"
#include "fabric/spec.hpp"
#include "sim/campaign.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

#include <fstream>

namespace fcr {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli(
      "fcrd: coordinate a campaign over fcrw worker processes (lease-based "
      "sharding with heartbeats, retries, quarantine, and local fallback).");
  fabric::add_spec_flags(cli);
  cli.add_flag("socket", "", "UNIX socket path workers connect to (required)");
  cli.add_flag("lease-trials", "8", "trials per worker lease");
  cli.add_flag("lease-timeout-ms", "1000",
               "revoke a lease after this long without a heartbeat");
  cli.add_flag("grace-ms", "2000",
               "wait this long for a first worker before degrading to "
               "local execution");
  cli.add_flag("max-strikes", "3",
               "lease revocations before a worker is quarantined");
  cli.add_flag("backoff-base-ms", "50", "worker retry backoff base");
  cli.add_flag("backoff-cap-ms", "2000", "worker retry backoff cap");
  cli.add_flag("jitter-seed", "99400619",
               "seed for deterministic backoff jitter");
  cli.add_flag("local-fallback", "true",
               "finish leftover shards in-process when no worker is "
               "reachable (false: fail the campaign instead)");
  cli.add_flag("checkpoint", "",
               "snapshot completed trials to this file (same format and "
               "config-hash key as fcrsim)");
  cli.add_flag("checkpoint-every", "16",
               "snapshot after this many new completions");
  cli.add_flag("resume", "false", "load --checkpoint before running");
  cli.add_flag("csv", "", "write per-trial results to this CSV file");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n(use --help for the flag list)\n";
    return 1;
  }
  if (cli.help_requested()) {
    cli.print_help(std::cout);
    return 0;
  }
  if (cli.get_string("socket").empty()) {
    throw Error(ErrorCategory::kConfig, "--socket is required");
  }
  if (cli.get_bool("resume") && cli.get_string("checkpoint").empty()) {
    throw Error(ErrorCategory::kConfig, "--resume requires --checkpoint <file>");
  }

  fabric::FabricConfig fc;
  fc.socket_path = cli.get_string("socket");
  fc.spec = fabric::spec_from_cli(cli);
  fc.lease_trials = static_cast<std::size_t>(cli.get_int("lease-trials"));
  fc.lease_timeout_ms =
      static_cast<std::uint64_t>(cli.get_int("lease-timeout-ms"));
  fc.worker_grace_ms = static_cast<std::uint64_t>(cli.get_int("grace-ms"));
  fc.max_worker_strikes = static_cast<std::size_t>(cli.get_int("max-strikes"));
  fc.backoff_base_ms =
      static_cast<std::uint64_t>(cli.get_int("backoff-base-ms"));
  fc.backoff_cap_ms = static_cast<std::uint64_t>(cli.get_int("backoff-cap-ms"));
  fc.jitter_seed = static_cast<std::uint64_t>(cli.get_int("jitter-seed"));
  fc.allow_local_fallback = cli.get_bool("local-fallback");

  CampaignConfig cc = fabric::campaign_config(fc.spec);
  cc.checkpoint.path = cli.get_string("checkpoint");
  cc.checkpoint.every =
      static_cast<std::size_t>(cli.get_int("checkpoint-every"));
  cc.checkpoint.resume = cli.get_bool("resume");

  const fabric::Factories factories = fabric::make_factories(fc.spec);
  CampaignRunner runner(factories.deploy, factories.channel,
                        factories.algorithm, cc);
  fabric::SocketBackend backend(fc);
  const CampaignResult campaign = runner.run_with(backend);

  const auto& st = backend.stats();
  std::cout << "fabric: " << st.leases_granted << " lease(s) granted, "
            << st.results_merged << " merged, " << st.leases_expired
            << " expired, " << st.duplicate_results << " duplicate(s), "
            << st.corrupt_results << " corrupt, " << st.worker_strikes
            << " strike(s), " << st.workers_quarantined << " quarantined, "
            << st.local_fallback_trials << " trial(s) run locally\n";
  if (campaign.restored > 0) {
    std::cout << "resumed: " << campaign.restored << " trial(s) restored\n";
  }
  if (!campaign.checkpoint_rejected.empty()) {
    std::cout << "checkpoint rejected (" << campaign.checkpoint_rejected
              << "); starting fresh\n";
  }
  if (!campaign.failures.empty() || campaign.quarantined > 0) {
    std::cout << campaign.failure_report() << '\n';
  }
  const TrialSetResult& result = campaign.result;
  std::cout << "trials: " << result.trials << ", solved: " << result.solved
            << ", solve rate: " << result.solve_rate() << '\n';

  if (const std::string csv_path = cli.get_string("csv"); !csv_path.empty()) {
    std::ofstream out(csv_path);
    FCR_ENSURE_ARG(out.good(), "cannot open CSV output: " << csv_path);
    CsvWriter csv(out, {"trial", "rounds"});
    for (std::size_t t = 0; t < result.rounds.size(); ++t) {
      csv.row({CsvWriter::num(static_cast<std::uint64_t>(t)),
               CsvWriter::num(result.rounds[t])});
    }
    std::cout << "wrote " << result.rounds.size() << " rows to " << csv_path
              << '\n';
  }
  return 0;
}

}  // namespace
}  // namespace fcr

int main(int argc, char** argv) {
  try {
    fcr::failpoint::arm_from_env();
    return fcr::run(argc, argv);
  } catch (const fcr::Error& e) {
    std::cerr << "fcrd: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fcrd: error[engine]: " << e.what() << '\n';
    return 1;
  }
}
