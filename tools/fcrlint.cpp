// fcrlint CLI — walks the tree and applies the rules in fcrlint_rules.hpp.
//
// Usage:
//   fcrlint [--root DIR] [--quiet] [--sarif FILE]
//           [--diff-base REF | --diff-file FILE] [PATH...]
//
// PATHs (default: src) are resolved relative to --root (default: the current
// directory) and scanned recursively for .hpp/.h/.cpp/.cc files. The whole
// batch is linted together (lint_tree), so cross-file analyses — the src/
// include-cycle check — see the full graph. Findings are printed as
// file:line: [rule] message; exit status is nonzero iff any finding was
// reported (after diff filtering, when enabled). Registered as a CTest test
// over the whole tree.
//
//   --sarif FILE      additionally write the findings as a SARIF 2.1.0 log
//                     (consumed by CI's upload-sarif step for inline PR
//                     annotations)
//   --diff-base REF   report only findings on lines changed vs the git ref
//                     (runs `git diff -U0 --no-color REF` under --root)
//   --diff-file FILE  like --diff-base, but read a pre-computed unified diff
//                     from FILE ('-' for stdin); used by tests
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_diff.hpp"
#include "fcrlint_rules.hpp"
#include "fcrlint_sarif.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_rules() {
  std::cout << "fcrlint rules:\n";
  for (const fcrlint::RuleMeta& r : fcrlint::kRules) {
    std::cout << "  " << r.id << "\n      " << r.summary << '\n';
  }
  std::cout << "suppress with: FCRLINT_ALLOW(<rule>): <reason>\n";
}

/// Runs `git diff -U0 --no-color <ref>` under `root` and captures stdout.
/// Returns false (with a message on stderr) if git fails.
bool git_diff(const fs::path& root, const std::string& ref, std::string& out) {
  // The ref came from the command line; refuse shell metacharacters instead
  // of trying to quote them portably.
  for (const char c : ref) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '/' || c == '-' ||
                    c == '_' || c == '.' || c == '~' || c == '^' || c == '@';
    if (!ok) {
      std::cerr << "fcrlint: unsupported character in --diff-base ref\n";
      return false;
    }
  }
  const std::string cmd =
      "git -C '" + root.string() + "' diff -U0 --no-color " + ref;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::cerr << "fcrlint: failed to run git diff\n";
    return false;
  }
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    out.append(buf, got);
  }
  const int status = ::pclose(pipe);
  if (status != 0) {
    std::cerr << "fcrlint: git diff " << ref << " failed (status " << status
              << ")\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  bool quiet = false;
  std::string sarif_path;
  std::string diff_base;
  std::string diff_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* opt) -> const char* {
      if (++i >= argc) {
        std::cerr << "fcrlint: " << opt << " needs an argument\n";
        return nullptr;
      }
      return argv[i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--diff-base") {
      const char* v = value("--diff-base");
      if (v == nullptr) return 2;
      diff_base = v;
    } else if (arg == "--diff-file") {
      const char* v = value("--diff-file");
      if (v == nullptr) return 2;
      diff_file = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fcrlint [--root DIR] [--quiet] [--sarif FILE]\n"
                   "               [--diff-base REF | --diff-file FILE]\n"
                   "               [--list-rules] [PATH...]\n";
      print_rules();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fcrlint: unknown option " << arg << '\n';
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (!diff_base.empty() && !diff_file.empty()) {
    std::cerr << "fcrlint: --diff-base and --diff-file are exclusive\n";
    return 2;
  }
  if (paths.empty()) paths.push_back("src");

  std::vector<fcrlint::FileInput> inputs;
  for (const std::string& p : paths) {
    const fs::path base = root / p;
    if (!fs::exists(base)) {
      std::cerr << "fcrlint: no such path: " << base.string() << '\n';
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(base);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      inputs.push_back({fs::relative(f, root).lexically_normal().generic_string(),
                        read_file(f)});
    }
  }

  std::vector<fcrlint::Finding> findings = fcrlint::lint_tree(inputs);

  if (!diff_base.empty() || !diff_file.empty()) {
    std::string diff;
    if (!diff_base.empty()) {
      if (!git_diff(root, diff_base, diff)) return 2;
    } else if (diff_file == "-") {
      std::ostringstream os;
      os << std::cin.rdbuf();
      diff = os.str();
    } else {
      const fs::path df = diff_file;
      if (!fs::exists(df)) {
        std::cerr << "fcrlint: no such diff file: " << diff_file << '\n';
        return 2;
      }
      diff = read_file(df);
    }
    findings =
        fcrlint::filter_to_changed(findings, fcrlint::parse_unified_diff(diff));
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "fcrlint: cannot write " << sarif_path << '\n';
      return 2;
    }
    out << fcrlint::to_sarif(findings);
  }

  for (const fcrlint::Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  if (!quiet || !findings.empty()) {
    std::cout << "fcrlint: " << findings.size() << " finding(s) in "
              << inputs.size() << " file(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
