// fcrlint CLI — walks the tree and applies the rules in fcrlint_rules.hpp.
//
// Usage:
//   fcrlint [--root DIR] [--quiet] [PATH...]
//
// PATHs (default: src) are resolved relative to --root (default: the current
// directory) and scanned recursively for .hpp/.h/.cpp/.cc files. Findings are
// printed as file:line: [rule] message; exit status is nonzero iff any
// finding was reported. Registered as a CTest test over the whole tree.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_rules() {
  std::cout << "fcrlint rules:\n";
  for (const std::string_view r : fcrlint::kRuleNames) {
    std::cout << "  " << r << '\n';
  }
  std::cout << "suppress with: FCRLINT_ALLOW(<rule>): <reason>\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "fcrlint: --root needs an argument\n";
        return 2;
      }
      root = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fcrlint [--root DIR] [--quiet] [--list-rules] "
                   "[PATH...]\n";
      print_rules();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fcrlint: unknown option " << arg << '\n';
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths.push_back("src");

  std::vector<fcrlint::Finding> findings;
  std::size_t files_scanned = 0;
  for (const std::string& p : paths) {
    const fs::path base = root / p;
    if (!fs::exists(base)) {
      std::cerr << "fcrlint: no such path: " << base.string() << '\n';
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(base);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      ++files_scanned;
      const std::string rel =
          fs::relative(f, root).lexically_normal().generic_string();
      const std::vector<fcrlint::Finding> file_findings =
          fcrlint::lint_file(rel, read_file(f));
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const fcrlint::Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  if (!quiet || !findings.empty()) {
    std::cout << "fcrlint: " << findings.size() << " finding(s) in "
              << files_scanned << " file(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
