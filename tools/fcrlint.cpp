// fcrlint CLI — walks the tree and applies the rules in fcrlint_rules.hpp
// plus the v3 interprocedural model rules (fcrlint_model.hpp).
//
// Usage:
//   fcrlint [--root DIR] [--quiet] [--sarif FILE] [--cache FILE]
//           [--timings] [--stats-out FILE] [--fix]
//           [--diff-base REF | --diff-file FILE] [PATH...]
//
// PATHs (default: src) are resolved relative to --root (default: the current
// directory) and scanned recursively for .hpp/.h/.cpp/.cc files. The whole
// batch is linted together, so the cross-file analyses — include cycles and
// the interprocedural program model — see the full graph. Findings are
// printed as file:line: [rule] message; exit status is nonzero iff any
// finding was reported (after diff filtering, when enabled).
//
//   --sarif FILE      additionally write the findings as a SARIF 2.1.0 log
//                     (consumed by CI's upload-sarif step for inline PR
//                     annotations)
//   --cache FILE      persist per-file artifacts keyed by content hash;
//                     warm runs re-lex only changed files
//   --timings         print per-phase wall times and cache hit counts
//   --stats-out FILE  write a small JSON blob (phase times, cache hit rate)
//                     for CI archiving
//   --fix             apply the mechanical rewrites (pragma-once insertion,
//                     deprecated C header renames) in place, then lint the
//                     fixed contents; prints one line per rewritten file
//   --diff-base REF   report only findings on lines changed vs the git ref
//                     (runs `git diff -U0 --no-color REF` under --root)
//   --diff-file FILE  like --diff-base, but read a pre-computed unified diff
//                     from FILE ('-' for stdin); used by tests
//
// Analysis of cache-missed files runs in parallel on fcr::ThreadPool::
// global() when the batch is large enough to amortize the pool; results
// land in pre-sized slots indexed by file, so the output is bit-identical
// to the serial order (the same discipline the trial runner uses).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fcrlint_cache.hpp"
#include "fcrlint_diff.hpp"
#include "fcrlint_fix.hpp"
#include "fcrlint_rules.hpp"
#include "fcrlint_sarif.hpp"
#include "sim/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

/// Analyze batches below this size run serially: pool startup and task
/// dispatch would dominate the lexing they parallelize.
constexpr std::size_t kParallelThreshold = 8;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_rules() {
  std::cout << "fcrlint rules:\n";
  for (const fcrlint::RuleMeta& r : fcrlint::kRules) {
    std::cout << "  " << r.id << "\n      " << r.summary << '\n';
  }
  std::cout << "suppress with: FCRLINT_ALLOW(<rule>): <reason>\n";
}

/// --explain <rule>: the rule's one-line summary, its rationale, the
/// smallest violating program, and the sanctioned suppression form.
int explain(const std::string& rule) {
  const fcrlint::RuleExplanation* ex = fcrlint::explain_rule(rule);
  if (ex == nullptr || !fcrlint::is_known_rule(rule)) {
    std::cerr << "fcrlint: unknown rule '" << rule
              << "' (see --list-rules)\n";
    return 2;
  }
  for (const fcrlint::RuleMeta& r : fcrlint::kRules) {
    if (r.id == rule) {
      std::cout << rule << " — " << r.summary << "\n\n";
      break;
    }
  }
  std::cout << "why:\n  " << ex->rationale << "\n\n"
            << "minimal violation:\n"
            << ex->example << "\n\n"
            << "suppression (use sparingly, always with a reason):\n  "
            << ex->allow << '\n';
  return 0;
}

/// Serializes the lane-purity kernel certificates as kernel_manifest.json —
/// the worklist the SIMD-lanes PR consumes. Draw counts are per-lane
/// generator invocations per round; min < max marks a round-uniform gate.
std::string kernel_manifest_json(
    const std::vector<fcrlint::model::KernelRecord>& kernels) {
  using fcrlint::sarifdetail::json_escape;
  std::string s = "{\n  \"schema\": \"fcrlint-kernel-manifest/1\",\n";
  s += "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const fcrlint::model::KernelRecord& k = kernels[i];
    auto list = [](const std::vector<std::string>& v) {
      std::string out = "[";
      for (std::size_t j = 0; j < v.size(); ++j) {
        out += (j == 0 ? "" : ", ") + ("\"" + json_escape(v[j]) + "\"");
      }
      return out + "]";
    };
    s += "    {\n";
    s += "      \"kernel\": \"" + json_escape(k.qualified) + "\",\n";
    s += "      \"file\": \"" + json_escape(k.file) + "\",\n";
    s += "      \"line\": " + std::to_string(k.line) + ",\n";
    s += "      \"columns_read\": " + list(k.columns_read) + ",\n";
    s += "      \"columns_written\": " + list(k.columns_written) + ",\n";
    s += "      \"rng_draws_per_node\": { \"min\": " +
         std::to_string(k.draw_min) +
         ", \"max\": " + std::to_string(k.draw_max) + " },\n";
    s += "      \"pure\": " + std::string(k.pure ? "true" : "false") + ",\n";
    s += "      \"simd_eligible\": " +
         std::string(k.simd_eligible ? "true" : "false") + ",\n";
    s += "      \"reasons\": " + list(k.reasons) + "\n";
    s += i + 1 < kernels.size() ? "    },\n" : "    }\n";
  }
  s += "  ]\n}\n";
  return s;
}

/// Runs `git diff -U0 --no-color <ref>` under `root` and captures stdout.
/// Returns false (with a message on stderr) if git fails.
bool git_diff(const fs::path& root, const std::string& ref, std::string& out) {
  // The ref came from the command line; refuse shell metacharacters instead
  // of trying to quote them portably.
  for (const char c : ref) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '/' || c == '-' ||
                    c == '_' || c == '.' || c == '~' || c == '^' || c == '@';
    if (!ok) {
      std::cerr << "fcrlint: unsupported character in --diff-base ref\n";
      return false;
    }
  }
  const std::string cmd =
      "git -C '" + root.string() + "' diff -U0 --no-color " + ref;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::cerr << "fcrlint: failed to run git diff\n";
    return false;
  }
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    out.append(buf, got);
  }
  const int status = ::pclose(pipe);
  if (status != 0) {
    std::cerr << "fcrlint: git diff " << ref << " failed (status " << status
              << ")\n";
    return false;
  }
  return true;
}

/// Wall-clock phase timer (tools-only; the determinism rule scopes to src/).
class PhaseClock {
 public:
  void mark(const std::string& phase) {
    const auto now = std::chrono::steady_clock::now();
    if (!phases_.empty() || started_) {
      phases_.emplace_back(
          pending_,
          std::chrono::duration<double, std::milli>(now - last_).count());
    }
    pending_ = phase;
    last_ = now;
    started_ = true;
  }
  void finish() { mark(""); }
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }
  double total() const {
    double t = 0;
    for (const auto& [name, ms] : phases_) t += ms;
    return t;
  }

 private:
  std::vector<std::pair<std::string, double>> phases_;
  std::string pending_;
  std::chrono::steady_clock::time_point last_;
  bool started_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  bool quiet = false;
  bool timings = false;
  bool fix = false;
  std::string sarif_path;
  std::string cache_path;
  std::string stats_path;
  std::string diff_base;
  std::string diff_file;
  std::string manifest_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* opt) -> const char* {
      if (++i >= argc) {
        std::cerr << "fcrlint: " << opt << " needs an argument\n";
        return nullptr;
      }
      return argv[i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return 2;
      cache_path = v;
    } else if (arg == "--stats-out") {
      const char* v = value("--stats-out");
      if (v == nullptr) return 2;
      stats_path = v;
    } else if (arg == "--diff-base") {
      const char* v = value("--diff-base");
      if (v == nullptr) return 2;
      diff_base = v;
    } else if (arg == "--diff-file") {
      const char* v = value("--diff-file");
      if (v == nullptr) return 2;
      diff_file = v;
    } else if (arg == "--kernel-manifest") {
      const char* v = value("--kernel-manifest");
      if (v == nullptr) return 2;
      manifest_path = v;
    } else if (arg == "--explain") {
      const char* v = value("--explain");
      if (v == nullptr) return 2;
      return explain(v);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fcrlint [--root DIR] [--quiet] [--sarif FILE]\n"
                   "               [--cache FILE] [--timings] [--stats-out "
                   "FILE] [--fix]\n"
                   "               [--kernel-manifest FILE] [--explain "
                   "RULE]\n"
                   "               [--diff-base REF | --diff-file FILE]\n"
                   "               [--list-rules] [PATH...]\n";
      print_rules();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fcrlint: unknown option " << arg << '\n';
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (!diff_base.empty() && !diff_file.empty()) {
    std::cerr << "fcrlint: --diff-base and --diff-file are exclusive\n";
    return 2;
  }
  if (paths.empty()) paths.push_back("src");

  PhaseClock clock;
  clock.mark("walk");
  struct WalkedFile {
    std::string rel;
    fs::path abs;
  };
  std::vector<WalkedFile> walked;
  for (const std::string& p : paths) {
    const fs::path base = root / p;
    if (!fs::exists(base)) {
      std::cerr << "fcrlint: no such path: " << base.string() << '\n';
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(base)) {
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(base);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      walked.push_back(
          {fs::relative(f, root).lexically_normal().generic_string(), f});
    }
  }

  clock.mark("read");
  std::vector<fcrlint::FileInput> inputs;
  inputs.reserve(walked.size());
  for (const WalkedFile& w : walked) {
    inputs.push_back({w.rel, read_file(w.abs)});
  }

  std::size_t fixed_files = 0;
  std::size_t fix_edits = 0;
  if (fix) {
    clock.mark("fix");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      fcrlint::fix::FixOutcome fo =
          fcrlint::fix::apply_fixes(inputs[i].path, inputs[i].content);
      if (fo.edits == 0) continue;
      std::ofstream out(walked[i].abs, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "fcrlint: cannot rewrite " << walked[i].abs.string()
                  << '\n';
        return 2;
      }
      out << fo.content;
      std::cout << "fcrlint: fixed " << inputs[i].path << " (" << fo.edits
                << " edit(s))\n";
      inputs[i].content = std::move(fo.content);
      ++fixed_files;
      fix_edits += fo.edits;
    }
  }

  clock.mark("cache-load");
  fcrlint::cache::ArtifactCache cache;
  if (!cache_path.empty()) cache.load(cache_path);

  clock.mark("analyze");
  std::vector<fcrlint::FileArtifacts> artifacts(inputs.size());
  std::vector<std::uint64_t> hashes(inputs.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    hashes[i] = fcrlint::cache::fnv1a64(inputs[i].content);
    if (cache_path.empty()) {
      misses.push_back(i);
      continue;
    }
    const fcrlint::FileArtifacts* hit = cache.lookup(inputs[i].path, hashes[i]);
    if (hit != nullptr) {
      artifacts[i] = *hit;
    } else {
      misses.push_back(i);
    }
  }
  auto analyze_one = [&](std::size_t k) {
    const std::size_t i = misses[k];
    artifacts[i] =
        fcrlint::prepare_artifacts(inputs[i].path, inputs[i].content);
  };
  if (misses.size() >= kParallelThreshold) {
    fcr::ThreadPool::global().for_each(misses.size(), analyze_one);
  } else {
    for (std::size_t k = 0; k < misses.size(); ++k) analyze_one(k);
  }

  clock.mark("graph");
  fcrlint::TreeResult tree = fcrlint::finalize_tree_full(artifacts);
  std::vector<fcrlint::Finding>& findings = tree.findings;
  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path, std::ios::binary);
    if (!out) {
      std::cerr << "fcrlint: cannot write " << manifest_path << '\n';
      return 2;
    }
    out << kernel_manifest_json(tree.kernels);
  }

  clock.mark("cache-save");
  if (!cache_path.empty()) {
    for (const std::size_t i : misses) {
      cache.store(inputs[i].path, hashes[i], artifacts[i]);
    }
    std::set<std::string> present;
    for (const fcrlint::FileInput& in : inputs) present.insert(in.path);
    cache.prune([&](const std::string& p) { return present.count(p) != 0; });
    if (!cache.save(cache_path)) {
      std::cerr << "fcrlint: warning: could not write cache " << cache_path
                << '\n';
    }
  }

  clock.mark("diff");
  if (!diff_base.empty() || !diff_file.empty()) {
    std::string diff;
    if (!diff_base.empty()) {
      if (!git_diff(root, diff_base, diff)) return 2;
    } else if (diff_file == "-") {
      std::ostringstream os;
      os << std::cin.rdbuf();
      diff = os.str();
    } else {
      const fs::path df = diff_file;
      if (!fs::exists(df)) {
        std::cerr << "fcrlint: no such diff file: " << diff_file << '\n';
        return 2;
      }
      diff = read_file(df);
    }
    findings =
        fcrlint::filter_to_changed(findings, fcrlint::parse_unified_diff(diff));
  }

  clock.mark("sarif");
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "fcrlint: cannot write " << sarif_path << '\n';
      return 2;
    }
    out << fcrlint::to_sarif(findings);
  }
  clock.finish();

  const fcrlint::cache::CacheStats& cs = cache.stats();
  if (timings) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "fcrlint timings:";
    for (const auto& [phase, ms] : clock.phases()) {
      os << ' ' << phase << '=' << ms << "ms";
    }
    os << " total=" << clock.total() << "ms";
    if (!cache_path.empty()) {
      os << " cache-hits=" << cs.hits << " cache-misses=" << cs.misses;
    }
    std::cout << os.str() << '\n';
  }
  if (!stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::binary);
    if (!out) {
      std::cerr << "fcrlint: cannot write " << stats_path << '\n';
      return 2;
    }
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"files\": " << inputs.size()
        << ",\n  \"findings\": " << findings.size()
        << ",\n  \"cache_hits\": " << cs.hits
        << ",\n  \"cache_misses\": " << cs.misses << ",\n  \"cache_hit_rate\": "
        << (cs.hits + cs.misses == 0
                ? 0.0
                : static_cast<double>(cs.hits) /
                      static_cast<double>(cs.hits + cs.misses))
        << ",\n  \"fixed_files\": " << fixed_files
        << ",\n  \"fix_edits\": " << fix_edits << ",\n  \"phases_ms\": {";
    bool first = true;
    for (const auto& [phase, ms] : clock.phases()) {
      out << (first ? "" : ", ") << '"' << phase << "\": " << ms;
      first = false;
    }
    out << "},\n  \"total_ms\": " << clock.total() << "\n}\n";
  }

  for (const fcrlint::Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  if (!quiet || !findings.empty()) {
    std::cout << "fcrlint: " << findings.size() << " finding(s) in "
              << inputs.size() << " file(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
