// fcrlint artifact cache — content-hash keyed persistence of FileArtifacts.
//
// prepare_artifacts() is a pure function of (path, content), so its output
// can be reused across runs whenever the file bytes are unchanged. The cache
// stores, per path, the FNV-1a64 hash of the content plus the full artifact
// record (findings, allows, include edges, program model); a warm run skips
// lexing and rule execution entirely for unchanged files and only re-runs
// the cross-file analyses (cycles + interprocedural rules), which are cheap
// once the per-file models exist.
//
// Format: a line-oriented text file. Any deviation from the expected shape —
// wrong magic, wrong format revision, wrong rule count, malformed record —
// discards the whole cache; a stale or corrupt cache can only ever cost a
// cold run, never wrong findings. Saves go through a temp file + rename so
// a crashed run leaves the previous cache intact (same discipline as the
// campaign checkpoint writer).
//
//   fcrlintcache <kFormatRev> <kRules.size()> <hex-fingerprint>
//   = <hex-hash> <path>
//   F <line> <rule> <message>            per-file finding
//   A <line> <rule> <reason>             allow annotation
//   I <line> <inner>                     quoted include edge
//   P                                    artifact carries a program model
//   R <receiver>                         reserve()/clear() receiver
//   U <type>                             type name mentioned in the file
//   K <class> <base>...                  class decl with base last-names
//   G <class> <field> <mutex> <line>     FCR_GUARDED_BY field
//   D <line> <def> <virt> <qualified> <name> <class>   function (starts group)
//   L <lock>                             held/required lock of the last D
//   C <line> <receiver> <callee> <gate> <held-csv>   call site of the last D
//   M <kind> <line> <what>               allocation site of the last D
//   T <line> <head>                      throw site of the last D
//   S <kind> <line> <name>               Rng site of the last D
//   X <line> <qualified> <name> <receiver> <recv-type> <held-csv>  access
//   O <line> <write> <class> <column>    columnar column access of the last D
//   W <line> <gate>                      RNG draw site of the last D
//   H <line> <name>                      definite-init hazard of the last D
//   Y <line> <what>                      purity issue of the last D
//   Q <draw-min> <draw-max>              per-lane draw interval of the last D
//
// The header fingerprint hashes the enabled rule ids together with the
// format revisions of every analysis layer (core, CFG, dataflow, model,
// rules engine): toggling a rule or revising any layer changes the header,
// so a stale cache can never serve findings computed under different rules.
//
// Every string field is escaped (\\ \n \r \t and space -> \s) so records
// split on single spaces; empty fields survive the round trip. <held-csv>
// is the must-held lockset as ','-joined mutex names ('' when empty).
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_core.hpp"
#include "fcrlint_model.hpp"
#include "fcrlint_rules.hpp"

namespace fcrlint::cache {

/// Bump when the artifact schema or any per-file rule's behavior changes;
/// the rule count in the header catches catalogue growth automatically.
inline constexpr int kFormatRev = 2;

inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Fingerprint of the enabled-rule set and every analysis layer's format
/// revision. Part of the cache header: adding, removing, or renaming a
/// rule — or bumping kCoreRev / kCfgRev / kDataflowRev / kModelRev /
/// kRulesRev — invalidates every cached artifact at once.
inline std::uint64_t rules_fingerprint() {
  std::string key;
  key += "core=" + std::to_string(kCoreRev);
  key += ";cfg=" + std::to_string(cfg::kCfgRev);
  key += ";dataflow=" + std::to_string(dataflow::kDataflowRev);
  key += ";model=" + std::to_string(model::kModelRev);
  key += ";rules=" + std::to_string(kRulesRev);
  for (const RuleMeta& r : kRules) {
    key += ';';
    key += r.id;
  }
  return fnv1a64(key);
}

namespace cdetail {

inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case ' ': out += "\\s"; break;
      default: out += c;
    }
  }
  return out;
}

inline bool unescape(std::string_view s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 's': out += ' '; break;
      default: return false;
    }
  }
  return true;
}

/// Splits on every single space (no collapsing, so empty fields survive).
inline std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

inline bool parse_int(std::string_view s, int& out) {
  if (s.empty()) return false;
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1000000000L) return false;
  }
  out = static_cast<int>(v);
  return true;
}

inline bool parse_hex64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  out = 0;
  for (const char c : s) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  return true;
}

inline std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return s;
}

}  // namespace cdetail

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t loaded = 0;  ///< entries read from disk at startup
};

/// Content-hash keyed store of per-file artifacts.
class ArtifactCache {
 public:
  /// Loads the cache file. Returns false (with an empty cache) when the file
  /// is missing, has a stale header, or contains any malformed record.
  bool load(const std::string& file) {
    entries_.clear();
    std::ifstream in(file, std::ios::binary);
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) ||
        line != "fcrlintcache " + std::to_string(kFormatRev) + " " +
                    std::to_string(kRules.size()) + " " +
                    cdetail::hex64(rules_fingerprint())) {
      return false;
    }
    Entry* cur = nullptr;
    model::FunctionFacts* fn = nullptr;
    auto fail = [&]() {
      entries_.clear();
      return false;
    };
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::vector<std::string_view> f = cdetail::split(line);
      const std::string_view tag = f[0];
      auto str = [&](std::size_t i, std::string& out) {
        return i < f.size() && cdetail::unescape(f[i], out);
      };
      auto num = [&](std::size_t i, int& out) {
        return i < f.size() && cdetail::parse_int(f[i], out);
      };
      if (tag == "=") {
        std::uint64_t hash = 0;
        std::string path;
        if (f.size() != 3 || !cdetail::parse_hex64(f[1], hash) ||
            !str(2, path)) {
          return fail();
        }
        Entry& e = entries_[path];
        e.hash = hash;
        e.artifacts = FileArtifacts{};
        e.artifacts.path = path;
        cur = &e;
        fn = nullptr;
        continue;
      }
      if (cur == nullptr) return fail();
      FileArtifacts& a = cur->artifacts;
      if (tag == "F") {
        Finding fd;
        fd.file = a.path;
        if (f.size() != 4 || !num(1, fd.line) || !str(2, fd.rule) ||
            !str(3, fd.message)) {
          return fail();
        }
        a.findings.push_back(std::move(fd));
      } else if (tag == "A") {
        Allow al;
        if (f.size() != 4 || !num(1, al.line) || !str(2, al.rule) ||
            !str(3, al.reason)) {
          return fail();
        }
        a.allows.push_back(std::move(al));
      } else if (tag == "I") {
        IncludeEdge e;
        if (f.size() != 3 || !num(1, e.line) || !str(2, e.inner)) {
          return fail();
        }
        a.includes.push_back(std::move(e));
      } else if (tag == "P") {
        if (f.size() != 1) return fail();
        a.has_model = true;
      } else if (tag == "R") {
        std::string s;
        if (f.size() != 2 || !str(1, s)) return fail();
        a.model.reserved.push_back(std::move(s));
      } else if (tag == "U") {
        std::string s;
        if (f.size() != 2 || !str(1, s)) return fail();
        a.model.types_mentioned.push_back(std::move(s));
      } else if (tag == "K") {
        model::ClassDecl c;
        if (f.size() < 2 || !str(1, c.name)) return fail();
        for (std::size_t i = 2; i < f.size(); ++i) {
          std::string b;
          if (!str(i, b)) return fail();
          c.bases.push_back(std::move(b));
        }
        a.model.classes.push_back(std::move(c));
      } else if (tag == "G") {
        model::GuardedField g;
        if (f.size() != 5 || !str(1, g.cls) || !str(2, g.name) ||
            !str(3, g.mutex) || !num(4, g.line)) {
          return fail();
        }
        a.model.fields.push_back(std::move(g));
      } else if (tag == "D") {
        model::FunctionFacts ff;
        int def = 0;
        int virt = 0;
        if (f.size() != 7 || !num(1, ff.line) || !num(2, def) ||
            !num(3, virt) || !str(4, ff.qualified) || !str(5, ff.name) ||
            !str(6, ff.cls)) {
          return fail();
        }
        ff.is_definition = def != 0;
        ff.is_virtual = virt != 0;
        a.model.functions.push_back(std::move(ff));
        fn = &a.model.functions.back();
      } else if (tag == "L" || tag == "C" || tag == "M" || tag == "T" ||
                 tag == "S" || tag == "X" || tag == "O" || tag == "W" ||
                 tag == "H" || tag == "Y" || tag == "Q") {
        if (fn == nullptr) return fail();
        auto held_list = [&](std::size_t i,
                             std::vector<std::string>& out) {
          std::string csv;
          if (!str(i, csv)) return false;
          std::size_t start = 0;
          for (std::size_t p = 0; p <= csv.size(); ++p) {
            if (p == csv.size() || csv[p] == ',') {
              if (p > start) out.push_back(csv.substr(start, p - start));
              start = p + 1;
            }
          }
          return true;
        };
        if (tag == "L") {
          std::string s;
          if (f.size() != 2 || !str(1, s)) return fail();
          fn->locks.push_back(std::move(s));
        } else if (tag == "C") {
          model::CallSite c;
          if (f.size() != 6 || !num(1, c.line) || !str(2, c.receiver) ||
              !str(3, c.callee) || !num(4, c.gate) ||
              !held_list(5, c.held)) {
            return fail();
          }
          fn->calls.push_back(std::move(c));
        } else if (tag == "O") {
          model::ColAccess c;
          if (f.size() != 5 || !num(1, c.line) || !num(2, c.write) ||
              !num(3, c.index_class) || !str(4, c.column)) {
            return fail();
          }
          fn->cols.push_back(std::move(c));
        } else if (tag == "W") {
          model::DrawSite d;
          if (f.size() != 3 || !num(1, d.line) || !num(2, d.gate)) {
            return fail();
          }
          fn->draws.push_back(d);
        } else if (tag == "H") {
          model::InitHazard h;
          if (f.size() != 3 || !num(1, h.line) || !str(2, h.name)) {
            return fail();
          }
          fn->init_hazards.push_back(std::move(h));
        } else if (tag == "Y") {
          model::PurityIssue p;
          if (f.size() != 3 || !num(1, p.line) || !str(2, p.what)) {
            return fail();
          }
          fn->purity.push_back(std::move(p));
        } else if (tag == "Q") {
          if (f.size() != 3 || !num(1, fn->draw_min) ||
              !num(2, fn->draw_max)) {
            return fail();
          }
        } else if (tag == "M") {
          model::AllocSite m;
          if (f.size() != 4 || !num(1, m.kind) || !num(2, m.line) ||
              !str(3, m.what)) {
            return fail();
          }
          fn->allocs.push_back(std::move(m));
        } else if (tag == "T") {
          model::ThrowSite ts;
          if (f.size() != 3 || !num(1, ts.line) || !str(2, ts.head)) {
            return fail();
          }
          fn->throw_sites.push_back(std::move(ts));
        } else if (tag == "S") {
          model::RngSite r;
          if (f.size() != 4 || !num(1, r.kind) || !num(2, r.line) ||
              !str(3, r.name)) {
            return fail();
          }
          fn->rngs.push_back(std::move(r));
        } else {  // X
          model::Access x;
          int q = 0;
          if (f.size() != 7 || !num(1, x.line) || !num(2, q) ||
              !str(3, x.name) || !str(4, x.receiver) ||
              !str(5, x.recv_type) || !held_list(6, x.held)) {
            return fail();
          }
          x.qualified = q != 0;
          fn->accesses.push_back(std::move(x));
        }
      } else {
        return fail();
      }
    }
    stats_.loaded = entries_.size();
    return true;
  }

  /// Returns the cached artifacts for `path` when the stored hash matches.
  const FileArtifacts* lookup(const std::string& path, std::uint64_t hash) {
    const auto it = entries_.find(path);
    if (it == entries_.end() || it->second.hash != hash) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return &it->second.artifacts;
  }

  void store(const std::string& path, std::uint64_t hash,
             const FileArtifacts& artifacts) {
    Entry& e = entries_[path];
    e.hash = hash;
    e.artifacts = artifacts;
  }

  /// Drops entries for paths not in this run's file set, so deleted files do
  /// not accumulate forever.
  template <typename Pred>
  void prune(Pred&& keep) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      it = keep(it->first) ? std::next(it) : entries_.erase(it);
    }
  }

  /// Writes the cache atomically (temp file + rename). Returns false on any
  /// I/O failure; the previous cache file is left untouched in that case.
  bool save(const std::string& file) const {
    const std::string tmp = file + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out << "fcrlintcache " << kFormatRev << ' ' << kRules.size() << ' '
          << cdetail::hex64(rules_fingerprint()) << '\n';
      for (const auto& [path, e] : entries_) {
        const FileArtifacts& a = e.artifacts;
        out << "= " << cdetail::hex64(e.hash) << ' ' << cdetail::escape(path)
            << '\n';
        for (const Finding& fd : a.findings) {
          out << "F " << fd.line << ' ' << cdetail::escape(fd.rule) << ' '
              << cdetail::escape(fd.message) << '\n';
        }
        for (const Allow& al : a.allows) {
          out << "A " << al.line << ' ' << cdetail::escape(al.rule) << ' '
              << cdetail::escape(al.reason) << '\n';
        }
        for (const IncludeEdge& inc : a.includes) {
          out << "I " << inc.line << ' ' << cdetail::escape(inc.inner) << '\n';
        }
        if (!a.has_model) continue;
        out << "P\n";
        for (const std::string& r : a.model.reserved) {
          out << "R " << cdetail::escape(r) << '\n';
        }
        for (const std::string& u : a.model.types_mentioned) {
          out << "U " << cdetail::escape(u) << '\n';
        }
        for (const model::ClassDecl& c : a.model.classes) {
          out << "K " << cdetail::escape(c.name);
          for (const std::string& b : c.bases) out << ' ' << cdetail::escape(b);
          out << '\n';
        }
        for (const model::GuardedField& g : a.model.fields) {
          out << "G " << cdetail::escape(g.cls) << ' '
              << cdetail::escape(g.name) << ' ' << cdetail::escape(g.mutex)
              << ' ' << g.line << '\n';
        }
        for (const model::FunctionFacts& fn : a.model.functions) {
          auto held_csv = [](const std::vector<std::string>& held) {
            std::string csv;
            for (std::size_t i = 0; i < held.size(); ++i) {
              csv += (i == 0 ? "" : ",") + held[i];
            }
            return cdetail::escape(csv);
          };
          out << "D " << fn.line << ' ' << (fn.is_definition ? 1 : 0) << ' '
              << (fn.is_virtual ? 1 : 0) << ' '
              << cdetail::escape(fn.qualified) << ' '
              << cdetail::escape(fn.name) << ' ' << cdetail::escape(fn.cls)
              << '\n';
          for (const std::string& l : fn.locks) {
            out << "L " << cdetail::escape(l) << '\n';
          }
          for (const model::CallSite& c : fn.calls) {
            out << "C " << c.line << ' ' << cdetail::escape(c.receiver) << ' '
                << cdetail::escape(c.callee) << ' ' << c.gate << ' '
                << held_csv(c.held) << '\n';
          }
          for (const model::AllocSite& m : fn.allocs) {
            out << "M " << m.kind << ' ' << m.line << ' '
                << cdetail::escape(m.what) << '\n';
          }
          for (const model::ThrowSite& ts : fn.throw_sites) {
            out << "T " << ts.line << ' ' << cdetail::escape(ts.head) << '\n';
          }
          for (const model::RngSite& r : fn.rngs) {
            out << "S " << r.kind << ' ' << r.line << ' '
                << cdetail::escape(r.name) << '\n';
          }
          for (const model::Access& x : fn.accesses) {
            out << "X " << x.line << ' ' << (x.qualified ? 1 : 0) << ' '
                << cdetail::escape(x.name) << ' ' << cdetail::escape(x.receiver)
                << ' ' << cdetail::escape(x.recv_type) << ' '
                << held_csv(x.held) << '\n';
          }
          for (const model::ColAccess& c : fn.cols) {
            out << "O " << c.line << ' ' << c.write << ' ' << c.index_class
                << ' ' << cdetail::escape(c.column) << '\n';
          }
          for (const model::DrawSite& d : fn.draws) {
            out << "W " << d.line << ' ' << d.gate << '\n';
          }
          for (const model::InitHazard& h : fn.init_hazards) {
            out << "H " << h.line << ' ' << cdetail::escape(h.name) << '\n';
          }
          for (const model::PurityIssue& p : fn.purity) {
            out << "Y " << p.line << ' ' << cdetail::escape(p.what) << '\n';
          }
          if (fn.draw_min != 0 || fn.draw_max != 0) {
            out << "Q " << fn.draw_min << ' ' << fn.draw_max << '\n';
          }
        }
      }
      if (!out) {
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), file.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  const CacheStats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    FileArtifacts artifacts;
  };
  std::map<std::string, Entry> entries_;
  CacheStats stats_;
};

}  // namespace fcrlint::cache
