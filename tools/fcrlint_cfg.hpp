// fcrlint v4 — per-function control-flow graphs over the token stream.
//
// The v3 program model (fcrlint_model.hpp) sees function bodies as flat fact
// bags: a lock held anywhere covers the whole body, an initialization
// anywhere covers every read. That whole-extent view cannot certify the
// properties the columnar SIMD port needs — branch-invariant RNG draw
// counts, init-before-read on all paths, and per-site locksets — so v4
// builds a real CFG from the same significant/non-preprocessor token ranges
// the extractor already walks:
//
//   * blocks hold ordered events: code token spans plus lock acquire /
//     release markers (fcr::MutexLock is scoped — its release is emitted at
//     the close of the declaring compound and on every early exit that
//     leaves it);
//   * if / else and ternary chains become diamonds, while / for / range-for
//     loops get a head block with a back edge, do-while bodies precede
//     their condition (the body always runs once), switch lowers each
//     case/default label to a block with explicit fallthrough edges, and
//     return / throw / break / continue terminate their block with an edge
//     to the exit or the enclosing loop targets;
//   * every block records the stack of enclosing guards (if / ternary /
//     loop conditions, outermost first), which is how the lane-purity rule
//     classifies what a draw site is gated on;
//   * loops are indexed with their body token spans so analyses can ask for
//     the innermost loop enclosing a token and re-run a sub-CFG over just
//     that body (per-iteration draw counting).
//
// The builder is a pure function of a token range: no model types, no
// filesystem, never fails (malformed input degrades to a linear block — the
// right behaviour for a linter that must keep scanning). Consumers feed the
// result to the worklist solver in fcrlint_dataflow.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_core.hpp"
#include "fcrlint_lexer.hpp"

namespace fcrlint::cfg {

/// Bump when block structure, edge construction, or event emission changes;
/// feeds the cache fingerprint so cached facts can never go stale silently.
inline constexpr int kCfgRev = 1;

/// Half-open token index range [lo, hi) into the filtered token vector.
struct Span {
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool contains(std::size_t tok) const { return tok >= lo && tok < hi; }
  bool empty() const { return hi <= lo; }
};

/// One ordered element of a block: a code span, or a lock transition. The
/// lockset analysis replays events in order; span-only analyses skip the
/// lock kinds.
struct Event {
  enum Kind : int { kSpan = 0, kAcquire = 1, kRelease = 2 };
  int kind = kSpan;
  Span span;         ///< kSpan: the code tokens
  std::string lock;  ///< kAcquire / kRelease: the mutex name
  int line = 1;      ///< source line of the event's first token
};

/// An enclosing control condition. Blocks carry the id stack of every guard
/// that lexically dominates them, so a draw site can be classified by what
/// gates it (loop guards describe iteration, not branching, and are skipped
/// by gate taint).
struct Guard {
  enum Kind : int {
    kIf = 0,
    kTernary = 1,
    kWhile = 2,
    kFor = 3,
    kDoWhile = 4,
    kSwitch = 5,
    kRangeFor = 6,
  };
  Span cond;  ///< condition tokens (range expression for range-for)
  int kind = kIf;
  bool is_loop() const {
    return kind == kWhile || kind == kFor || kind == kDoWhile ||
           kind == kRangeFor;
  }
};

struct Block {
  std::vector<Event> events;
  std::vector<std::size_t> succs;
  std::vector<std::size_t> guards;  ///< enclosing guard ids, outermost first
};

/// A loop with its body extent, for innermost-loop queries and sub-CFG
/// re-builds over the body.
struct Loop {
  Span body;          ///< token span of the body statement
  Span cond;          ///< condition / range tokens
  int kind = Guard::kWhile;
  std::size_t guard = 0;  ///< index into Cfg::guard_table
};

struct Cfg {
  std::vector<Block> blocks;
  std::vector<Guard> guard_table;
  std::vector<Loop> loops;
  std::size_t entry = 0;
  std::size_t exit = 0;

  /// Block whose code spans contain `tok`; npos when the token fell between
  /// blocks (structural punctuation consumed by the builder).
  std::size_t block_of(std::size_t tok) const {
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      for (const Event& e : blocks[b].events) {
        if (e.kind == Event::kSpan && e.span.contains(tok)) return b;
      }
    }
    return npos;
  }

  /// Innermost loop whose body contains `tok` (npos when not in a loop).
  std::size_t innermost_loop(std::size_t tok) const {
    std::size_t best = npos;
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (!loops[i].body.contains(tok)) continue;
      if (best == npos || loops[i].body.lo >= loops[best].body.lo) best = i;
    }
    return best;
  }

  /// Innermost loop strictly enclosing loop `li` (npos at top level).
  std::size_t enclosing_loop(std::size_t li) const {
    std::size_t best = npos;
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (i == li) continue;
      if (loops[i].body.lo > loops[li].body.lo ||
          loops[i].body.hi < loops[li].body.hi) {
        continue;
      }
      if (best == npos || loops[i].body.lo >= loops[best].body.lo) best = i;
    }
    return best;
  }
};

namespace cfgdetail {

using fcrlint::detail::match_forward;
using fcrlint::detail::starts_with;

class Builder {
 public:
  explicit Builder(const std::vector<Token>& t) : t_(t) {}

  Cfg build(std::size_t lo, std::size_t hi) {
    g_ = Cfg{};
    g_.entry = new_block();
    g_.exit = new_block();
    cur_ = g_.entry;
    scopes_.push_back({});
    parse_stmts(lo, hi);
    close_scope();
    if (cur_ != npos) edge(cur_, g_.exit);
    return std::move(g_);
  }

 private:
  struct JumpCtx {
    std::size_t target = 0;
    std::size_t scope_depth = 0;  ///< scopes_ size at loop/switch entry
  };

  const std::vector<Token>& t_;
  Cfg g_;
  std::size_t cur_ = 0;  ///< npos after a terminator (dead region follows)
  std::vector<std::size_t> guard_stack_;
  std::vector<JumpCtx> break_ctx_;
  std::vector<JumpCtx> continue_ctx_;
  std::vector<std::vector<std::string>> scopes_;  ///< scoped locks per compound

  std::size_t new_block() {
    g_.blocks.push_back({});
    g_.blocks.back().guards = guard_stack_;
    return g_.blocks.size() - 1;
  }

  void edge(std::size_t a, std::size_t b) {
    for (const std::size_t s : g_.blocks[a].succs) {
      if (s == b) return;
    }
    g_.blocks[a].succs.push_back(b);
  }

  /// Current live block, reviving a dead (unreachable) region with a fresh
  /// predecessor-less block so dead code still gets scanned.
  std::size_t live() {
    if (cur_ == npos) cur_ = new_block();
    return cur_;
  }

  void push_event(Event e) { g_.blocks[live()].events.push_back(std::move(e)); }

  /// Emits release events for every scoped lock declared at scope depth
  /// `from_depth` or deeper (used by break/continue and compound close).
  void release_scopes(std::size_t from_depth, int line) {
    if (cur_ == npos) return;
    for (std::size_t d = scopes_.size(); d-- > from_depth;) {
      for (std::size_t i = scopes_[d].size(); i-- > 0;) {
        push_event({Event::kRelease, {}, scopes_[d][i], line});
      }
    }
  }

  void close_scope() {
    if (scopes_.empty()) return;
    if (cur_ != npos && !scopes_.back().empty()) {
      release_scopes(scopes_.size() - 1, 1);
    }
    scopes_.pop_back();
  }

  /// The mutex argument of a lock construction / assertion: the last
  /// identifier that is not `this` inside [b, e).
  std::string mutex_arg(std::size_t b, std::size_t e) const {
    std::string mx;
    for (std::size_t a = b; a < e; ++a) {
      if (t_[a].kind == TokKind::kIdent && t_[a].text != "this") {
        mx = t_[a].text;
      }
    }
    return mx;
  }

  /// Appends the code tokens [lo, hi) to the live block, splitting around
  /// lock transitions: scoped `MutexLock l(mu)` declarations (released at
  /// compound close), `.lock()` / `.unlock()` calls, and FCR_ASSERT-family
  /// held assertions.
  void append_code(std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    std::size_t s = lo;
    auto flush = [&](std::size_t upto) {
      if (s < upto) push_event({Event::kSpan, {s, upto}, {}, t_[s].line});
    };
    for (std::size_t m = lo; m < hi; ++m) {
      const Token& tok = t_[m];
      if (tok.kind != TokKind::kIdent) continue;
      if (tok.text == "MutexLock" && m + 2 < hi &&
          t_[m + 1].kind == TokKind::kIdent &&
          (t_[m + 2].punct("(") || t_[m + 2].punct("{"))) {
        const bool paren = t_[m + 2].punct("(");
        const std::size_t close =
            match_forward(t_, m + 2, paren ? "(" : "{", paren ? ")" : "}");
        if (close == npos || close >= hi) continue;
        const std::string mx = mutex_arg(m + 3, close);
        if (!mx.empty()) {
          flush(m);
          push_event({Event::kAcquire, {}, mx, tok.line});
          scopes_.back().push_back(mx);
          s = close + 1;
        }
        m = close;
        continue;
      }
      if ((tok.text == "lock" || tok.text == "unlock") && m > lo &&
          (t_[m - 1].punct(".") || t_[m - 1].punct("->")) && m + 1 < hi &&
          t_[m + 1].punct("(") && m >= 2 &&
          t_[m - 2].kind == TokKind::kIdent) {
        flush(m - 2);
        push_event({tok.text == "lock" ? Event::kAcquire : Event::kRelease,
                    {},
                    t_[m - 2].text,
                    tok.line});
        const std::size_t close = match_forward(t_, m + 1, "(", ")");
        s = close == npos || close >= hi ? hi : close + 1;
        m = s == hi ? hi - 1 : close;
        continue;
      }
      if (starts_with(tok.text, "FCR_ASSERT") && m + 1 < hi &&
          t_[m + 1].punct("(")) {
        const std::size_t close = match_forward(t_, m + 1, "(", ")");
        if (close == npos || close >= hi) continue;
        const std::string mx = mutex_arg(m + 2, close);
        if (!mx.empty()) {
          flush(m);
          push_event({Event::kAcquire, {}, mx, tok.line});
          s = close + 1;
        }
        m = close;
        continue;
      }
    }
    flush(hi);
  }

  /// Appends an expression, lowering top-level ternaries into diamonds so a
  /// draw on one arm is visibly conditional. Nested ternaries recurse.
  void append_expr(std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    // Find the first top-level '?' (ignoring parenthesized subexpressions).
    std::size_t q = npos;
    int depth = 0;
    for (std::size_t m = lo; m < hi; ++m) {
      const Token& tok = t_[m];
      if (tok.punct("(") || tok.punct("[") || tok.punct("{")) ++depth;
      else if (tok.punct(")") || tok.punct("]") || tok.punct("}")) --depth;
      else if (depth == 0 && tok.punct("?")) {
        q = m;
        break;
      }
    }
    if (q == npos) {
      append_code(lo, hi);
      return;
    }
    // Matching ':' of the ternary at q (skipping nested '?' ... ':').
    std::size_t colon = npos;
    int tern = 0;
    depth = 0;
    for (std::size_t m = q + 1; m < hi; ++m) {
      const Token& tok = t_[m];
      if (tok.punct("(") || tok.punct("[") || tok.punct("{")) ++depth;
      else if (tok.punct(")") || tok.punct("]") || tok.punct("}")) --depth;
      else if (depth == 0 && tok.punct("?")) ++tern;
      else if (depth == 0 && tok.punct(":")) {
        if (tern == 0) {
          colon = m;
          break;
        }
        --tern;
      }
    }
    if (colon == npos) {
      append_code(lo, hi);
      return;
    }
    append_code(lo, q);
    const std::size_t head = live();
    g_.guard_table.push_back({{lo, q}, Guard::kTernary});
    guard_stack_.push_back(g_.guard_table.size() - 1);
    cur_ = new_block();
    edge(head, cur_);
    append_expr(q + 1, colon);
    const std::size_t true_end = cur_;
    cur_ = new_block();
    edge(head, cur_);
    append_expr(colon + 1, hi);
    const std::size_t false_end = cur_;
    guard_stack_.pop_back();
    const std::size_t join = new_block();
    if (true_end != npos) edge(true_end, join);
    if (false_end != npos) edge(false_end, join);
    cur_ = join;
  }

  /// End index (one past ';') of a plain statement starting at `i`, with
  /// depth tracking so ';' inside parens (for-headers, lambdas) is skipped.
  std::size_t stmt_end(std::size_t i, std::size_t hi) const {
    int depth = 0;
    for (std::size_t m = i; m < hi; ++m) {
      const Token& tok = t_[m];
      if (tok.punct("(") || tok.punct("[") || tok.punct("{")) ++depth;
      else if (tok.punct(")") || tok.punct("]") || tok.punct("}")) --depth;
      else if (depth <= 0 && tok.punct(";")) return m + 1;
    }
    return hi;
  }

  void parse_stmts(std::size_t lo, std::size_t hi) {
    std::size_t i = lo;
    while (i < hi) i = parse_stmt(i, hi);
  }

  /// Parses one statement at `i`; returns the index to resume at.
  std::size_t parse_stmt(std::size_t i, std::size_t hi) {
    const Token& tok = t_[i];
    if (tok.punct(";")) return i + 1;
    if (tok.punct("{")) {
      const std::size_t close = match_forward(t_, i, "{", "}");
      if (close == npos || close > hi) {
        append_code(i, hi);
        return hi;
      }
      scopes_.push_back({});
      parse_stmts(i + 1, close);
      close_scope();
      return close + 1;
    }
    if (tok.ident("if")) return parse_if(i, hi);
    if (tok.ident("while")) return parse_while(i, hi);
    if (tok.ident("for")) return parse_for(i, hi);
    if (tok.ident("do")) return parse_do(i, hi);
    if (tok.ident("switch")) return parse_switch(i, hi);
    if (tok.ident("try")) return parse_try(i, hi);
    if (tok.ident("return") || tok.ident("throw") || tok.ident("co_return")) {
      const std::size_t end = stmt_end(i, hi);
      append_expr(i, end);
      if (cur_ != npos) edge(cur_, g_.exit);
      cur_ = npos;
      return end;
    }
    if (tok.ident("break") || tok.ident("continue")) {
      const bool is_break = tok.text == "break";
      const auto& ctx = is_break ? break_ctx_ : continue_ctx_;
      if (cur_ != npos) {
        if (!ctx.empty()) {
          release_scopes(ctx.back().scope_depth, tok.line);
          edge(cur_, ctx.back().target);
        } else {
          // Sub-CFG of a loop body analyzed in isolation: both jumps end
          // the current iteration, i.e. flow to the sub-graph's exit.
          edge(cur_, g_.exit);
        }
      }
      cur_ = npos;
      return stmt_end(i, hi);
    }
    const std::size_t end = stmt_end(i, hi);
    append_expr(i, end);
    return end;
  }

  /// The `( ... )` group after a keyword at `i`; fills [open, close] token
  /// indices. Returns false when the shape is off (degrade to plain code).
  bool paren_group(std::size_t i, std::size_t hi, std::size_t& open,
                   std::size_t& close) {
    open = i;
    while (open < hi && !t_[open].punct("(")) {
      if (t_[open].punct("{") || t_[open].punct(";")) return false;
      ++open;
    }
    if (open >= hi) return false;
    close = match_forward(t_, open, "(", ")");
    return close != npos && close < hi;
  }

  std::size_t parse_if(std::size_t i, std::size_t hi) {
    std::size_t open = 0, close = 0;
    if (!paren_group(i + 1, hi, open, close)) {
      append_code(i, stmt_end(i, hi));
      return stmt_end(i, hi);
    }
    const Span cond{open + 1, close};
    append_expr(cond.lo, cond.hi);  // condition evaluates unconditionally
    const std::size_t head = live();
    g_.guard_table.push_back({cond, Guard::kIf});
    const std::size_t guard_id = g_.guard_table.size() - 1;

    guard_stack_.push_back(guard_id);
    cur_ = new_block();
    edge(head, cur_);
    std::size_t resume = parse_stmt(close + 1, hi);
    const std::size_t then_end = cur_;
    std::size_t else_end = npos;
    bool has_else = false;
    if (resume < hi && t_[resume].ident("else")) {
      has_else = true;
      cur_ = new_block();
      edge(head, cur_);
      resume = parse_stmt(resume + 1, hi);
      else_end = cur_;
    }
    guard_stack_.pop_back();

    const std::size_t join = new_block();
    if (then_end != npos) edge(then_end, join);
    if (else_end != npos) edge(else_end, join);
    if (!has_else) edge(head, join);
    cur_ = join;
    return resume;
  }

  std::size_t parse_while(std::size_t i, std::size_t hi) {
    std::size_t open = 0, close = 0;
    if (!paren_group(i + 1, hi, open, close)) {
      append_code(i, stmt_end(i, hi));
      return stmt_end(i, hi);
    }
    const Span cond{open + 1, close};
    const std::size_t head = new_block();
    if (cur_ != npos) edge(cur_, head);
    cur_ = head;
    append_code(cond.lo, cond.hi);
    g_.guard_table.push_back({cond, Guard::kWhile});
    const std::size_t guard_id = g_.guard_table.size() - 1;
    const std::size_t after = new_block();
    edge(head, after);

    guard_stack_.push_back(guard_id);
    break_ctx_.push_back({after, scopes_.size()});
    continue_ctx_.push_back({head, scopes_.size()});
    cur_ = new_block();
    edge(head, cur_);
    const std::size_t body_lo = close + 1;
    const std::size_t resume = parse_stmt(body_lo, hi);
    if (cur_ != npos) edge(cur_, head);  // back edge
    break_ctx_.pop_back();
    continue_ctx_.pop_back();
    guard_stack_.pop_back();

    g_.loops.push_back({{body_lo, resume}, cond, Guard::kWhile, guard_id});
    cur_ = after;
    return resume;
  }

  std::size_t parse_for(std::size_t i, std::size_t hi) {
    std::size_t open = 0, close = 0;
    if (!paren_group(i + 1, hi, open, close)) {
      append_code(i, stmt_end(i, hi));
      return stmt_end(i, hi);
    }
    // Split the header on top-level ';' — none plus a top-level ':' means a
    // range-for.
    std::vector<std::size_t> semis;
    std::size_t range_colon = npos;
    int depth = 0;
    for (std::size_t m = open + 1; m < close; ++m) {
      const Token& tk = t_[m];
      if (tk.punct("(") || tk.punct("[") || tk.punct("{")) {
        ++depth;
      } else if (tk.punct(")") || tk.punct("]") || tk.punct("}")) {
        --depth;
      } else if (depth <= 0 && tk.punct(";")) {
        semis.push_back(m);
      } else if (depth <= 0 && tk.punct(":") && range_colon == npos) {
        range_colon = m;
      }
    }
    if (semis.empty() && range_colon != npos) {
      // Range-for: the range expression is the loop guard; per-element
      // iteration is modelled as head -> body -> head.
      const Span range{range_colon + 1, close};
      const std::size_t head = new_block();
      if (cur_ != npos) edge(cur_, head);
      cur_ = head;
      append_code(range.lo, range.hi);
      g_.guard_table.push_back({range, Guard::kRangeFor});
      const std::size_t guard_id = g_.guard_table.size() - 1;
      const std::size_t after = new_block();
      edge(head, after);
      guard_stack_.push_back(guard_id);
      break_ctx_.push_back({after, scopes_.size()});
      continue_ctx_.push_back({head, scopes_.size()});
      cur_ = new_block();
      edge(head, cur_);
      const std::size_t body_lo = close + 1;
      const std::size_t resume = parse_stmt(body_lo, hi);
      if (cur_ != npos) edge(cur_, head);
      break_ctx_.pop_back();
      continue_ctx_.pop_back();
      guard_stack_.pop_back();
      g_.loops.push_back({{body_lo, resume}, range, Guard::kRangeFor, guard_id});
      cur_ = after;
      return resume;
    }
    const std::size_t init_hi = semis.empty() ? close : semis[0];
    const Span cond{semis.empty() ? close : semis[0] + 1,
                    semis.size() < 2 ? close : semis[1]};
    const Span inc{semis.size() < 2 ? close : semis[1] + 1, close};

    append_expr(open + 1, init_hi);  // init statement runs once, outside
    const std::size_t head = new_block();
    if (cur_ != npos) edge(cur_, head);
    cur_ = head;
    append_code(cond.lo, cond.hi);
    g_.guard_table.push_back({cond, Guard::kFor});
    const std::size_t guard_id = g_.guard_table.size() - 1;
    const std::size_t after = new_block();
    edge(head, after);

    guard_stack_.push_back(guard_id);
    const std::size_t latch = new_block();  // increment block
    break_ctx_.push_back({after, scopes_.size()});
    continue_ctx_.push_back({latch, scopes_.size()});
    cur_ = new_block();
    edge(head, cur_);
    const std::size_t body_lo = close + 1;
    const std::size_t resume = parse_stmt(body_lo, hi);
    if (cur_ != npos) edge(cur_, latch);
    cur_ = latch;
    append_code(inc.lo, inc.hi);
    edge(latch, head);  // back edge
    break_ctx_.pop_back();
    continue_ctx_.pop_back();
    guard_stack_.pop_back();

    g_.loops.push_back({{body_lo, resume}, cond, Guard::kFor, guard_id});
    cur_ = after;
    return resume;
  }

  std::size_t parse_do(std::size_t i, std::size_t hi) {
    const std::size_t body_lo = i + 1;
    const std::size_t pre = cur_;
    const std::size_t body = new_block();
    if (pre != npos) edge(pre, body);
    const std::size_t cond_blk = new_block();
    const std::size_t after = new_block();

    // The guard is registered before the body parses so nested blocks carry
    // it; its condition span is patched in once `while (...)` is found.
    g_.guard_table.push_back({{0, 0}, Guard::kDoWhile});
    const std::size_t guard_id = g_.guard_table.size() - 1;
    guard_stack_.push_back(guard_id);
    break_ctx_.push_back({after, scopes_.size()});
    continue_ctx_.push_back({cond_blk, scopes_.size()});
    cur_ = body;
    std::size_t resume = parse_stmt(body_lo, hi);
    if (cur_ != npos) edge(cur_, cond_blk);
    break_ctx_.pop_back();
    continue_ctx_.pop_back();
    guard_stack_.pop_back();
    const std::size_t body_hi = resume;

    Span cond{0, 0};
    if (resume < hi && t_[resume].ident("while")) {
      std::size_t open = 0, close = 0;
      if (paren_group(resume + 1, hi, open, close)) {
        cond = {open + 1, close};
        resume = close + 1;
        if (resume < hi && t_[resume].punct(";")) ++resume;
      } else {
        resume = stmt_end(resume, hi);
      }
    }
    g_.guard_table[guard_id].cond = cond;
    cur_ = cond_blk;
    append_code(cond.lo, cond.hi);
    edge(cond_blk, body);  // back edge: the body runs again
    edge(cond_blk, after);
    g_.loops.push_back({{body_lo, body_hi}, cond, Guard::kDoWhile, guard_id});
    cur_ = after;
    return resume;
  }

  std::size_t parse_switch(std::size_t i, std::size_t hi) {
    std::size_t open = 0, close = 0;
    if (!paren_group(i + 1, hi, open, close)) {
      append_code(i, stmt_end(i, hi));
      return stmt_end(i, hi);
    }
    std::size_t body_open = close + 1;
    if (body_open >= hi || !t_[body_open].punct("{")) {
      append_code(i, stmt_end(i, hi));
      return stmt_end(i, hi);
    }
    const std::size_t body_close = match_forward(t_, body_open, "{", "}");
    if (body_close == npos || body_close > hi) {
      append_code(i, hi);
      return hi;
    }
    const Span cond{open + 1, close};
    append_expr(cond.lo, cond.hi);
    const std::size_t head = live();
    const std::size_t after = new_block();
    g_.guard_table.push_back({cond, Guard::kSwitch});
    const std::size_t guard_id = g_.guard_table.size() - 1;

    guard_stack_.push_back(guard_id);
    break_ctx_.push_back({after, scopes_.size()});
    scopes_.push_back({});
    bool saw_default = false;
    cur_ = npos;  // nothing runs before the first label
    std::size_t m = body_open + 1;
    while (m < body_close) {
      const Token& tk = t_[m];
      if (tk.ident("case") || tk.ident("default")) {
        if (tk.text == "default") saw_default = true;
        // Label extends to the first top-level ':' (``::`` is one token, so
        // a lone ':' is unambiguous).
        std::size_t colon = m + 1;
        int depth = 0;
        while (colon < body_close) {
          const Token& ct = t_[colon];
          if (ct.punct("(") || ct.punct("[") || ct.punct("{")) ++depth;
          else if (ct.punct(")") || ct.punct("]") || ct.punct("}")) --depth;
          else if (depth == 0 && ct.punct(":")) break;
          ++colon;
        }
        const std::size_t fall_from = cur_;
        cur_ = new_block();
        edge(head, cur_);
        if (fall_from != npos) edge(fall_from, cur_);  // fallthrough
        m = colon + 1;
        continue;
      }
      m = parse_stmt(m, body_close);
    }
    close_scope();
    break_ctx_.pop_back();
    guard_stack_.pop_back();
    if (cur_ != npos) edge(cur_, after);
    if (!saw_default) edge(head, after);
    cur_ = after;
    return body_close + 1;
  }

  std::size_t parse_try(std::size_t i, std::size_t hi) {
    std::size_t body_open = i + 1;
    while (body_open < hi && !t_[body_open].punct("{")) ++body_open;
    if (body_open >= hi) return hi;
    const std::size_t pre = live();
    const std::size_t after = new_block();
    cur_ = new_block();
    edge(pre, cur_);
    std::size_t resume = parse_stmt(body_open, hi);
    if (cur_ != npos) edge(cur_, after);
    while (resume < hi && t_[resume].ident("catch")) {
      std::size_t open = 0, close = 0;
      if (!paren_group(resume + 1, hi, open, close)) break;
      // The exception may fire before any try-body fact was established, so
      // the handler joins from the pre-try state (conservative for must-
      // analyses) — and from the exit-bound throw edges implicitly.
      cur_ = new_block();
      edge(pre, cur_);
      resume = parse_stmt(close + 1, hi);
      if (cur_ != npos) edge(cur_, after);
    }
    cur_ = after;
    return resume;
  }
};

}  // namespace cfgdetail

/// Builds the CFG for the statement list in token range [lo, hi) of `t`
/// (significant, non-preprocessor tokens — the same filtered stream the
/// model extractor walks). Pure; never fails.
inline Cfg build_cfg(const std::vector<Token>& t, std::size_t lo,
                     std::size_t hi) {
  return cfgdetail::Builder(t).build(lo, hi);
}

}  // namespace fcrlint::cfg
