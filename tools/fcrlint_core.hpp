// fcrlint core vocabulary — findings, the rule catalogue, and allow-
// annotation suppression parsing.
//
// Split out of fcrlint_rules.hpp in v3 so the interprocedural program model
// (fcrlint_model.hpp) and the per-file rule engine (fcrlint_rules.hpp) can
// share these types without a dependency cycle:
//
//   fcrlint_lexer.hpp   tokens
//   fcrlint_core.hpp    Finding / FileInput / kRules / Allow   (this file)
//   fcrlint_model.hpp   cross-TU program model + interprocedural rules
//   fcrlint_rules.hpp   per-file rules + lint_file/lint_tree drivers
//   fcrlint_cache.hpp   content-hash keyed artifact cache
//   fcrlint_fix.hpp     mechanical --fix rewrites
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_lexer.hpp"

namespace fcrlint {

struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// One file handed to the engine: repo-relative path with '/' separators
/// (e.g. "src/sinr/channel.cpp") plus its full contents.
struct FileInput {
  std::string path;
  std::string content;
};

/// Rule catalogue: ids plus the one-line summaries used by --list-rules and
/// the SARIF rules array.
struct RuleMeta {
  std::string_view id;
  std::string_view summary;
};

inline constexpr std::array<RuleMeta, 16> kRules = {{
    {"determinism",
     "entropy and wall-clock sources are banned in src/ (outside "
     "src/util/rng.*); all randomness flows through the seeded fcr::Rng"},
    {"sinr-float",
     "float is banned under src/sinr/: single-precision rounding flips "
     "feasibility verdicts near the decodability threshold beta"},
    {"ensure-arg",
     "every public-API .cpp in src/ validates arguments with FCR_ENSURE_ARG "
     "or carries a reasoned allow annotation"},
    {"pragma-once", "every header carries #pragma once"},
    {"include-hygiene",
     "no parent-relative (\"../\") includes, no <bits/...>, no deprecated C "
     "headers (<math.h> -> <cmath>)"},
    {"allow-syntax",
     "FCRLINT_ALLOW annotations must name a known rule and give a non-empty "
     "reason"},
    {"layering",
     "src/ includes must respect the layer order util -> stats -> geom -> "
     "radio -> deploy -> sinr -> sim -> core -> lowerbound -> algorithms -> "
     "ext, with no upward edges and no include cycles"},
    {"fp-accumulate",
     "floating-point reductions in src/sinr/ and src/sim/ must use "
     "fcr::pairwise_sum (src/sinr/accumulate.hpp), not std::accumulate or "
     "raw += loops, to keep serial/batch results bit-identical"},
    {"lock-discipline",
     "concurrency primitives in src/ use the thread-safety-annotated "
     "fcr::Mutex / fcr::CondVar / fcr::MutexLock "
     "(util/thread_annotations.hpp), and every fcr::Mutex is referenced by "
     "an annotation"},
    {"rng-flow",
     "fcr::Rng streams must not be copied out of references (use split()) "
     "or captured by value in lambdas; both duplicate randomness and break "
     "replay"},
    {"workspace-reset",
     "member containers of src/sim/workspace.* that are appended to must "
     "also be reset (clear/assign/resize) somewhere in the same file — the "
     "workspace is reused across executions, so an append-only member "
     "leaks one run's state into the next"},
    {"error-discipline",
     "catch handlers in src/ must rethrow, wrap into fcr::Error, or record "
     "a TrialFailure — a silently swallowed exception erases a faulted "
     "trial's provenance"},
    {"lockset",
     "interprocedural: reads/writes of an FCR_GUARDED_BY(m) member are "
     "flagged unless the function or some caller on every visible path "
     "holds m (MutexLock) or requires it (FCR_REQUIRES)"},
    {"rng-lineage",
     "interprocedural: every Rng constructed inside the execution closure "
     "must derive from a split() chain; ambient or default-seeded streams "
     "and seed roots inside the hot closure break trial replay"},
    {"hot-path-alloc",
     "interprocedural: functions reachable from ExecutionWorkspace::"
     "run_rounds or run_rounds_columnar (the steady-state round loops) "
     "must not allocate — no new, make_unique/make_shared, sized local "
     "containers, or growth of never-reserved containers"},
    {"error-provenance",
     "interprocedural: throw sites reachable from ThreadPool task bodies "
     "(for_each callers) must construct fcr::Error, not bare std:: "
     "exceptions, so faults keep their trial provenance"},
}};

inline bool is_known_rule(std::string_view rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleMeta& r) { return r.id == rule; });
}

namespace detail {

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

inline bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Finds the matching closer for the opener at `open` (which must hold the
/// `open_text` punct). Returns npos if unbalanced.
inline std::size_t match_forward(const std::vector<Token>& toks,
                                 std::size_t open, std::string_view open_text,
                                 std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].punct(open_text)) ++depth;
    else if (toks[i].punct(close_text) && --depth == 0) return i;
  }
  return npos;
}

/// Finds the matching opener for the closer at `close`. Returns npos if
/// unbalanced.
inline std::size_t match_backward(const std::vector<Token>& toks,
                                  std::size_t close, std::string_view open_text,
                                  std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].punct(close_text)) ++depth;
    else if (toks[i].punct(open_text) && --depth == 0) return i;
  }
  return npos;
}

}  // namespace detail

/// A parsed allow annotation (rule suppression with a documented reason).
struct Allow {
  int line = 1;
  std::string rule;
  std::string reason;
};

/// Extracts all allow annotations from the comment tokens; malformed ones
/// (unknown rule, missing reason) become allow-syntax findings. Markers in
/// string literals never reach this function — strings are distinct tokens.
inline std::vector<Allow> parse_allows(const std::vector<Token>& toks,
                                       const std::string& file,
                                       std::vector<Finding>& out) {
  static constexpr std::string_view kMarker = "FCRLINT_ALLOW";
  std::vector<Allow> allows;
  for (const Token& tok : toks) {
    if (!tok.comment()) continue;
    const std::string_view text = tok.text;
    for (std::size_t pos = text.find(kMarker); pos != std::string_view::npos;
         pos = text.find(kMarker, pos + kMarker.size())) {
      const int line =
          tok.line + static_cast<int>(
                         std::count(text.begin(),
                                    text.begin() + static_cast<std::ptrdiff_t>(pos),
                                    '\n'));
      std::size_t i = pos + kMarker.size();
      auto bad = [&](const std::string& why) {
        out.push_back({file, line, "allow-syntax",
                       "malformed FCRLINT_ALLOW annotation: " + why +
                           " — expected FCRLINT_ALLOW(<rule>): <reason>"});
      };
      if (i >= text.size() || text[i] != '(') {
        bad("missing '(<rule>)'");
        continue;
      }
      const std::size_t close = text.find(')', i);
      const std::size_t eol = text.find('\n', i);
      if (close == std::string_view::npos ||
          (eol != std::string_view::npos && close > eol)) {
        bad("missing ')'");
        continue;
      }
      const std::string rule(text.substr(i + 1, close - i - 1));
      if (!is_known_rule(rule)) {
        bad("unknown rule '" + rule + "'");
        continue;
      }
      i = close + 1;
      while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
      if (i >= text.size() || text[i] != ':') {
        bad("missing ': <reason>'");
        continue;
      }
      ++i;
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = text.size();
      std::string reason(text.substr(i, end - i));
      // A one-line block comment runs the reason into the closing marker;
      // strip the trailing */ so block-comment annotations parse cleanly.
      if (tok.kind == TokKind::kBlockComment) {
        const std::size_t trail = reason.rfind("*/");
        if (trail != std::string::npos) reason.erase(trail);
      }
      const std::size_t first = reason.find_first_not_of(" \t");
      const std::size_t last = reason.find_last_not_of(" \t\r");
      reason = first == std::string::npos
                   ? std::string{}
                   : reason.substr(first, last - first + 1);
      if (reason.empty()) {
        bad("empty reason");
        continue;
      }
      allows.push_back({line, rule, reason});
    }
  }
  return allows;
}

inline bool allowed_on_line(const std::vector<Allow>& allows,
                            std::string_view rule, int line) {
  return std::any_of(allows.begin(), allows.end(), [&](const Allow& a) {
    return a.rule == rule && (a.line == line || a.line == line - 1);
  });
}

inline bool allowed_anywhere(const std::vector<Allow>& allows,
                             std::string_view rule) {
  return std::any_of(allows.begin(), allows.end(),
                     [&](const Allow& a) { return a.rule == rule; });
}

}  // namespace fcrlint
