// fcrlint core vocabulary — findings, the rule catalogue, and allow-
// annotation suppression parsing.
//
// Split out of fcrlint_rules.hpp in v3 so the interprocedural program model
// (fcrlint_model.hpp) and the per-file rule engine (fcrlint_rules.hpp) can
// share these types without a dependency cycle:
//
//   fcrlint_lexer.hpp   tokens
//   fcrlint_core.hpp    Finding / FileInput / kRules / Allow   (this file)
//   fcrlint_model.hpp   cross-TU program model + interprocedural rules
//   fcrlint_rules.hpp   per-file rules + lint_file/lint_tree drivers
//   fcrlint_cache.hpp   content-hash keyed artifact cache
//   fcrlint_fix.hpp     mechanical --fix rewrites
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_lexer.hpp"

namespace fcrlint {

struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// One file handed to the engine: repo-relative path with '/' separators
/// (e.g. "src/sinr/channel.cpp") plus its full contents.
struct FileInput {
  std::string path;
  std::string content;
};

/// Rule catalogue: ids plus the one-line summaries used by --list-rules and
/// the SARIF rules array.
struct RuleMeta {
  std::string_view id;
  std::string_view summary;
};

/// Bump when the finding/allow vocabulary or rule catalogue semantics
/// change; feeds the cache fingerprint.
inline constexpr int kCoreRev = 2;

inline constexpr std::array<RuleMeta, 19> kRules = {{
    {"determinism",
     "entropy and wall-clock sources are banned in src/ (outside "
     "src/util/rng.*); all randomness flows through the seeded fcr::Rng"},
    {"sinr-float",
     "float is banned under src/sinr/: single-precision rounding flips "
     "feasibility verdicts near the decodability threshold beta"},
    {"ensure-arg",
     "every public-API .cpp in src/ validates arguments with FCR_ENSURE_ARG "
     "or carries a reasoned allow annotation"},
    {"pragma-once", "every header carries #pragma once"},
    {"include-hygiene",
     "no parent-relative (\"../\") includes, no <bits/...>, no deprecated C "
     "headers (<math.h> -> <cmath>)"},
    {"allow-syntax",
     "FCRLINT_ALLOW annotations must name a known rule and give a non-empty "
     "reason"},
    {"layering",
     "src/ includes must respect the layer order util -> stats -> geom -> "
     "radio -> deploy -> sinr -> sim -> core -> lowerbound -> algorithms -> "
     "ext, with no upward edges and no include cycles"},
    {"fp-accumulate",
     "floating-point reductions in src/sinr/ and src/sim/ must use "
     "fcr::pairwise_sum (src/sinr/accumulate.hpp), not std::accumulate or "
     "raw += loops, to keep serial/batch results bit-identical"},
    {"lock-discipline",
     "concurrency primitives in src/ use the thread-safety-annotated "
     "fcr::Mutex / fcr::CondVar / fcr::MutexLock "
     "(util/thread_annotations.hpp), and every fcr::Mutex is referenced by "
     "an annotation"},
    {"rng-flow",
     "fcr::Rng streams must not be copied out of references (use split()) "
     "or captured by value in lambdas; both duplicate randomness and break "
     "replay"},
    {"workspace-reset",
     "member containers of src/sim/workspace.* that are appended to must "
     "also be reset (clear/assign/resize) somewhere in the same file — the "
     "workspace is reused across executions, so an append-only member "
     "leaks one run's state into the next"},
    {"error-discipline",
     "catch handlers in src/ must rethrow, wrap into fcr::Error, or record "
     "a TrialFailure — a silently swallowed exception erases a faulted "
     "trial's provenance"},
    {"lockset",
     "interprocedural: reads/writes of an FCR_GUARDED_BY(m) member are "
     "flagged unless the function or some caller on every visible path "
     "holds m (MutexLock) or requires it (FCR_REQUIRES)"},
    {"rng-lineage",
     "interprocedural: every Rng constructed inside the execution closure "
     "must derive from a split() chain; ambient or default-seeded streams "
     "and seed roots inside the hot closure break trial replay"},
    {"hot-path-alloc",
     "interprocedural: functions reachable from ExecutionWorkspace::"
     "run_rounds or run_rounds_columnar (the steady-state round loops) "
     "must not allocate — no new, make_unique/make_shared, sized local "
     "containers, or growth of never-reserved containers"},
    {"error-provenance",
     "interprocedural: throw sites reachable from ThreadPool task bodies "
     "(for_each callers) must construct fcr::Error, not bare std:: "
     "exceptions, so faults keep their trial provenance"},
    {"lane-purity",
     "dataflow: every ColumnarAlgorithm::columnar_decide override (and its "
     "transitive callees) must touch element columns only at the current "
     "lane, word columns only at the current word, take no locks, reach no "
     "virtual calls, and draw a path-invariant number of per-lane RNG "
     "values — the certificate SIMD lane batching depends on (emitted to "
     "kernel_manifest.json)"},
    {"definite-init",
     "dataflow: a container subscripted or back()/front()/at()-read in a "
     "function that sizes it (resize/assign/reserve) on only SOME CFG "
     "paths to the read — cold paths reading never-initialized columns"},
    {"lockset-path",
     "dataflow: branch-aware lockset — an FCR_GUARDED_BY(m) member access "
     "is clean only when m is in the must-held set at the access itself "
     "(scoped MutexLock extents and early unlocks accounted for) or the "
     "function is reached from a call site that provably holds m"},
}};

inline bool is_known_rule(std::string_view rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleMeta& r) { return r.id == rule; });
}

namespace detail {

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

inline bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Finds the matching closer for the opener at `open` (which must hold the
/// `open_text` punct). Returns npos if unbalanced.
inline std::size_t match_forward(const std::vector<Token>& toks,
                                 std::size_t open, std::string_view open_text,
                                 std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].punct(open_text)) ++depth;
    else if (toks[i].punct(close_text) && --depth == 0) return i;
  }
  return npos;
}

/// Finds the matching opener for the closer at `close`. Returns npos if
/// unbalanced.
inline std::size_t match_backward(const std::vector<Token>& toks,
                                  std::size_t close, std::string_view open_text,
                                  std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].punct(close_text)) ++depth;
    else if (toks[i].punct(open_text) && --depth == 0) return i;
  }
  return npos;
}

}  // namespace detail

/// A parsed allow annotation (rule suppression with a documented reason).
struct Allow {
  int line = 1;
  std::string rule;
  std::string reason;
};

/// Extracts all allow annotations from the comment tokens; malformed ones
/// (unknown rule, missing reason) become allow-syntax findings. Markers in
/// string literals never reach this function — strings are distinct tokens.
inline std::vector<Allow> parse_allows(const std::vector<Token>& toks,
                                       const std::string& file,
                                       std::vector<Finding>& out) {
  static constexpr std::string_view kMarker = "FCRLINT_ALLOW";
  std::vector<Allow> allows;
  for (const Token& tok : toks) {
    if (!tok.comment()) continue;
    const std::string_view text = tok.text;
    for (std::size_t pos = text.find(kMarker); pos != std::string_view::npos;
         pos = text.find(kMarker, pos + kMarker.size())) {
      const int line =
          tok.line + static_cast<int>(
                         std::count(text.begin(),
                                    text.begin() + static_cast<std::ptrdiff_t>(pos),
                                    '\n'));
      std::size_t i = pos + kMarker.size();
      auto bad = [&](const std::string& why) {
        out.push_back({file, line, "allow-syntax",
                       "malformed FCRLINT_ALLOW annotation: " + why +
                           " — expected FCRLINT_ALLOW(<rule>): <reason>"});
      };
      if (i >= text.size() || text[i] != '(') {
        bad("missing '(<rule>)'");
        continue;
      }
      const std::size_t close = text.find(')', i);
      const std::size_t eol = text.find('\n', i);
      if (close == std::string_view::npos ||
          (eol != std::string_view::npos && close > eol)) {
        bad("missing ')'");
        continue;
      }
      const std::string rule(text.substr(i + 1, close - i - 1));
      if (!is_known_rule(rule)) {
        bad("unknown rule '" + rule + "'");
        continue;
      }
      i = close + 1;
      while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
      if (i >= text.size() || text[i] != ':') {
        bad("missing ': <reason>'");
        continue;
      }
      ++i;
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = text.size();
      std::string reason(text.substr(i, end - i));
      // A one-line block comment runs the reason into the closing marker;
      // strip the trailing */ so block-comment annotations parse cleanly.
      if (tok.kind == TokKind::kBlockComment) {
        const std::size_t trail = reason.rfind("*/");
        if (trail != std::string::npos) reason.erase(trail);
      }
      const std::size_t first = reason.find_first_not_of(" \t");
      const std::size_t last = reason.find_last_not_of(" \t\r");
      reason = first == std::string::npos
                   ? std::string{}
                   : reason.substr(first, last - first + 1);
      if (reason.empty()) {
        bad("empty reason");
        continue;
      }
      allows.push_back({line, rule, reason});
    }
  }
  return allows;
}

inline bool allowed_on_line(const std::vector<Allow>& allows,
                            std::string_view rule, int line) {
  return std::any_of(allows.begin(), allows.end(), [&](const Allow& a) {
    return a.rule == rule && (a.line == line || a.line == line - 1);
  });
}

inline bool allowed_anywhere(const std::vector<Allow>& allows,
                             std::string_view rule) {
  return std::any_of(allows.begin(), allows.end(),
                     [&](const Allow& a) { return a.rule == rule; });
}

/// --explain payload: why the rule exists, the smallest program it fires
/// on, and the sanctioned suppression form (always an allow annotation
/// with a reasoned justification on the finding line or the line above).
struct RuleExplanation {
  std::string_view rationale;
  std::string_view example;
  std::string_view allow;
};

/// Returns the explanation for `rule`, or nullptr for unknown ids. The
/// catalogue and this table are kept in lockstep (asserted by the CLI
/// test); the summaries in kRules stay the one-line form.
inline const RuleExplanation* explain_rule(std::string_view rule) {
  struct Entry {
    std::string_view id;
    RuleExplanation ex;
  };
  static constexpr std::array<Entry, 19> kTable = {{
      {"determinism",
       {"Reproducibility is the repo's core contract: every trial must "
        "replay bit-identically from its seed. Ambient entropy "
        "(std::random_device, time(), chrono clocks) silently forks runs.",
        "  auto seed = std::chrono::steady_clock::now();  // wall clock",
        "// FCRLINT_ALLOW(determinism): <why this wall-clock read cannot "
        "affect simulation results>"}},
      {"sinr-float",
       {"Feasibility verdicts compare SINR against the threshold beta; "
        "float's 24-bit mantissa flips verdicts near the boundary, and a "
        "flipped bit invalidates a whole campaign.",
        "  float sinr = signal / interference;  // in src/sinr/",
        "// FCRLINT_ALLOW(sinr-float): <why single precision is safe here>"}},
      {"ensure-arg",
       {"Public entry points validate inputs with FCR_ENSURE_ARG so a bad "
        "config fails loudly with provenance instead of corrupting a sweep.",
        "  RunResult run(Config c) { return run_impl(c); }  // no check",
        "// FCRLINT_ALLOW(ensure-arg): <why this TU has no checkable "
        "public arguments>"}},
      {"pragma-once",
       {"Headers without an include guard break unity and module builds "
        "the moment two TUs disagree.",
        "  // header file with no #pragma once",
        "// FCRLINT_ALLOW(pragma-once): <why this header is special>"}},
      {"include-hygiene",
       {"Parent-relative includes bypass the layer map, <bits/...> is not "
        "portable, and C headers pollute the global namespace.",
        "  #include \"../sim/engine.hpp\"",
        "// FCRLINT_ALLOW(include-hygiene): <why this include is needed>"}},
      {"allow-syntax",
       {"A suppression without a known rule and a reason is a silent hole: "
        "nobody can audit why the finding was waived.",
        "  // FCRLINT_ALLOW(made-up-rule)",
        "(not suppressible — fix the annotation instead)"}},
      {"layering",
       {"The dependency order util -> stats -> geom -> radio -> deploy -> "
        "sinr -> sim -> core -> lowerbound -> algorithms -> ext keeps the "
        "simulator buildable in slices; upward edges and cycles rot first.",
        "  // in src/util/: #include \"sim/engine.hpp\"  (upward edge)",
        "// FCRLINT_ALLOW(layering): <why this edge is sound>"}},
      {"fp-accumulate",
       {"Serial and batched resolvers must produce bit-identical sums; "
        "fcr::pairwise_sum fixes the reduction tree, raw += makes the "
        "result depend on iteration order.",
        "  double s = 0; for (double x : xs) s += x;  // in src/sinr/",
        "// FCRLINT_ALLOW(fp-accumulate): <why this reduction is "
        "order-insensitive or deliberately approximate>"}},
      {"lock-discipline",
       {"Only the annotated fcr::Mutex family participates in Clang "
        "thread-safety analysis; a raw std::mutex is invisible to it and "
        "to fcrlint's lockset rules.",
        "  std::mutex m_;  // in src/",
        "// FCRLINT_ALLOW(lock-discipline): <why a raw primitive is "
        "required here>"}},
      {"rng-flow",
       {"Copying an Rng duplicates its stream: two consumers draw the same "
        "values, and replay diverges from production. Streams move through "
        "references or split().",
        "  Rng copy = *rng_ptr;  // copies the stream state",
        "// FCRLINT_ALLOW(rng-flow): <why this copy cannot duplicate "
        "draws>"}},
      {"workspace-reset",
       {"ExecutionWorkspace is reused across executions; a member appended "
        "to but never cleared/assigned/resized leaks one run's state into "
        "the next.",
        "  ids_.push_back(id);  // and no ids_.clear() in the file",
        "// FCRLINT_ALLOW(workspace-reset): <why this member survives "
        "across runs by design>"}},
      {"error-discipline",
       {"A swallowed exception erases the faulted trial's provenance; the "
        "campaign layer can only quarantine what it can attribute.",
        "  try { run(); } catch (const std::exception&) { /* ignore */ }",
        "// FCRLINT_ALLOW(error-discipline): <why swallowing is safe "
        "here>"}},
      {"lockset",
       {"An FCR_GUARDED_BY(m) member read without m held — in the function "
        "or any caller on a visible path — is a data race the type system "
        "did not catch.",
        "  int v = shared_;  // shared_ is FCR_GUARDED_BY(mu_), no lock",
        "// FCRLINT_ALLOW(lockset): <why this access is race-free>"}},
      {"rng-lineage",
       {"Inside the execution closure every stream must come from the "
        "trial's seeded base via split(<tag>); a re-rooted or "
        "default-seeded Rng silently forks replay.",
        "  Rng r(12345);  // inside run_execution's call graph",
        "// FCRLINT_ALLOW(rng-lineage): <why this root cannot affect "
        "trial replay>"}},
      {"hot-path-alloc",
       {"The steady-state round loops are proven zero-alloc (global "
        "new/delete counters); any allocation reachable from them breaks "
        "the proof and the latency budget.",
        "  buf.push_back(x);  // buf never reserve()d, inside run_rounds",
        "// FCRLINT_ALLOW(hot-path-alloc): <why this allocation is "
        "setup-only or amortized>"}},
      {"error-provenance",
       {"Throws escaping a ThreadPool task must be fcr::Error so the "
        "campaign's failure report can attribute the trial; bare std:: "
        "exceptions lose the seed and config hash.",
        "  throw std::runtime_error(\"bad\");  // inside a for_each body",
        "// FCRLINT_ALLOW(error-provenance): <why provenance is preserved "
        "anyway>"}},
      {"lane-purity",
       {"SIMD lane batching runs 64 nodes per word with per-lane xoshiro "
        "streams; it is only bit-identical to the scalar engine if every "
        "columnar_decide kernel touches element columns at the current "
        "lane only, word columns at the current word only, takes no locks, "
        "reaches no virtual calls, and draws the same number of RNG values "
        "on every CFG path. The verdicts land in kernel_manifest.json.",
        "  if (state.probability[id] > 0.5) {  // lane-varying gate\n"
        "    state.rng[id].bernoulli(p);       // draws 1 on one path, 0 "
        "on the other\n"
        "  }",
        "// FCRLINT_ALLOW(lane-purity): <why this kernel must stay scalar "
        "— it will be excluded from lane batching>"}},
      {"definite-init",
       {"A container sized on only some CFG paths before a subscript read "
        "is a cold-path crash: the untested branch indexes an empty "
        "column. The must-init dataflow proves sizing dominates every "
        "read.",
        "  std::vector<int> col;\n"
        "  if (warm) col.resize(n);\n"
        "  col[0] = 1;  // cold path reads an empty vector",
        "// FCRLINT_ALLOW(definite-init): <the invariant that makes the "
        "unsized path unreachable>"}},
      {"lockset-path",
       {"The branch-aware lockset: scoped MutexLock extents, early "
        "unlocks, and conditional acquisition are replayed through the "
        "CFG, so an access after the lock scope closes — or on a path "
        "that never locked — is caught, and conditional locks no longer "
        "excuse unconditional accesses.",
        "  { fcr::MutexLock l(mu_); shared_ = 1; }\n"
        "  shared_ = 2;  // mu_ released at the brace above",
        "// FCRLINT_ALLOW(lockset-path): <why this access is race-free "
        "on every path>"}},
  }};
  for (const Entry& e : kTable) {
    if (e.id == rule) return &e.ex;
  }
  return nullptr;
}

}  // namespace fcrlint
