// fcrlint v4 — generic forward-dataflow worklist solver over the CFG.
//
// One solver, parameterized by the lattice: the caller supplies the entry
// fact, a per-block transfer function, and a join. Facts are propagated
// along successor edges until a fixpoint; unreachable blocks keep an empty
// optional, which is how dead code is told apart from "reached with an
// empty fact". Termination comes from the lattices, not the solver: the
// concrete lattices below have finite height (must-sets only shrink under
// intersection; draw-count intervals saturate), and a generous iteration
// backstop guards against a client lattice that fails to converge — a
// linter must degrade, never hang.
//
// Three lattices cover the v4 rules:
//
//   MustSet     sorted string set, join = intersection (definite-init's
//               initialized-names fact and lockset-path's held-mutexes fact
//               are both "true on ALL paths" facts);
//   CountRange  [min, max] RNG draws since entry, join = interval hull,
//               addition saturating at kCountSaturated (a draw inside a
//               nested non-lane loop is "unbounded", not a huge number);
//   the lock replay helper walks a block's ordered events (code spans,
//               acquire, release) so per-site facts — "what is held at
//               THIS access" — fall out of the block-entry solution.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fcrlint_cfg.hpp"

namespace fcrlint::dataflow {

/// Bump when solver semantics or the concrete lattices change; feeds the
/// cache fingerprint.
inline constexpr int kDataflowRev = 1;

/// Forward worklist solve. `transfer(block_id, in_fact) -> out_fact`,
/// `join(a, b) -> merged`. Returns the fact at each block's ENTRY; apply
/// `transfer` once more for the exit fact of a block. Facts must be
/// equality-comparable.
template <class Fact, class Transfer, class Join>
inline std::vector<std::optional<Fact>> solve_forward(const cfg::Cfg& g,
                                                      Fact entry_fact,
                                                      Transfer&& transfer,
                                                      Join&& join) {
  std::vector<std::optional<Fact>> in(g.blocks.size());
  if (g.blocks.empty()) return in;
  in[g.entry] = std::move(entry_fact);
  std::vector<char> queued(g.blocks.size(), 0);
  std::vector<std::size_t> work = {g.entry};
  queued[g.entry] = 1;
  // Backstop: each block can be revisited at most a lattice-height number
  // of times; 64 covers the saturating count interval with slack.
  std::size_t budget = g.blocks.size() * 64 + 256;
  while (!work.empty() && budget-- > 0) {
    const std::size_t b = work.back();
    work.pop_back();
    queued[b] = 0;
    const Fact out = transfer(b, *in[b]);
    for (const std::size_t s : g.blocks[b].succs) {
      Fact merged = in[s].has_value() ? join(*in[s], out) : out;
      if (!in[s].has_value() || !(merged == *in[s])) {
        in[s] = std::move(merged);
        if (!queued[s]) {
          queued[s] = 1;
          work.push_back(s);
        }
      }
    }
  }
  return in;
}

// ---------------------------------------------------------------------------
// Must-set lattice (definite-init, lockset-path).
// ---------------------------------------------------------------------------

using MustSet = std::set<std::string>;

inline MustSet must_join(const MustSet& a, const MustSet& b) {
  MustSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

// ---------------------------------------------------------------------------
// Draw-count interval lattice (lane-purity path counting).
// ---------------------------------------------------------------------------

/// Counts above this are "unbounded" — a draw under a back edge whose trip
/// count the linter cannot see. Saturation keeps the lattice finite.
inline constexpr int kCountSaturated = 64;

struct CountRange {
  int min = 0;
  int max = 0;
  friend bool operator==(const CountRange&, const CountRange&) = default;
};

inline CountRange count_add(CountRange r, int n) {
  r.min = std::min(r.min + n, kCountSaturated);
  r.max = std::min(r.max + n, kCountSaturated);
  return r;
}

inline CountRange count_join(const CountRange& a, const CountRange& b) {
  return {std::min(a.min, b.min), std::max(a.max, b.max)};
}

// ---------------------------------------------------------------------------
// Per-site replay.
// ---------------------------------------------------------------------------

/// The must-held lockset just before token `tok` inside block `b`, given the
/// solved block-entry fact: replays the block's ordered events up to (not
/// including) the span position of `tok`.
inline MustSet held_at(const cfg::Block& blk, MustSet entry, std::size_t tok) {
  for (const cfg::Event& e : blk.events) {
    if (e.kind == cfg::Event::kSpan && e.span.contains(tok)) break;
    if (e.kind == cfg::Event::kAcquire) entry.insert(e.lock);
    else if (e.kind == cfg::Event::kRelease) entry.erase(e.lock);
  }
  return entry;
}

/// Block transfer for the lockset analysis: applies every acquire/release in
/// order.
inline MustSet apply_lock_events(const cfg::Block& blk, MustSet in) {
  for (const cfg::Event& e : blk.events) {
    if (e.kind == cfg::Event::kAcquire) in.insert(e.lock);
    else if (e.kind == cfg::Event::kRelease) in.erase(e.lock);
  }
  return in;
}

}  // namespace fcrlint::dataflow
