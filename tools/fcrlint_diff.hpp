// Unified-diff parsing for fcrlint's diff-aware mode.
//
// `fcrlint --diff-base <ref>` reports only findings whose line was added or
// modified relative to <ref> — the PR-review view — while the tree-wide
// `fcrlint_tree` CTest test stays the hard gate. The CLI obtains the diff by
// running `git diff -U0 --no-color <ref>`; this header parses the hunk
// headers into a per-file set of changed (post-image) line numbers and
// filters findings against it.
//
// Header-only and pure (diff text in, line sets out) so tests can feed
// literal diffs.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_rules.hpp"

namespace fcrlint {

/// file (repo-relative, '/' separators) -> set of changed post-image lines.
using ChangedLines = std::map<std::string, std::set<int>>;

/// Parses `git diff -U0` output. Only `+++ b/<path>` targets and
/// `@@ -a,b +start[,count] @@` hunk headers matter; deleted files
/// (`+++ /dev/null`) contribute nothing. A count of 0 (pure deletion hunk)
/// adds no lines. Tolerant of prefixes other than b/ (e.g. --no-prefix).
inline ChangedLines parse_unified_diff(std::string_view diff) {
  ChangedLines out;
  std::string current;
  std::size_t pos = 0;
  while (pos <= diff.size()) {
    std::size_t eol = diff.find('\n', pos);
    if (eol == std::string_view::npos) eol = diff.size();
    const std::string_view ln = diff.substr(pos, eol - pos);
    pos = eol + 1;
    if (ln.substr(0, 4) == "+++ ") {
      std::string_view path = ln.substr(4);
      if (const std::size_t tab = path.find('\t');
          tab != std::string_view::npos) {
        path = path.substr(0, tab);
      }
      if (path == "/dev/null") {
        current.clear();
      } else {
        if (path.substr(0, 2) == "b/") path = path.substr(2);
        current.assign(path);
      }
      continue;
    }
    if (ln.substr(0, 3) == "@@ " && !current.empty()) {
      const std::size_t plus = ln.find('+', 3);
      if (plus == std::string_view::npos) continue;
      int start = 0;
      std::size_t i = plus + 1;
      while (i < ln.size() && ln[i] >= '0' && ln[i] <= '9') {
        start = start * 10 + (ln[i] - '0');
        ++i;
      }
      int count = 1;
      if (i < ln.size() && ln[i] == ',') {
        count = 0;
        ++i;
        while (i < ln.size() && ln[i] >= '0' && ln[i] <= '9') {
          count = count * 10 + (ln[i] - '0');
          ++i;
        }
      }
      std::set<int>& lines = out[current];
      for (int k = 0; k < count; ++k) lines.insert(start + k);
    }
  }
  return out;
}

/// Keeps only findings sitting on a changed line of a changed file.
inline std::vector<Finding> filter_to_changed(const std::vector<Finding>& all,
                                              const ChangedLines& changed) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    const auto it = changed.find(f.file);
    if (it == changed.end()) continue;
    if (it->second.count(f.line) != 0) out.push_back(f);
  }
  return out;
}

}  // namespace fcrlint
