// fcrlint --fix — mechanical rewrites for the two rules whose fix is
// unambiguous from the finding alone:
//
//   pragma-once      insert `#pragma once` at the top of the header, after
//                    the leading comment block (license/doc header) so the
//                    file's prose stays first.
//   include-hygiene  rewrite deprecated C headers <x.h> -> <cx> (the shared
//                    detail::kDeprecatedC list). Parent-relative and
//                    <bits/...> includes are NOT auto-fixed: their correct
//                    replacement needs path knowledge the linter lacks.
//
// The engine re-derives the edit sites from the token stream of the current
// content (not from stale findings), honours allow-annotation suppressions
// the same way the rules do, and applies byte-offset edits back-to-front. Both
// rewrites converge: a fixed file produces zero further edits, which the
// round-trip test (tools/fix_check.cmake) asserts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_core.hpp"
#include "fcrlint_lexer.hpp"
#include "fcrlint_rules.hpp"

namespace fcrlint::fix {

struct FixOutcome {
  std::string content;     ///< rewritten file contents
  std::size_t edits = 0;   ///< number of edits applied (0 = unchanged)
};

/// Applies every mechanical fix to one file. `path` is repo-relative with
/// '/' separators; returns the rewritten contents plus the edit count.
inline FixOutcome apply_fixes(const std::string& path,
                              std::string_view content) {
  const std::vector<Token> toks = lex(content);
  std::vector<Finding> sink;
  const std::vector<Allow> allows = parse_allows(toks, path, sink);

  struct Edit {
    std::size_t begin = 0;
    std::size_t length = 0;  ///< bytes replaced (0 = pure insertion)
    std::string text;
  };
  std::vector<Edit> edits;

  // pragma-once: headers without the pragma get it inserted after the
  // leading comment block.
  const bool is_header =
      detail::ends_with(path, ".hpp") || detail::ends_with(path, ".h");
  if (is_header && !allowed_anywhere(allows, "pragma-once")) {
    bool has_pragma = false;
    for (std::size_t i = 0; i < toks.size() && !has_pragma; ++i) {
      if (!toks[i].punct("#") || !toks[i].directive) continue;
      const std::size_t j = next_sig(toks, i);
      if (j == npos || !toks[j].ident("pragma")) continue;
      const std::size_t k = next_sig(toks, j);
      has_pragma = k != npos && toks[k].ident("once");
    }
    if (!has_pragma) {
      // Insertion point: the line start of the first significant token, so
      // the pragma lands between the doc-comment block and the code.
      std::size_t at = content.size();
      for (const Token& t : toks) {
        if (t.comment()) continue;
        at = t.begin;
        while (at > 0 && content[at - 1] != '\n') --at;
        break;
      }
      std::string text = "#pragma once\n";
      if (at == content.size() && (content.empty() || content.back() != '\n')) {
        text = "\n#pragma once\n";
      }
      edits.push_back({at, 0, std::move(text)});
    }
  }

  // include-hygiene: deprecated C headers get their <cx> spelling.
  for (const Token& t : toks) {
    if (t.kind != TokKind::kHeaderName) continue;
    if (allowed_on_line(allows, "include-hygiene", t.line)) continue;
    for (const std::string_view dep : detail::kDeprecatedC) {
      if (t.text != "<" + std::string(dep) + ">") continue;
      const std::string fixed =
          "<c" + std::string(dep.substr(0, dep.size() - 2)) + ">";
      edits.push_back({t.begin, t.text.size(), fixed});
      break;
    }
  }

  FixOutcome out;
  out.content = std::string(content);
  out.edits = edits.size();
  std::sort(edits.begin(), edits.end(),
            [](const Edit& a, const Edit& b) { return a.begin > b.begin; });
  for (const Edit& e : edits) {
    out.content.replace(e.begin, e.length, e.text);
  }
  return out;
}

}  // namespace fcrlint::fix
