// fcrlint's C++ token lexer.
//
// The v1 engine scanned line-masked text with regex-ish string searches; it
// could not see token boundaries, directive structure, or comment extents
// reliably (multi-line block comments and raw strings were the known blind
// spots). This lexer produces a real token stream so every rule in
// fcrlint_rules.hpp matches on token structure instead of substrings.
//
// Scope: a single-file lexical pass, deliberately simpler than a full
// translation phase 1-3 implementation but faithful where the rules need it:
//
//   * line (//) and block (/* */) comments are single tokens carrying their
//     full text, so allow annotations inside them parse with exact line
//     numbers; a line comment continued by a backslash splice stays one
//     comment token (a real-world gotcha the old line scanner missed);
//   * string / character literals, including encoding prefixes (u8, u, U, L)
//     and raw strings R"delim(...)delim", are opaque single tokens: banned
//     identifiers inside them can never match;
//   * after `#include` (or `#include_next`) the <...> / "..." operand is
//     lexed as one kHeaderName token, mirroring the standard's header-name
//     production, so include rules read paths directly;
//   * a `#` that starts a preprocessor directive is marked (Token::directive)
//     by checking it is the first significant token on its logical line;
//   * backslash-newline splices are treated as whitespace between tokens and
//     as continuations inside line comments and string literals; lines are
//     counted so every token knows its 1-based source line;
//   * punctuation uses maximal munch over the C++ operator set, so `+=`,
//     `::`, `&&`, `->` arrive as single tokens.
//
// The lexer never fails: ill-formed input (unterminated literals or
// comments) degrades to a best-effort token stream, which is the right
// behaviour for a linter that must keep scanning the rest of the file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fcrlint {

enum class TokKind : std::uint8_t {
  kIdent,        ///< identifier or keyword
  kNumber,       ///< pp-number (integer / floating literal, any base)
  kPunct,        ///< operator or punctuator, maximal munch
  kString,       ///< "..." literal, encoding prefix included in text
  kChar,         ///< '...' literal, encoding prefix included in text
  kRawString,    ///< R"delim(...)delim" literal, prefix included
  kLineComment,  ///< // ... (including splice continuations)
  kBlockComment, ///< /* ... */
  kHeaderName,   ///< <...> or "..." operand of #include, delimiters included
};

struct Token {
  TokKind kind = TokKind::kPunct;
  int line = 1;             ///< 1-based line of the token's first character
  std::size_t begin = 0;    ///< byte offset into the source
  bool directive = false;   ///< true for a '#' that starts a directive
  bool pp = false;          ///< true for any token on a preprocessor line
  std::string text;         ///< exact source slice

  bool is(TokKind k, std::string_view t) const { return kind == k && text == t; }
  bool ident(std::string_view t) const { return is(TokKind::kIdent, t); }
  bool punct(std::string_view t) const { return is(TokKind::kPunct, t); }
  bool comment() const {
    return kind == TokKind::kLineComment || kind == TokKind::kBlockComment;
  }
};

namespace lexdetail {

inline bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
inline bool digit(char c) { return c >= '0' && c <= '9'; }
inline bool ident_char(char c) { return ident_start(c) || digit(c); }

/// True when the prefix of a just-lexed identifier plus a following quote
/// forms a raw-string opener (R"..., u8R"..., uR"..., UR"..., LR"...).
inline bool raw_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}
/// Encoding prefixes that may precede a plain string or char literal.
inline bool encoding_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

/// Multi-character punctuators, longest first within each first-char group;
/// maximal munch tries 3-char then 2-char matches before the single char.
inline constexpr std::string_view kPunct3[] = {"<<=", ">>=", "...", "->*"};
inline constexpr std::string_view kPunct2[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##"};

}  // namespace lexdetail

/// Lexes `src` into a token vector. Whitespace is dropped; comments are kept
/// as tokens (rules that must ignore them skip non-significant kinds).
inline std::vector<Token> lex(std::string_view src) {
  using namespace lexdetail;
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  // Line (1-based) of the last significant token, to recognise directive
  // hashes; 0 = no significant token yet on any line.
  int last_sig_line = 0;
  // After `# include` we owe the stream one header-name token.
  bool expect_header = false;
  // Inside a preprocessor directive (from its '#' to the unspliced end of
  // line). Tokens carry this so structural passes (the v3 program model)
  // can skip macro definitions, which are not part of the parsed program.
  bool in_pp = false;

  auto emit = [&](TokKind kind, std::size_t begin, std::size_t end) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.begin = begin;
    t.text.assign(src.substr(begin, end - begin));
    if (kind != TokKind::kLineComment && kind != TokKind::kBlockComment) {
      if (kind == TokKind::kPunct && t.text == "#" && last_sig_line != line) {
        t.directive = true;
        in_pp = true;
      }
      last_sig_line = line;
    }
    t.pp = in_pp;
    // Multi-line tokens (block comments, spliced comments/strings) advance
    // the line counter by the newlines they swallowed.
    for (const char c : t.text) {
      if (c == '\n') ++line;
    }
    out.push_back(std::move(t));
    i = end;
  };

  // Consumes a quoted literal starting at the opening quote `q` (position
  // `from`); handles backslash escapes (including escaped newlines). Stops
  // at an unescaped closing quote or, for tolerance, at an unescaped
  // newline / end of input. Returns one past the last consumed character.
  auto scan_quoted = [&](std::size_t from, char q) {
    std::size_t j = from + 1;
    while (j < n) {
      if (src[j] == '\\' && j + 1 < n) {
        j += 2;
        continue;
      }
      if (src[j] == q) return j + 1;
      if (src[j] == '\n') return j;  // unterminated; do not eat the newline
      ++j;
    }
    return j;
  };

  while (i < n) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';

    // -- whitespace and splices -------------------------------------------
    if (c == '\n') {
      ++line;
      ++i;
      expect_header = false;  // a directive ends with its (unspliced) line
      in_pp = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '\\' && (next == '\n' || (next == '\r' && i + 2 < n && src[i + 2] == '\n'))) {
      // Backslash-newline splice: whitespace between tokens, but the
      // physical line still advances.
      i += next == '\n' ? 2 : 3;
      ++line;
      continue;
    }

    // -- comments ---------------------------------------------------------
    if (c == '/' && next == '/') {
      std::size_t j = i + 2;
      while (j < n) {
        if (src[j] != '\n') {
          ++j;
          continue;
        }
        // A line comment continues across a backslash splice (ignoring
        // trailing \r): the next physical line is still comment text.
        std::size_t k = j;
        while (k > i + 2 && src[k - 1] == '\r') --k;
        if (k > i + 2 && src[k - 1] == '\\') {
          ++j;
          continue;
        }
        break;
      }
      emit(TokKind::kLineComment, i, j);
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t close = src.find("*/", i + 2);
      emit(TokKind::kBlockComment, i,
           close == std::string_view::npos ? n : close + 2);
      continue;
    }

    // -- header-name after #include ---------------------------------------
    if (expect_header && (c == '<' || c == '"')) {
      const char closer = c == '<' ? '>' : '"';
      std::size_t j = i + 1;
      while (j < n && src[j] != closer && src[j] != '\n') ++j;
      expect_header = false;
      emit(TokKind::kHeaderName, i, j < n && src[j] == closer ? j + 1 : j);
      continue;
    }

    // -- string / char literals (no prefix) -------------------------------
    if (c == '"') {
      emit(TokKind::kString, i, scan_quoted(i, '"'));
      continue;
    }
    if (c == '\'') {
      emit(TokKind::kChar, i, scan_quoted(i, '\''));
      continue;
    }

    // -- identifiers, possibly literal prefixes ---------------------------
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      const std::string_view id = src.substr(i, j - i);
      if (j < n && src[j] == '"' && raw_prefix(id)) {
        // Raw string: R"delim( ... )delim". Find the opening '(' to learn
        // the delimiter, then search for the exact `)delim"` terminator.
        const std::size_t open = src.find('(', j + 1);
        if (open != std::string_view::npos) {
          const std::string terminator =
              ")" + std::string(src.substr(j + 1, open - j - 1)) + "\"";
          const std::size_t close = src.find(terminator, open + 1);
          emit(TokKind::kRawString, i,
               close == std::string_view::npos ? n : close + terminator.size());
          continue;
        }
        // Ill-formed raw string (no '('): fall through as an identifier.
      }
      if (j < n && src[j] == '"' && encoding_prefix(id)) {
        emit(TokKind::kString, i, scan_quoted(j, '"'));
        continue;
      }
      if (j < n && src[j] == '\'' && encoding_prefix(id)) {
        emit(TokKind::kChar, i, scan_quoted(j, '\''));
        continue;
      }
      emit(TokKind::kIdent, i, j);
      if (expect_header) expect_header = false;
      if (!out.empty() && out.back().kind == TokKind::kIdent &&
          (out.back().text == "include" || out.back().text == "include_next") &&
          out.size() >= 2) {
        // `# include` — the previous significant token must be a directive
        // hash (comments may sit between, e.g. `#/*x*/include <y>`).
        for (std::size_t k = out.size() - 1; k-- > 0;) {
          if (out[k].comment()) continue;
          expect_header = out[k].punct("#") && out[k].directive;
          break;
        }
      }
      continue;
    }

    // -- numbers (pp-number: handles digit separators, exponents) ---------
    if (digit(c) || (c == '.' && digit(next))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.') {
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n && ident_char(src[j + 1])) {
          j += 2;  // digit separator
          continue;
        }
        if ((d == '+' || d == '-') &&
            (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
             src[j - 1] == 'P')) {
          ++j;  // exponent sign
          continue;
        }
        break;
      }
      emit(TokKind::kNumber, i, j);
      continue;
    }

    // -- punctuation: maximal munch ---------------------------------------
    {
      std::size_t len = 1;
      const std::string_view rest = src.substr(i);
      for (const std::string_view p : kPunct3) {
        if (rest.substr(0, 3) == p) {
          len = 3;
          break;
        }
      }
      if (len == 1) {
        for (const std::string_view p : kPunct2) {
          if (rest.substr(0, 2) == p) {
            len = 2;
            break;
          }
        }
      }
      emit(TokKind::kPunct, i, i + len);
    }
  }
  return out;
}

/// True for tokens rules should treat as code (not comments).
inline bool significant(const Token& t) { return !t.comment(); }

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Index of the next significant token strictly after `i` (npos if none).
inline std::size_t next_sig(const std::vector<Token>& toks, std::size_t i) {
  for (std::size_t j = i + 1; j < toks.size(); ++j) {
    if (significant(toks[j])) return j;
  }
  return npos;
}

/// Index of the previous significant token strictly before `i` (npos if none).
inline std::size_t prev_sig(const std::vector<Token>& toks, std::size_t i) {
  for (std::size_t j = i; j-- > 0;) {
    if (significant(toks[j])) return j;
  }
  return npos;
}

}  // namespace fcrlint
