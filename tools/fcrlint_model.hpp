// fcrlint v3 — cross-translation-unit program model and the four
// interprocedural rules built on it.
//
// The per-file token rules (fcrlint_rules.hpp) cannot see across files, so
// the invariants the repo's headline claims rest on — lock discipline around
// FCR_GUARDED_BY state, split()-rooted Rng lineage, the PR 4 zero-allocation
// steady state, and the PR 5 fcr::Error taxonomy — were only proven
// dynamically (TSan, global new/delete counters, failpoint campaigns). This
// header builds a lightweight semantic index from the existing token stream
// and re-proves them statically, tree-wide:
//
//   extraction (per file, cacheable)
//     scope-stack pseudo-parse over the significant, non-preprocessor
//     tokens: namespaces / classes (with base lists) / function definitions
//     with qualified names; per function the held/required locks, call
//     sites (with receivers), allocation sites, throw sites, Rng
//     construction sites, and member accesses; per file the FCR_GUARDED_BY
//     fields, the mentioned type names, and the reserve/clear'd receivers.
//
//   program model (cross-file)
//     definitions merged with their declarations (FCR_REQUIRES on a header
//     decl annotates the out-of-line definition), call edges resolved by
//     qualified-name suffix or by unqualified name filtered through a
//     class-visibility test (the callee's class — or one of its transitive
//     bases, which over-approximates virtual dispatch — must be mentioned
//     in the caller's file), and BFS reachability with parent chains so
//     every finding carries a witness path.
//
//   rules (emit through the ordinary Finding / allow-annotation machinery)
//     lockset          guarded member accessed with no caller-visible path
//                      holding its mutex
//     rng-lineage      ambient/defaulted Rng seeding anywhere in src/, and
//                      seed-rooted streams constructed inside the execution
//                      closure (run_execution / ExecutionWorkspace::run)
//     hot-path-alloc   allocation reachable from ExecutionWorkspace::
//                      run_rounds, the steady-state round loop
//     error-provenance bare std:: exceptions thrown on paths reachable
//                      from ThreadPool::for_each callers (task bodies)
//
// The model is deliberately an over-approximation (name-based resolution,
// whole-body lock extents); where that direction risks false positives the
// checks require positive evidence (e.g. a guarded-field access must come
// from a method of a related class, or through a receiver whose declared
// type matches the guarded class — a same-named member of an unrelated
// struct never matches) and every residual finding is suppressible with a
// reasoned allow.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "fcrlint_cfg.hpp"
#include "fcrlint_core.hpp"
#include "fcrlint_dataflow.hpp"
#include "fcrlint_lexer.hpp"

namespace fcrlint::model {

/// Bump when extraction output (the per-function fact schema or how facts
/// are computed) changes; feeds the cache fingerprint.
inline constexpr int kModelRev = 4;

// ---------------------------------------------------------------------------
// Per-file facts.
// ---------------------------------------------------------------------------

struct CallSite {
  int line = 1;
  std::string receiver;  ///< object of a ./-> call ("" for free calls)
  std::string callee;    ///< name, possibly "A::b" qualified
  /// What the call is gated on (max taint of enclosing non-loop guards):
  /// 0 round-uniform, 1 active-mask-derived, 2 lane-varying.
  int gate = 0;
  std::vector<std::string> held;  ///< must-held mutexes at this site
  std::size_t tok = npos;  ///< token index (extraction-transient, not cached)
};

struct AllocSite {
  enum Kind : int {
    kNew = 0,        ///< new T / new T[n]
    kMakeSmart = 1,  ///< make_unique / make_shared
    kGrowth = 2,     ///< push_back & co on a non-local receiver
    kLocalGrowth = 3,///< push_back & co on an unreserved function-local
    kLocalCtor = 4,  ///< sized construction of a function-local container
  };
  int kind = kNew;
  int line = 1;
  std::string what;  ///< allocated type or receiver name
};

struct ThrowSite {
  int line = 1;
  std::string head;  ///< thrown head tokens ("std::runtime_error"); "" = rethrow
};

struct RngSite {
  enum Kind : int {
    kSplit = 0,     ///< initializer calls split()
    kDerived = 1,   ///< initialized from another stream variable
    kSeedRoot = 2,  ///< initializer mentions a seed — a lineage root
    kAmbient = 3,   ///< default-constructed or literal/entropy-seeded
  };
  int kind = kSplit;
  int line = 1;
  std::string name;
};

struct Access {
  int line = 1;
  bool qualified = false;  ///< reached through . or ->
  std::string name;
  std::string receiver;   ///< object of a qualified access ("this", a name, "")
  std::string recv_type;  ///< receiver's declared class, when known in-function
  std::vector<std::string> held;  ///< must-held mutexes at this site
  std::size_t tok = npos;  ///< token index (extraction-transient, not cached)
};

/// A columnar-state access: `state.<column>[index]`, a bitmask buffer
/// parameter subscript, or a whole-column operation (assign/fill/range-for).
struct ColAccess {
  enum IndexClass : int {
    kLane = 0,   ///< the current lane id (loop induction over node_count, or
                 ///< the word*64+countr_zero word-sweep derivation)
    kWord = 1,   ///< a word index (lane >> 6, or a word-loop variable)
    kWhole = 2,  ///< whole-column operation
    kOther = 3,  ///< anything else — cross-lane by construction
  };
  int line = 1;
  std::string column;
  int write = 0;
  int index_class = kOther;
};

/// A per-node RNG draw (a member call on an Rng column element or Rng-typed
/// local). `gate` classifies the enclosing non-loop conditions: 0 round-
/// uniform, 1 active-mask-derived (the sanctioned word-skipping sweep), 2
/// lane-varying — the class that breaks xoshiro lane batching.
struct DrawSite {
  int line = 1;
  int gate = 0;
};

/// A read of a container on some path where no resize/assign/reserve has
/// definitely happened yet (must-init dataflow over the CFG).
struct InitHazard {
  int line = 1;
  std::string name;
};

/// A local lane-purity defect found by the draw-count dataflow (path-
/// dependent counts, draws in non-lane loops, lane-varying gates on a whole
/// draw loop).
struct PurityIssue {
  int line = 1;
  std::string what;
};

struct FunctionFacts {
  std::string qualified;  ///< "fcr::ThreadPool::submit"
  std::string name;       ///< "submit"
  std::string cls;        ///< "fcr::ThreadPool" ("" for free functions)
  int line = 1;
  bool is_definition = false;
  bool is_virtual = false;  ///< declared virtual, or marked override/final
  std::vector<std::string> locks;  ///< held (MutexLock/.lock()) or FCR_REQUIRES
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<ThrowSite> throw_sites;
  std::vector<RngSite> rngs;
  std::vector<Access> accesses;
  std::vector<ColAccess> cols;
  std::vector<DrawSite> draws;
  std::vector<InitHazard> init_hazards;
  std::vector<PurityIssue> purity;
  /// Per-lane RNG draws from this function's own lane loops, as a
  /// [min, max] interval (callee draws are summed in at tree level).
  int draw_min = 0;
  int draw_max = 0;
};

struct GuardedField {
  std::string cls;    ///< qualified class ("" at namespace scope)
  std::string name;
  std::string mutex;  ///< last identifier of the FCR_GUARDED_BY argument
  int line = 1;
};

struct ClassDecl {
  std::string name;                ///< qualified
  std::vector<std::string> bases;  ///< base last-components
};

struct FileModel {
  std::vector<FunctionFacts> functions;
  std::vector<GuardedField> fields;
  std::vector<ClassDecl> classes;
  std::vector<std::string> types_mentioned;  ///< uppercase-initial idents
  std::vector<std::string> reserved;  ///< receivers of reserve/clear/assign/resize
};

// ---------------------------------------------------------------------------
// Extraction.
// ---------------------------------------------------------------------------

namespace extdetail {

using fcrlint::detail::match_forward;
using fcrlint::detail::starts_with;

inline bool is_upper(char c) { return c >= 'A' && c <= 'Z'; }

/// C++ keywords and fcrlint-relevant macro-ish names that are never treated
/// as callees, receivers, or data accesses.
inline bool keyword(std::string_view s) {
  static const std::set<std::string_view> k = {
      "alignas",   "alignof",  "and",        "asm",          "auto",
      "bool",      "break",    "case",       "catch",        "char",
      "class",     "co_await", "co_return",  "co_yield",     "concept",
      "const",     "constexpr","consteval",  "constinit",    "continue",
      "decltype",  "default",  "defined",    "delete",       "do",
      "double",    "else",     "enum",       "explicit",     "export",
      "extern",    "false",    "final",      "float",        "for",
      "friend",    "goto",     "if",         "inline",       "int",
      "long",      "mutable",  "namespace",  "new",          "noexcept",
      "not",       "nullptr",  "operator",   "or",           "override",
      "private",   "protected","public",     "register",     "requires",
      "return",    "short",    "signed",     "sizeof",       "static",
      "static_assert",         "static_cast","struct",       "switch",
      "template",  "this",     "thread_local", "throw",      "true",
      "try",       "typedef",  "typeid",     "typename",     "union",
      "unsigned",  "using",    "virtual",    "void",         "volatile",
      "while"};
  return k.count(s) != 0;
}

/// Skips a template argument list whose '<' sits at `i`. Returns the index
/// just past the matching '>', or npos when `<` turns out to be a
/// comparison (a ';' or '{' interrupts) or the list is unbalanced.
inline std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  std::size_t j = i;
  while (j < t.size()) {
    const Token& tok = t[j];
    if (tok.punct("<")) ++depth;
    else if (tok.punct("<<")) depth += 2;
    else if (tok.punct(">")) --depth;
    else if (tok.punct(">>")) depth -= 2;
    else if (tok.punct("(")) {
      j = match_forward(t, j, "(", ")");
      if (j == npos) return npos;
    } else if (tok.punct(";") || tok.punct("{")) {
      return npos;
    }
    ++j;
    if (depth <= 0) return j;
  }
  return npos;
}

/// A matched function plus its body's filtered-token range.
struct RawFunction {
  FunctionFacts facts;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;  ///< [begin, end); begin == end for declarations
  std::size_t params_begin = 0;
  std::size_t params_end = 0;  ///< parameter-list token range (for decl types)
};

inline std::string join_qual(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "::" + b;
}

/// Attempts to match a function declarator whose name chain starts at t[i].
/// `prefix` is the enclosing scope's qualified name, `in_class` whether the
/// innermost scope is a class. On success fills `rf` and returns the index
/// to resume scanning at (past the body or the terminating ';'); otherwise
/// returns npos.
inline std::size_t try_function(const std::vector<Token>& t, std::size_t i,
                                const std::string& prefix, bool in_class,
                                RawFunction& rf) {
  const std::size_t n = t.size();
  std::size_t j = i;
  std::string explicit_cls;
  // Optional qualifier chain of an out-of-line definition: A::B:: ...
  while (j + 2 < n && t[j].kind == TokKind::kIdent && t[j + 1].punct("::") &&
         (t[j + 2].kind == TokKind::kIdent || t[j + 2].punct("~"))) {
    // Stop the chain when the next component is followed by '<' (a type
    // like std::vector<...>), handled by the terminal check below failing.
    explicit_cls = join_qual(explicit_cls, t[j].text);
    j += 2;
  }
  std::string name;
  if (t[j].punct("~")) {
    if (j + 1 >= n || t[j + 1].kind != TokKind::kIdent) return npos;
    name = "~" + t[j + 1].text;
    j += 2;
  } else if (t[j].ident("operator")) {
    std::size_t k = j + 1;
    name = "operator";
    if (k + 1 < n && t[k].punct("(") && t[k + 1].punct(")")) {
      name += "()";
      k += 2;
    } else {
      while (k < n && t[k].kind == TokKind::kPunct && !t[k].punct("(")) {
        name += t[k].text;
        ++k;
      }
      while (k < n && t[k].kind == TokKind::kIdent) {  // operator bool
        name += "_" + t[k].text;
        ++k;
      }
    }
    j = k;
  } else if (t[j].kind == TokKind::kIdent && !keyword(t[j].text)) {
    name = t[j].text;
    ++j;
  } else {
    return npos;
  }
  if (j >= n || !t[j].punct("(")) return npos;
  const std::size_t params_close = match_forward(t, j, "(", ")");
  if (params_close == npos) return npos;

  std::vector<std::string> locks;
  std::size_t body_open = npos;
  std::size_t k = params_close + 1;
  while (k < n) {
    const Token& tk = t[k];
    if (tk.punct("{")) {
      body_open = k;
      break;
    }
    if (tk.punct(";")) break;  // declaration
    if (tk.punct("=")) {       // = default / = delete / = 0
      while (k < n && !t[k].punct(";")) ++k;
      break;
    }
    if (tk.punct(":")) {  // constructor initializer list
      std::size_t m = k + 1;
      int depth = 0;
      while (m < n) {
        const Token& tm = t[m];
        if (tm.punct("(") || tm.punct("[")) ++depth;
        else if (tm.punct(")") || tm.punct("]")) --depth;
        else if (tm.punct("{") && depth == 0) {
          // A '{' directly after ')' or '}' is the function body; one after
          // a member name is that member's brace initializer.
          const bool body = m > 0 && (t[m - 1].punct(")") || t[m - 1].punct("}"));
          if (body) break;
          const std::size_t close = match_forward(t, m, "{", "}");
          if (close == npos) return npos;
          m = close;
        }
        ++m;
      }
      if (m >= n) return npos;
      body_open = m;
      break;
    }
    if (tk.kind == TokKind::kIdent) {
      if (tk.text == "override" || tk.text == "final") {
        rf.facts.is_virtual = true;  // override implies a virtual base decl
      }
      if (k + 1 < n && t[k + 1].punct("(") &&
          (starts_with(tk.text, "FCR_") || tk.text == "noexcept" ||
           tk.text == "throw")) {
        const std::size_t close = match_forward(t, k + 1, "(", ")");
        if (close == npos) return npos;
        if (tk.text == "FCR_REQUIRES" || tk.text == "FCR_ACQUIRE" ||
            tk.text == "FCR_RELEASE") {
          std::string cur;
          for (std::size_t a = k + 2; a < close; ++a) {
            if (t[a].kind == TokKind::kIdent && t[a].text != "this") {
              cur = t[a].text;
            } else if (t[a].punct(",")) {
              if (!cur.empty()) locks.push_back(cur);
              cur.clear();
            }
          }
          if (!cur.empty()) locks.push_back(cur);
        }
        k = close + 1;
        continue;
      }
      ++k;  // const, noexcept, override, final, macro without args, try
      continue;
    }
    if (tk.punct("&") || tk.punct("&&")) {
      ++k;
      continue;
    }
    if (tk.punct("->")) {  // trailing return type
      std::size_t m = k + 1;
      while (m < n && !t[m].punct("{") && !t[m].punct(";")) {
        if (t[m].punct("(")) {
          const std::size_t close = match_forward(t, m, "(", ")");
          if (close == npos) return npos;
          m = close;
        }
        ++m;
      }
      k = m;
      continue;
    }
    if (tk.punct("[")) {  // [[attribute]]
      const std::size_t close = match_forward(t, k, "[", "]");
      if (close == npos) return npos;
      k = close + 1;
      continue;
    }
    return npos;  // not a function declarator after all
  }
  if (k >= n) return npos;

  std::string cls = explicit_cls.empty()
                        ? (in_class ? prefix : std::string{})
                        : join_qual(prefix, explicit_cls);
  rf.facts.name = name;
  rf.facts.cls = cls;
  rf.facts.qualified = join_qual(cls.empty() ? prefix : cls, name);
  rf.facts.line = t[i].line;
  rf.facts.locks = std::move(locks);
  rf.params_begin = j + 1;
  rf.params_end = params_close;
  if (body_open != npos) {
    const std::size_t body_close = match_forward(t, body_open, "{", "}");
    if (body_close == npos) return npos;
    rf.facts.is_definition = true;
    rf.body_begin = body_open + 1;
    rf.body_end = body_close;
    return body_close + 1;
  }
  rf.facts.is_definition = false;
  rf.body_begin = rf.body_end = 0;
  return k + 1;  // past the ';'
}

/// Walks the top-level structure (namespaces, classes, function declarators)
/// of the filtered token stream, collecting raw functions, guarded fields
/// and class declarations. Function bodies are consumed whole here and
/// scanned by scan_body afterwards.
inline void parse_structure(const std::vector<Token>& t,
                            std::vector<RawFunction>& fns,
                            std::vector<GuardedField>& fields,
                            std::vector<ClassDecl>& classes) {
  struct Scope {
    int kind;  // 0 namespace, 1 class, 2 plain block
    std::string name;
  };
  std::vector<Scope> scopes;
  auto prefix = [&]() {
    std::string q;
    for (const Scope& s : scopes) {
      if (!s.name.empty()) q = join_qual(q, s.name);
    }
    return q;
  };

  const std::size_t n = t.size();
  std::size_t i = 0;
  // `virtual` seen since the last statement/brace boundary: marks the next
  // matched declarator as a virtual method.
  bool saw_virtual = false;
  while (i < n) {
    const Token& tok = t[i];
    if (tok.punct(";") || tok.punct("{") || tok.punct("}")) {
      saw_virtual = false;
    }
    if (tok.ident("virtual")) {
      saw_virtual = true;
      ++i;
      continue;
    }
    if (tok.punct("{")) {
      scopes.push_back({2, ""});
      ++i;
      continue;
    }
    if (tok.punct("}")) {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    if (tok.ident("namespace")) {
      std::string name;
      std::size_t j = i + 1;
      while (j < n && (t[j].kind == TokKind::kIdent || t[j].punct("::"))) {
        name += t[j].text;
        ++j;
      }
      if (j < n && t[j].punct("{")) {
        scopes.push_back({0, name});
        i = j + 1;
      } else {  // namespace alias / using-directive tail
        while (j < n && !t[j].punct(";")) ++j;
        i = j + 1;
      }
      continue;
    }
    if (tok.ident("template")) {
      if (i + 1 < n && t[i + 1].punct("<")) {
        const std::size_t after = skip_angles(t, i + 1);
        if (after != npos) {
          i = after;
          continue;
        }
      }
      ++i;
      continue;
    }
    if (tok.ident("enum")) {
      std::size_t j = i + 1;
      while (j < n && !t[j].punct("{") && !t[j].punct(";")) ++j;
      if (j < n && t[j].punct("{")) {
        const std::size_t close = match_forward(t, j, "{", "}");
        i = close == npos ? n : close + 1;
      } else {
        i = j + 1;
      }
      continue;
    }
    if (tok.ident("using") || tok.ident("typedef") || tok.ident("friend")) {
      std::size_t j = i + 1;
      int depth = 0;
      while (j < n) {
        if (t[j].punct("{") || t[j].punct("(")) ++depth;
        else if (t[j].punct("}") || t[j].punct(")")) --depth;
        else if (t[j].punct(";") && depth <= 0) break;
        ++j;
      }
      i = j + 1;
      continue;
    }
    if (tok.ident("class") || tok.ident("struct") || tok.ident("union")) {
      std::size_t j = i + 1;
      // Attribute-like macros / alignas between the keyword and the name.
      while (j + 1 < n && t[j].kind == TokKind::kIdent && t[j + 1].punct("(") &&
             (starts_with(t[j].text, "FCR_") || t[j].text == "alignas")) {
        const std::size_t close = match_forward(t, j + 1, "(", ")");
        if (close == npos) break;
        j = close + 1;
      }
      std::string name;
      while (j < n && t[j].kind == TokKind::kIdent) {
        name = join_qual(name, t[j].text);
        ++j;
        if (j < n && t[j].punct("::")) {
          ++j;
          continue;
        }
        break;
      }
      if (j < n && t[j].punct("<")) {  // specialization arguments
        const std::size_t after = skip_angles(t, j);
        if (after == npos) {
          ++i;
          continue;
        }
        j = after;
      }
      if (j < n && t[j].ident("final")) ++j;
      if (j < n && t[j].punct(":")) {  // base clause
        ClassDecl decl;
        decl.name = join_qual(prefix(), name);
        std::size_t k = j + 1;
        int depth = 0;
        std::string last;
        while (k < n && !(t[k].punct("{") && depth == 0)) {
          const Token& tk = t[k];
          if (tk.punct("<")) {
            const std::size_t after = skip_angles(t, k);
            if (after == npos) break;
            k = after;
            continue;
          }
          if (tk.punct("(")) ++depth;
          else if (tk.punct(")")) --depth;
          else if (tk.kind == TokKind::kIdent && !keyword(tk.text)) last = tk.text;
          else if (tk.punct(",") && depth == 0) {
            if (!last.empty()) decl.bases.push_back(last);
            last.clear();
          }
          ++k;
        }
        if (!last.empty()) decl.bases.push_back(last);
        if (k < n && t[k].punct("{")) {
          classes.push_back(std::move(decl));
          scopes.push_back({1, name});
          i = k + 1;
          continue;
        }
        i = k < n ? k + 1 : n;
        continue;
      }
      if (j < n && t[j].punct("{")) {
        classes.push_back({join_qual(prefix(), name), {}});
        scopes.push_back({1, name});
        i = j + 1;
        continue;
      }
      i = j < n && t[j].punct(";") ? j + 1 : j + (j == i ? 1 : 0);
      if (i <= j) i = j;  // forward declaration / variable of class type
      if (i == static_cast<std::size_t>(-1) || i < j) i = j;
      continue;
    }
    const bool in_class = !scopes.empty() && scopes.back().kind == 1;
    if (in_class && tok.kind == TokKind::kIdent &&
        (tok.text == "FCR_GUARDED_BY" || tok.text == "FCR_PT_GUARDED_BY") &&
        i + 1 < n && t[i + 1].punct("(")) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      if (close != npos && i >= 1 && t[i - 1].kind == TokKind::kIdent) {
        std::string mx;
        for (std::size_t a = i + 2; a < close; ++a) {
          if (t[a].kind == TokKind::kIdent && t[a].text != "this") {
            mx = t[a].text;
          }
        }
        if (!mx.empty()) {
          fields.push_back({prefix(), t[i - 1].text, mx, t[i - 1].line});
        }
        i = close + 1;
        continue;
      }
    }
    if (tok.kind == TokKind::kIdent || tok.punct("~")) {
      RawFunction rf;
      const std::size_t resume = try_function(t, i, prefix(), in_class, rf);
      if (resume != npos) {
        rf.facts.is_virtual = rf.facts.is_virtual || saw_virtual;
        saw_virtual = false;
        fns.push_back(std::move(rf));
        i = resume;
        continue;
      }
    }
    ++i;
  }
}

/// Receiver of a member access `X.f` / `X->f` where the member name sits at
/// `m`: the index of the identifier before the ./->, looking through a
/// trailing [index] or (call) group. Returns npos when there is no
/// resolvable receiver identifier ("this" IS returned, as its own index).
inline std::size_t receiver_index(const std::vector<Token>& t, std::size_t lo,
                                  std::size_t m) {
  if (m < lo + 2) return npos;
  if (!t[m - 1].punct(".") && !t[m - 1].punct("->")) return npos;
  std::size_t r = m - 2;
  if (t[r].punct("]") || t[r].punct(")")) {
    const bool sq = t[r].punct("]");
    const std::size_t open = fcrlint::detail::match_backward(
        t, r, sq ? "[" : "(", sq ? "]" : ")");
    if (open == npos || open <= lo) return npos;
    r = open - 1;
  }
  if (t[r].kind == TokKind::kIdent &&
      (!keyword(t[r].text) || t[r].text == "this")) {
    return r;
  }
  return npos;
}

/// True when the receiver at `r` is the root of its access chain (not itself
/// reached through ./->, as the middle of `a->b.c` would be).
inline bool chain_root(const std::vector<Token>& t, std::size_t lo,
                       std::size_t r) {
  return r <= lo || (!t[r - 1].punct(".") && !t[r - 1].punct("->"));
}

/// Scans a token range for `Type name` declarations (parameters and local
/// variables) and records name -> last type component. Qualifier chains keep
/// the final component (`fcr::sim::CheckpointData d` -> "CheckpointData");
/// `auto` and template-dependent declarations record nothing.
inline void collect_typed_decls(const std::vector<Token>& t, std::size_t lo,
                                std::size_t hi,
                                std::map<std::string, std::string>& typed) {
  for (std::size_t m = lo; m < hi; ++m) {
    const Token& tok = t[m];
    if (tok.kind != TokKind::kIdent || keyword(tok.text) ||
        !is_upper(tok.text[0])) {
      continue;
    }
    std::string type = tok.text;
    std::size_t a = m + 1;
    if (a < hi && t[a].punct("<")) {
      const std::size_t after = skip_angles(t, a);
      if (after == npos) continue;
      a = after;
    }
    while (a + 1 < hi && t[a].punct("::") && t[a + 1].kind == TokKind::kIdent) {
      type = t[a + 1].text;
      a += 2;
      if (a < hi && t[a].punct("<")) {
        const std::size_t after = skip_angles(t, a);
        if (after == npos) {
          a = hi;
          break;
        }
        a = after;
      }
    }
    while (a < hi && (t[a].punct("&") || t[a].punct("&&") || t[a].punct("*") ||
                      t[a].ident("const"))) {
      ++a;
    }
    if (a >= hi || t[a].kind != TokKind::kIdent || keyword(t[a].text)) continue;
    const Token* after = a + 1 < hi ? &t[a + 1] : nullptr;
    const bool decl_like = after == nullptr || after->punct(";") ||
                           after->punct(",") || after->punct(")") ||
                           after->punct("=") || after->punct("(") ||
                           after->punct("{") || after->punct("[");
    if (decl_like) typed[t[a].text] = type;
    m = a;  // resume past the declarator name
  }
}

/// Scans one function body for calls, locks, allocations, throws, Rng
/// construction sites, and member accesses.
inline void scan_body(const std::vector<Token>& t, RawFunction& rf,
                      const std::set<std::string>& file_guarded,
                      std::set<std::string>& reserved_out) {
  FunctionFacts& f = rf.facts;
  std::set<std::string> locals;          // declared container locals
  std::set<std::string> local_reserved;  // locals reserve()d in-function
  static const std::set<std::string_view> kContainers = {
      "vector", "deque", "basic_string", "map", "multimap", "set", "multiset",
      "unordered_map", "unordered_multimap", "unordered_set",
      "unordered_multiset", "list", "forward_list", "queue", "priority_queue",
      "stack"};
  static const std::set<std::string_view> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front", "insert",
      "emplace", "append", "push"};
  static const std::set<std::string_view> kReserve = {
      "reserve", "resize", "assign", "clear", "shrink_to_fit"};
  const std::size_t lo = rf.body_begin;
  const std::size_t hi = rf.body_end;

  // Declared types of parameters and locals, so a qualified access through a
  // typed receiver can be matched against the guarded field's class.
  std::map<std::string, std::string> typed;
  collect_typed_decls(t, rf.params_begin, rf.params_end, typed);
  collect_typed_decls(t, lo, hi, typed);

  auto dedup_access = [&](std::size_t tok_idx, int line, bool qualified,
                          const std::string& name,
                          const std::string& receiver = std::string{},
                          const std::string& recv_type = std::string{}) {
    for (const Access& a : f.accesses) {
      if (a.name == name && a.qualified == qualified && a.line == line) return;
    }
    f.accesses.push_back({line, qualified, name, receiver, recv_type, {},
                          tok_idx});
  };

  for (std::size_t m = lo; m < hi; ++m) {
    const Token& tok = t[m];
    if (tok.kind != TokKind::kIdent) continue;
    const std::string& s = tok.text;
    const Token* nx = m + 1 < hi ? &t[m + 1] : nullptr;
    const Token* pv = m > lo ? &t[m - 1] : nullptr;

    if (s == "throw") {
      std::string head;
      std::size_t a = m + 1;
      while (a < hi && (t[a].kind == TokKind::kIdent || t[a].punct("::"))) {
        head += t[a].text;
        ++a;
      }
      f.throw_sites.push_back({tok.line, head});
      continue;
    }
    if (s == "new") {
      std::size_t a = m + 1;
      if (a < hi && t[a].punct("(")) {  // placement new
        const std::size_t close = match_forward(t, a, "(", ")");
        if (close == npos) continue;
        a = close + 1;
      }
      std::string what;
      while (a < hi && (t[a].kind == TokKind::kIdent || t[a].punct("::"))) {
        if (t[a].kind == TokKind::kIdent) what = t[a].text;
        ++a;
      }
      f.allocs.push_back(
          {AllocSite::kNew, tok.line, what.empty() ? std::string("object") : what});
      continue;
    }
    if (s == "MutexLock" && nx != nullptr) {
      std::size_t a = m + 1;
      if (a < hi && t[a].kind == TokKind::kIdent) ++a;  // lock variable name
      if (a < hi && (t[a].punct("(") || t[a].punct("{"))) {
        const bool paren = t[a].punct("(");
        const std::size_t close =
            match_forward(t, a, paren ? "(" : "{", paren ? ")" : "}");
        if (close != npos) {
          std::string mx;
          for (std::size_t b = a + 1; b < close; ++b) {
            if (t[b].kind == TokKind::kIdent && t[b].text != "this") {
              mx = t[b].text;
            }
          }
          if (!mx.empty()) f.locks.push_back(mx);
          m = close;
          continue;
        }
      }
      continue;
    }
    if (starts_with(s, "FCR_ASSERT") && nx != nullptr && nx->punct("(")) {
      const std::size_t close = match_forward(t, m + 1, "(", ")");
      if (close != npos) {
        for (std::size_t b = m + 2; b < close; ++b) {
          if (t[b].kind == TokKind::kIdent && t[b].text != "this") {
            f.locks.push_back(t[b].text);
          }
        }
        m = close;
      }
      continue;
    }
    if (s == "Rng" && nx != nullptr && nx->kind == TokKind::kIdent) {
      const std::size_t name_i = m + 1;
      const std::size_t a = name_i + 1;
      int kind = -1;
      std::size_t init_b = npos, init_e = npos;
      if (a >= hi || t[a].punct(";") || t[a].punct(",") || t[a].punct(")")) {
        // `Rng r;` default-constructs with the baked-in seed — ambient.
        // (`Rng r,`/`Rng r)` only occur in parameter-like positions inside
        // lambdas; treat them as ambient-free and skip.)
        kind = (a >= hi || t[a].punct(";")) ? RngSite::kAmbient : -2;
      } else if (t[a].punct("(") || t[a].punct("{")) {
        const bool paren = t[a].punct("(");
        const std::size_t close =
            match_forward(t, a, paren ? "(" : "{", paren ? ")" : "}");
        if (close != npos) {
          init_b = a + 1;
          init_e = close;
        }
      } else if (t[a].punct("=")) {
        init_b = a + 1;
        init_e = init_b;
        int depth = 0;
        while (init_e < hi) {
          const Token& te = t[init_e];
          if (te.punct("(") || te.punct("{") || te.punct("[")) ++depth;
          else if (te.punct(")") || te.punct("}") || te.punct("]")) --depth;
          else if (te.punct(";") && depth == 0) break;
          ++init_e;
        }
      }
      if (kind == -1 && init_b != npos) {
        bool split = false, seedish = false, entropy = false, any_var = false;
        for (std::size_t b = init_b; b < init_e; ++b) {
          if (t[b].kind != TokKind::kIdent) continue;
          const std::string& id = t[b].text;
          if (id == "split") split = true;
          std::string low;
          for (const char c : id) {
            low += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
          }
          if (low.find("seed") != std::string::npos) seedish = true;
          if (id == "random_device" || id == "now" || id == "time") {
            entropy = true;
          }
          if (!keyword(id) && id != "std" && id != "fcr") any_var = true;
        }
        kind = split     ? RngSite::kSplit
               : entropy ? RngSite::kAmbient
               : seedish ? RngSite::kSeedRoot
               : any_var ? RngSite::kDerived
                         : RngSite::kAmbient;  // literal-only or empty init
      }
      if (kind >= 0) f.rngs.push_back({kind, tok.line, t[name_i].text});
      continue;
    }
    // Container local declarations: vector<...> name [({...})]
    if (kContainers.count(s) != 0 && nx != nullptr && nx->punct("<")) {
      const std::size_t after = skip_angles(t, m + 1);
      if (after != npos && after < hi && t[after].kind == TokKind::kIdent &&
          !keyword(t[after].text)) {
        const std::string& var = t[after].text;
        locals.insert(var);
        if (after + 1 < hi && (t[after + 1].punct("(") || t[after + 1].punct("{"))) {
          const bool paren = t[after + 1].punct("(");
          const std::size_t close = match_forward(
              t, after + 1, paren ? "(" : "{", paren ? ")" : "}");
          if (close != npos) {
            if (close > after + 2) {
              f.allocs.push_back({AllocSite::kLocalCtor, t[after].line, var});
            }
            m = close;
            continue;
          }
        }
        m = after;
        continue;
      }
    }
    // make_unique<T>(...) / make_shared<T>(...)
    if ((s == "make_unique" || s == "make_shared") && nx != nullptr &&
        (nx->punct("<") || nx->punct("("))) {
      std::string what = s;
      if (nx->punct("<")) {
        const std::size_t after = skip_angles(t, m + 1);
        for (std::size_t b = m + 2; after != npos && b + 1 < after; ++b) {
          if (t[b].kind == TokKind::kIdent && !keyword(t[b].text) &&
              t[b].text != "std" && t[b].text != "fcr") {
            what = t[b].text;
            break;
          }
        }
      }
      f.allocs.push_back({AllocSite::kMakeSmart, tok.line, what});
      continue;
    }
    // Calls.
    if (nx != nullptr && nx->punct("(")) {
      if (keyword(s)) continue;
      // `Type name(...)` declarations are not calls; the previous token of a
      // genuine call is an operator, ';', '{', '}', '(' — not a plain
      // identifier or a template '>'.
      const bool decl_like =
          pv != nullptr &&
          ((pv->kind == TokKind::kIdent && !keyword(pv->text)) || pv->punct(">"));
      const std::size_t ri = receiver_index(t, lo, m);
      const std::string receiver = ri == npos ? std::string{} : t[ri].text;
      if (!receiver.empty() && receiver != "this") {
        if (kGrowth.count(s) != 0) {
          if (locals.count(receiver) != 0) {
            if (local_reserved.count(receiver) == 0) {
              f.allocs.push_back({AllocSite::kLocalGrowth, tok.line, receiver});
            }
          } else {
            f.allocs.push_back({AllocSite::kGrowth, tok.line, receiver});
          }
        } else if (kReserve.count(s) != 0) {
          if (locals.count(receiver) != 0) {
            local_reserved.insert(receiver);
          } else {
            reserved_out.insert(receiver);
          }
        } else if (s == "lock") {
          f.locks.push_back(receiver);
        }
        // The receiver itself is a data access — but only when it roots the
        // chain (the middle of `a->b.c(` is not a bare name in scope).
        if (chain_root(t, lo, ri)) {
          dedup_access(ri, tok.line, false,
                       receiver);  // bare name feeding a member call
        }
      }
      if (!decl_like) {
        std::string callee = s;
        if (pv != nullptr && pv->punct("::") && m >= lo + 2 &&
            t[m - 2].kind == TokKind::kIdent) {
          callee = t[m - 2].text + "::" + s;
          if (m >= lo + 4 && t[m - 3].punct("::") &&
              t[m - 4].kind == TokKind::kIdent) {
            callee = t[m - 4].text + "::" + callee;
          }
        }
        f.calls.push_back({tok.line, receiver, callee, 0, {}, m});
      }
      continue;
    }
    // Data accesses (identifier not followed by a call).
    if (keyword(s)) continue;
    const bool qualified = pv != nullptr && (pv->punct(".") || pv->punct("->"));
    const bool scoped = (pv != nullptr && pv->punct("::")) ||
                        (nx != nullptr && nx->punct("::"));
    if (qualified) {
      const std::size_t ri = receiver_index(t, lo, m);
      const std::string recv = ri == npos ? std::string{} : t[ri].text;
      std::string rtype;
      if (!recv.empty() && recv != "this") {
        const auto it = typed.find(recv);
        if (it != typed.end()) rtype = it->second;
      }
      dedup_access(m, tok.line, true, s, recv, rtype);
    } else if (!scoped && ((!s.empty() && s.back() == '_') ||
                           file_guarded.count(s) != 0 ||
                           (!f.cls.empty() && !is_upper(s[0])))) {
      dedup_access(m, tok.line, false, s);
    }
  }
}

// ---------------------------------------------------------------------------
// v4 flow analysis: CFG + dataflow facts per function.
// ---------------------------------------------------------------------------

/// ColumnarState bitmask columns, indexed by word (lane >> 6). `decisions`
/// is the engine-owned decide-pass buffer with the same layout.
inline bool word_column(std::string_view s) {
  return s == "active" || s == "decisions";
}

/// ColumnarState per-node columns, indexed by lane id.
inline bool element_column(std::string_view s) {
  return s == "probability" || s == "phase" || s == "aux" || s == "rng";
}

inline bool known_column(std::string_view s) {
  return word_column(s) || element_column(s);
}

/// Assignment-flavored operator: the preceding subscript is a write.
inline bool write_op(const Token& tok) {
  if (tok.kind != TokKind::kPunct) return false;
  const std::string& s = tok.text;
  if (s == "=") return true;
  return s.size() >= 2 && s.back() == '=' && s != "==" && s != "!=" &&
         s != "<=" && s != ">=";
}

/// The v4 per-function flow pass. Builds the CFG over the body and derives
/// everything the three path-sensitive rules consume:
///
///   * per-site must-held locksets on every call site and data access
///     (lockset-path), seeded from the declarator's FCR_REQUIRES locks —
///     `decl_lock_count` says how many of facts.locks came from the
///     declarator rather than scan_body's whole-extent collection;
///   * columnar column accesses with their index class (lane / word / whole
///     / other), inferred from loop induction variables: a for bound
///     mentioning node_count enumerates lanes, one mentioning a word
///     column's size() enumerates words, countr_zero marks word-sweep bit
///     extraction, and `w * 64 + b` reconstitutes a lane id;
///   * RNG draw sites with their gate (max taint of enclosing non-loop
///     guards: 0 round-uniform, 1 active-mask-derived, 2 lane-varying);
///   * the per-node draw-count interval [draw_min, draw_max]: each lane
///     loop's body is re-solved as a sub-CFG under the CountRange lattice,
///     and path-dependent counts, draws in non-lane loops, and lane-varying
///     gates become PurityIssues;
///   * definite-init hazards: a must-initialized dataflow over container
///     locals and in-function sized receivers, flagging subscript/back/
///     front reads on paths where no resize/assign/reserve dominates.
inline void analyze_flow(const std::vector<Token>& t, RawFunction& rf,
                         std::size_t decl_lock_count) {
  FunctionFacts& f = rf.facts;
  const std::size_t lo = rf.body_begin;
  const std::size_t hi = rf.body_end;
  const cfg::Cfg g = cfg::build_cfg(t, lo, hi);

  // --- per-site must-held locksets ---
  dataflow::MustSet lock_entry;
  for (std::size_t i = 0; i < decl_lock_count && i < f.locks.size(); ++i) {
    lock_entry.insert(f.locks[i]);
  }
  const auto lock_in = dataflow::solve_forward<dataflow::MustSet>(
      g, lock_entry,
      [&g](std::size_t b, const dataflow::MustSet& in) {
        return dataflow::apply_lock_events(g.blocks[b], in);
      },
      dataflow::must_join);
  auto held_for = [&](std::size_t tok) {
    std::vector<std::string> held;
    const std::size_t b = tok == npos ? npos : g.block_of(tok);
    if (b == npos || !lock_in[b].has_value()) {
      held.assign(lock_entry.begin(), lock_entry.end());
      return held;
    }
    const dataflow::MustSet at =
        dataflow::held_at(g.blocks[b], *lock_in[b], tok);
    held.assign(at.begin(), at.end());
    return held;
  };
  for (CallSite& c : f.calls) c.held = held_for(c.tok);
  for (Access& a : f.accesses) a.held = held_for(a.tok);

  // --- index-variable classification ---
  std::set<std::string> lane_vars, word_vars, bit_vars, mask_vars;
  auto first_ident = [&](cfg::Span s) -> std::string {
    for (std::size_t m = s.lo; m < s.hi && m < t.size(); ++m) {
      if (t[m].kind == TokKind::kIdent && !keyword(t[m].text)) {
        return t[m].text;
      }
    }
    return {};
  };
  auto span_mentions = [&](cfg::Span s, auto&& pred) {
    for (std::size_t m = s.lo; m < s.hi && m < t.size(); ++m) {
      if (t[m].kind == TokKind::kIdent &&
          pred(std::string_view(t[m].text))) {
        return true;
      }
    }
    return false;
  };
  for (const cfg::Loop& L : g.loops) {
    if (L.kind != cfg::Guard::kFor) continue;
    const std::string var = first_ident(L.cond);
    if (var.empty()) continue;
    const bool lane_bound = span_mentions(
        L.cond, [](std::string_view s) { return s == "node_count"; });
    const bool word_bound =
        span_mentions(L.cond,
                      [](std::string_view s) { return word_column(s); }) &&
        span_mentions(L.cond, [](std::string_view s) { return s == "size"; });
    if (lane_bound) {
      lane_vars.insert(var);
    } else if (word_bound) {
      word_vars.insert(var);
    }
  }
  // Derived index variables: `b = countr_zero(bits)` is a bit offset,
  // `id = w * 64 + b` reconstitutes a lane, a copy of a word column's word
  // (`bits = active[w]`) is an active-derived mask. Two passes so the
  // derivations may appear in any order.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t m = lo; m + 1 < hi; ++m) {
      if (t[m].kind != TokKind::kIdent || keyword(t[m].text) ||
          !t[m + 1].punct("=")) {
        continue;
      }
      std::size_t e = m + 2;
      int depth = 0;
      while (e < hi) {
        const Token& te = t[e];
        if (te.punct("(") || te.punct("[") || te.punct("{")) ++depth;
        else if (te.punct(")") || te.punct("]") || te.punct("}")) --depth;
        else if (depth <= 0 && te.punct(";")) break;
        ++e;
      }
      const cfg::Span rhs{m + 2, e};
      const std::string& name = t[m].text;
      if (span_mentions(rhs, [](std::string_view s) {
            return s == "countr_zero";
          })) {
        bit_vars.insert(name);
      } else if (span_mentions(rhs,
                               [&](std::string_view s) {
                                 return word_vars.count(std::string(s)) != 0;
                               }) &&
                 span_mentions(rhs, [&](std::string_view s) {
                   return bit_vars.count(std::string(s)) != 0;
                 })) {
        lane_vars.insert(name);
      } else if (span_mentions(rhs, [](std::string_view s) {
                   return word_column(s);
                 })) {
        mask_vars.insert(name);
      }
    }
  }
  auto classify_index = [&](std::size_t open, std::size_t close) -> int {
    bool lane = false, word = false, other = false, shifted = false;
    for (std::size_t m = open + 1; m < close; ++m) {
      const Token& tok = t[m];
      if (tok.punct(">>")) shifted = true;
      if (tok.kind != TokKind::kIdent || keyword(tok.text)) continue;
      const std::string& id = tok.text;
      if (lane_vars.count(id) != 0 || bit_vars.count(id) != 0) {
        lane = true;
      } else if (word_vars.count(id) != 0) {
        word = true;
      } else if (id == "std" || id == "size_t" || is_upper(id[0])) {
        continue;  // namespace / cast-target type names are index-neutral
      } else {
        other = true;
      }
    }
    if (other) return ColAccess::kOther;
    if (lane) return shifted ? ColAccess::kWord : ColAccess::kLane;
    if (word) return ColAccess::kWord;
    return ColAccess::kOther;  // constant or empty index
  };

  // --- columnar column accesses ---
  for (std::size_t m = lo; m < hi; ++m) {
    const Token& tok = t[m];
    if (tok.kind != TokKind::kIdent || !known_column(tok.text)) continue;
    const Token* nx = m + 1 < hi ? &t[m + 1] : nullptr;
    if (nx != nullptr && nx->punct("[")) {
      const std::size_t close = match_forward(t, m + 1, "[", "]");
      if (close == npos || close >= hi) continue;
      const int index_class = classify_index(m + 1, close);
      const int write = close + 1 < hi && write_op(t[close + 1]) ? 1 : 0;
      f.cols.push_back({tok.line, tok.text, write, index_class});
      continue;
    }
    if (nx != nullptr && (nx->punct(".") || nx->punct("->")) && m + 3 < hi &&
        t[m + 2].kind == TokKind::kIdent && t[m + 3].punct("(")) {
      const std::string& op = t[m + 2].text;
      if (op == "assign" || op == "fill" || op == "resize" || op == "clear") {
        f.cols.push_back({tok.line, tok.text, 1, ColAccess::kWhole});
      }
    }
  }
  for (const cfg::Loop& L : g.loops) {
    if (L.kind != cfg::Guard::kRangeFor) continue;
    for (std::size_t m = L.cond.lo; m < L.cond.hi && m < t.size(); ++m) {
      if (t[m].kind == TokKind::kIdent && known_column(t[m].text)) {
        f.cols.push_back({t[m].line, t[m].text, 0, ColAccess::kWhole});
        break;
      }
    }
  }

  // --- gates ---
  auto guard_taint = [&](const cfg::Guard& gd) -> int {
    if (gd.is_loop()) return 0;
    if (span_mentions(gd.cond, [&](std::string_view s) {
          const std::string id(s);
          return lane_vars.count(id) != 0 || bit_vars.count(id) != 0 ||
                 element_column(s);
        })) {
      return 2;
    }
    if (span_mentions(gd.cond, [&](std::string_view s) {
          const std::string id(s);
          return word_vars.count(id) != 0 || mask_vars.count(id) != 0 ||
                 word_column(s);
        })) {
      return 1;
    }
    return 0;
  };
  auto gate_of = [&](std::size_t tok) -> int {
    const std::size_t b = tok == npos ? npos : g.block_of(tok);
    if (b == npos) return 0;
    int gate = 0;
    for (const std::size_t gid : g.blocks[b].guards) {
      gate = std::max(gate, guard_taint(g.guard_table[gid]));
    }
    return gate;
  };

  // --- RNG draw sites ---
  std::map<std::string, std::string> typed;
  collect_typed_decls(t, rf.params_begin, rf.params_end, typed);
  collect_typed_decls(t, lo, hi, typed);
  std::vector<std::size_t> draw_toks;
  for (CallSite& c : f.calls) {
    c.gate = gate_of(c.tok);
    if (c.callee == "split") continue;  // const: does not advance the stream
    const auto ty = typed.find(c.receiver);
    const bool rng_recv = c.receiver == "rng" || c.receiver == "rng_" ||
                          (ty != typed.end() && ty->second == "Rng");
    if (!rng_recv) continue;
    f.draws.push_back({c.line, c.gate});
    draw_toks.push_back(c.tok);
  }

  // --- per-lane draw-count certification ---
  auto is_lane_loop = [&](const cfg::Loop& L) -> bool {
    if (L.kind == cfg::Guard::kFor) {
      const std::string var = first_ident(L.cond);
      return !var.empty() && lane_vars.count(var) != 0;
    }
    if (L.kind == cfg::Guard::kWhile || L.kind == cfg::Guard::kDoWhile) {
      // Word-sweep enumeration: the body extracts lane bits via countr_zero.
      return span_mentions(L.body, [](std::string_view s) {
        return s == "countr_zero";
      });
    }
    return false;
  };
  auto is_word_loop = [&](const cfg::Loop& L) -> bool {
    if (L.kind != cfg::Guard::kFor) return false;
    const std::string var = first_ident(L.cond);
    return !var.empty() && word_vars.count(var) != 0;
  };
  auto count_draws_in = [&](const cfg::Cfg& sub,
                            const std::vector<std::size_t>& toks) {
    const auto in = dataflow::solve_forward<dataflow::CountRange>(
        sub, dataflow::CountRange{},
        [&](std::size_t b, const dataflow::CountRange& fact) {
          int n = 0;
          for (const cfg::Event& e : sub.blocks[b].events) {
            if (e.kind != cfg::Event::kSpan) continue;
            for (const std::size_t d : toks) {
              if (e.span.contains(d)) ++n;
            }
          }
          return dataflow::count_add(fact, n);
        },
        dataflow::count_join);
    return in[sub.exit].has_value() ? *in[sub.exit] : dataflow::CountRange{};
  };
  auto add_interval = [&](int mn, int mx) {
    f.draw_min = std::min(f.draw_min + mn, dataflow::kCountSaturated);
    f.draw_max = std::min(f.draw_max + mx, dataflow::kCountSaturated);
  };

  std::map<std::size_t, std::vector<std::size_t>> by_loop;
  std::vector<std::size_t> free_draws;
  for (const std::size_t d : draw_toks) {
    if (d == npos) continue;
    const std::size_t li = g.innermost_loop(d);
    if (li != npos) {
      by_loop[li].push_back(d);
      continue;
    }
    bool in_cond = false;
    for (const cfg::Loop& L : g.loops) {
      if (L.cond.contains(d)) {
        in_cond = true;
        break;
      }
    }
    if (in_cond) {
      f.purity.push_back({t[d].line, "RNG draw inside a loop condition"});
      f.draw_max = dataflow::kCountSaturated;
      continue;
    }
    free_draws.push_back(d);
  }
  for (const auto& [li, toks] : by_loop) {
    const cfg::Loop& L = g.loops[li];
    const int line = t[toks.front()].line;
    if (!is_lane_loop(L)) {
      f.purity.push_back(
          {line,
           "RNG draw inside a loop that does not enumerate lanes — the "
           "per-node draw count is not certifiable"});
      add_interval(0, dataflow::kCountSaturated);
      continue;
    }
    // Every loop surrounding a lane loop must enumerate words, or lanes may
    // be visited more than once per round.
    for (std::size_t outer = g.enclosing_loop(li); outer != npos;
         outer = g.enclosing_loop(outer)) {
      if (!is_word_loop(g.loops[outer])) {
        f.purity.push_back(
            {line,
             "lane draw loop nested inside a non-word loop — lanes may be "
             "visited more than once per round"});
        break;
      }
    }
    const cfg::Cfg sub = cfg::build_cfg(t, L.body.lo, L.body.hi);
    const dataflow::CountRange per_iter = count_draws_in(sub, toks);
    if (per_iter.min != per_iter.max) {
      f.purity.push_back({line,
                          "per-node RNG draw count is path-dependent (" +
                              std::to_string(per_iter.min) + ".." +
                              std::to_string(per_iter.max) +
                              " draws per lane)"});
    }
    // A round-uniform or active-derived gate outside the loop keeps lanes
    // in sync (all draw or none draw) but makes the round conditional; a
    // lane-varying gate breaks batching outright.
    const std::size_t db = g.block_of(toks.front());
    bool outer_gated = false;
    if (db != npos) {
      for (const std::size_t gid : g.blocks[db].guards) {
        const cfg::Guard& gd = g.guard_table[gid];
        if (gd.is_loop() || gd.cond.lo >= L.body.lo) continue;
        outer_gated = true;
        if (guard_taint(gd) == 2) {
          f.purity.push_back(
              {line, "lane draw loop gated on a lane-varying condition"});
        }
      }
    }
    add_interval(outer_gated ? 0 : per_iter.min, per_iter.max);
  }
  if (!free_draws.empty()) {
    const dataflow::CountRange fr = count_draws_in(g, free_draws);
    if (fr.min != fr.max) {
      f.purity.push_back({t[free_draws.front()].line,
                          "RNG draw count outside loops is path-dependent (" +
                              std::to_string(fr.min) + ".." +
                              std::to_string(fr.max) + " draws)"});
    }
    add_interval(fr.min, fr.max);
  }

  // --- definite-init ---
  std::set<std::string> params;
  for (std::size_t m = rf.params_begin; m < rf.params_end && m < t.size();
       ++m) {
    if (t[m].kind == TokKind::kIdent && !keyword(t[m].text)) {
      params.insert(t[m].text);
    }
  }
  // clear() is deliberately absent: it empties the container, so it neither
  // establishes size nor reads elements (a subscript after clear() is
  // precisely the bug class this rule exists for).
  static const std::set<std::string_view> kInitCalls = {
      "resize", "assign",       "reserve", "push_back",
      "insert", "emplace_back", "emplace", "append", "push", "fill"};
  static const std::set<std::string_view> kReadCalls = {"back", "front", "at"};
  static const std::set<std::string_view> kInitContainers = {
      "vector", "deque", "basic_string", "string"};
  std::set<std::string> candidates;
  for (std::size_t m = lo; m + 1 < hi; ++m) {
    if (t[m].kind != TokKind::kIdent ||
        kInitContainers.count(t[m].text) == 0 || !t[m + 1].punct("<")) {
      continue;
    }
    const std::size_t after = skip_angles(t, m + 1);
    if (after != npos && after < hi && t[after].kind == TokKind::kIdent &&
        !keyword(t[after].text)) {
      candidates.insert(t[after].text);
    }
  }
  for (const CallSite& c : f.calls) {
    if (!c.receiver.empty() && c.receiver != "this" &&
        kInitCalls.count(c.callee) != 0) {
      candidates.insert(c.receiver);
    }
  }
  for (const std::string& p : params) candidates.erase(p);
  if (!candidates.empty()) {
    // Gen rule: sized/assigning member calls, whole assignment, a sized
    // declaration, or any other mention (passing by reference to a filler
    // counts — the analysis only flags reads no mention could have fed).
    // Use rule: subscripts and back/front/at.
    auto replay_span = [&](cfg::Span s, dataflow::MustSet& in,
                           std::vector<InitHazard>* hazards,
                           std::set<std::pair<std::string, int>>* seen) {
      for (std::size_t m = s.lo; m < s.hi && m < t.size(); ++m) {
        if (t[m].kind != TokKind::kIdent) continue;
        const std::string& name = t[m].text;
        if (candidates.count(name) == 0) continue;
        const Token* nx = m + 1 < hi ? &t[m + 1] : nullptr;
        if (nx != nullptr && nx->punct("[")) {
          if (in.count(name) == 0 && hazards != nullptr &&
              seen->insert({name, t[m].line}).second) {
            hazards->push_back({t[m].line, name});
          }
          continue;  // a subscript never establishes size
        }
        if (nx != nullptr && (nx->punct(".") || nx->punct("->")) &&
            m + 2 < t.size() && t[m + 2].kind == TokKind::kIdent) {
          const std::string& member = t[m + 2].text;
          if (kReadCalls.count(member) != 0) {
            if (in.count(name) == 0 && hazards != nullptr &&
                seen->insert({name, t[m].line}).second) {
              hazards->push_back({t[m].line, name});
            }
          } else if (kInitCalls.count(member) != 0 || member == "size" ||
                     member == "empty" || member == "capacity") {
            // Sizing calls establish the size; consulting size()/empty()
            // is positive evidence the code handles the empty case (the
            // guard polarity is beyond a must-set lattice), so both count
            // as initialization. clear() and the rest stay neutral.
            in.insert(name);
          }
          ++m;  // skip past the accessor so it is not treated as a mention
          continue;
        }
        in.insert(name);
      }
    };
    const auto init_in = dataflow::solve_forward<dataflow::MustSet>(
        g, dataflow::MustSet{},
        [&](std::size_t b, const dataflow::MustSet& in) {
          dataflow::MustSet out = in;
          for (const cfg::Event& e : g.blocks[b].events) {
            if (e.kind == cfg::Event::kSpan) {
              replay_span(e.span, out, nullptr, nullptr);
            }
          }
          return out;
        },
        dataflow::must_join);
    std::set<std::pair<std::string, int>> seen;
    for (std::size_t b = 0; b < g.blocks.size(); ++b) {
      if (!init_in[b].has_value()) continue;
      dataflow::MustSet cur = *init_in[b];
      for (const cfg::Event& e : g.blocks[b].events) {
        if (e.kind == cfg::Event::kSpan) {
          replay_span(e.span, cur, &f.init_hazards, &seen);
        }
      }
    }
    std::sort(f.init_hazards.begin(), f.init_hazards.end(),
              [](const InitHazard& a, const InitHazard& b) {
                return a.line != b.line ? a.line < b.line : a.name < b.name;
              });
  }
}

}  // namespace extdetail

/// Extracts the per-file program facts from a lexed token stream. `path` is
/// the repo-relative path; only src/ files are expected here (the caller
/// scopes the model to the library tree).
inline FileModel extract(const std::string& path,
                         const std::vector<Token>& toks) {
  (void)path;
  FileModel fm;
  // Filter to significant, non-preprocessor tokens: macro definitions are
  // not part of the parsed program (their bodies reference parameters, not
  // live state) and directive operands would desync the scope stack.
  std::vector<Token> t;
  t.reserve(toks.size());
  for (const Token& tok : toks) {
    if (tok.comment() || tok.pp) continue;
    t.push_back(tok);
  }

  std::vector<extdetail::RawFunction> raw;
  extdetail::parse_structure(t, raw, fm.fields, fm.classes);

  std::set<std::string> file_guarded;
  for (const GuardedField& g : fm.fields) file_guarded.insert(g.name);

  std::set<std::string> reserved;
  for (extdetail::RawFunction& rf : raw) {
    if (rf.facts.is_definition && rf.body_end > rf.body_begin) {
      // Locks recorded before body scanning came from the declarator
      // (FCR_REQUIRES & co) and hold over the whole body: they seed the
      // branch-aware lockset's entry fact.
      const std::size_t decl_locks = rf.facts.locks.size();
      extdetail::scan_body(t, rf, file_guarded, reserved);
      extdetail::analyze_flow(t, rf, decl_locks);
    }
    fm.functions.push_back(std::move(rf.facts));
  }
  fm.reserved.assign(reserved.begin(), reserved.end());

  std::set<std::string> types;
  for (const Token& tok : t) {
    if (tok.kind == TokKind::kIdent && !tok.text.empty() &&
        extdetail::is_upper(tok.text[0]) && !extdetail::keyword(tok.text)) {
      types.insert(tok.text);
    }
  }
  fm.types_mentioned.assign(types.begin(), types.end());
  return fm;
}

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------

/// One file's extracted facts plus its allows, as fed to the tree analyses.
struct TreeFile {
  std::string path;
  const FileModel* model = nullptr;
  const std::vector<Allow>* allows = nullptr;
};

struct ProgramFunction {
  FunctionFacts facts;
  std::string file;
  std::vector<std::size_t> callees;
  /// Per call site (parallel to facts.calls): the resolved target indices.
  /// A site with several entries is an unresolved overload set.
  std::vector<std::vector<std::size_t>> callee_sites;
};

struct ProgramModel {
  std::vector<ProgramFunction> fns;
  std::vector<std::pair<std::string, GuardedField>> fields;  // (file, field)
  std::set<std::string> reserved;  ///< receivers reserved/cleared anywhere
  std::map<std::string, std::set<std::string>> file_types;
  std::map<std::string, std::vector<std::string>> bases;  ///< by last name
  std::map<std::string, std::vector<std::size_t>> by_name;
};

namespace pmdetail {

inline std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// True when one qualified class name encloses or equals the other.
inline bool cls_related(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return false;
  if (a == b) return true;
  return fcrlint::detail::starts_with(a, b + "::") ||
         fcrlint::detail::starts_with(b, a + "::");
}

/// True when class `cls_last` — or one of its transitive bases — is
/// mentioned in `types`. Over-approximates virtual dispatch: a call through
/// a base pointer resolves to every derived override.
inline bool class_visible(const ProgramModel& pm,
                          const std::set<std::string>& types,
                          const std::string& cls_last) {
  std::vector<std::string> work = {cls_last};
  std::set<std::string> seen;
  while (!work.empty()) {
    const std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    if (types.count(cur) != 0) return true;
    const auto it = pm.bases.find(cur);
    if (it == pm.bases.end()) continue;
    for (const std::string& b : it->second) work.push_back(b);
  }
  return false;
}

}  // namespace pmdetail

/// Builds the cross-file model: merges declarations into definitions (a
/// header FCR_REQUIRES annotates the out-of-line body), resolves call edges,
/// and indexes guarded fields and reserved receivers.
inline ProgramModel build_program_model(const std::vector<TreeFile>& files) {
  ProgramModel pm;
  std::map<std::string, std::size_t> def_by_qualified;
  // Definitions first, then declarations merge into them.
  for (const TreeFile& f : files) {
    if (f.model == nullptr) continue;
    for (const FunctionFacts& fn : f.model->functions) {
      if (!fn.is_definition) continue;
      def_by_qualified.emplace(fn.qualified, pm.fns.size());
      pm.fns.push_back({fn, f.path, {}, {}});
    }
    for (const GuardedField& g : f.model->fields) {
      pm.fields.emplace_back(f.path, g);
    }
    for (const std::string& r : f.model->reserved) pm.reserved.insert(r);
    auto& types = pm.file_types[f.path];
    for (const std::string& ty : f.model->types_mentioned) types.insert(ty);
    for (const ClassDecl& c : f.model->classes) {
      auto& b = pm.bases[pmdetail::last_component(c.name)];
      for (const std::string& base : c.bases) {
        if (std::find(b.begin(), b.end(), base) == b.end()) b.push_back(base);
      }
    }
  }
  for (const TreeFile& f : files) {
    if (f.model == nullptr) continue;
    for (const FunctionFacts& fn : f.model->functions) {
      if (fn.is_definition) continue;
      const auto it = def_by_qualified.find(fn.qualified);
      if (it != def_by_qualified.end()) {
        auto& locks = pm.fns[it->second].facts.locks;
        for (const std::string& l : fn.locks) {
          if (std::find(locks.begin(), locks.end(), l) == locks.end()) {
            locks.push_back(l);
          }
        }
        // An in-class declaration carries the virtual/override marker the
        // out-of-line definition lacks.
        if (fn.is_virtual) pm.fns[it->second].facts.is_virtual = true;
      } else {
        pm.fns.push_back({fn, f.path, {}, {}});
      }
    }
  }
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    pm.by_name[pm.fns[i].facts.name].push_back(i);
  }
  // Call-edge resolution, recorded per call site so the path-sensitive
  // rules can reason about an individual site's lockset and gate.
  for (ProgramFunction& fn : pm.fns) {
    const std::set<std::string>& types = pm.file_types[fn.file];
    std::set<std::size_t> edges;
    fn.callee_sites.assign(fn.facts.calls.size(), {});
    for (std::size_t ci = 0; ci < fn.facts.calls.size(); ++ci) {
      const CallSite& c = fn.facts.calls[ci];
      std::set<std::size_t> site;
      const std::size_t sep = c.callee.rfind("::");
      if (sep != std::string::npos) {
        const std::string last = c.callee.substr(sep + 2);
        const auto it = pm.by_name.find(last);
        if (it == pm.by_name.end()) continue;
        for (const std::size_t idx : it->second) {
          const std::string& q = pm.fns[idx].facts.qualified;
          if (q == c.callee ||
              fcrlint::detail::ends_with(q, "::" + c.callee)) {
            site.insert(idx);
          }
        }
      } else {
        const auto it = pm.by_name.find(c.callee);
        if (it == pm.by_name.end()) continue;
        for (const std::size_t idx : it->second) {
          const std::string& cls = pm.fns[idx].facts.cls;
          if (cls.empty()) {  // free function: always a candidate
            site.insert(idx);
            continue;
          }
          if (pmdetail::cls_related(fn.facts.cls, cls)) {
            site.insert(idx);
            continue;
          }
          if (pmdetail::class_visible(pm, types,
                                      pmdetail::last_component(cls))) {
            site.insert(idx);
          }
        }
      }
      edges.insert(site.begin(), site.end());
      fn.callee_sites[ci].assign(site.begin(), site.end());
    }
    fn.callees.assign(edges.begin(), edges.end());
  }
  return pm;
}

/// BFS over call edges from `roots`. Returns a parent array: npos means
/// unreached, parent[i] == i marks a root, otherwise the predecessor on the
/// discovered path (the finding's witness chain).
inline std::vector<std::size_t> reach_parents(
    const ProgramModel& pm, const std::vector<std::size_t>& roots) {
  std::vector<std::size_t> parent(pm.fns.size(), npos);
  std::vector<std::size_t> queue;
  for (const std::size_t r : roots) {
    if (r < parent.size() && parent[r] == npos) {
      parent[r] = r;
      queue.push_back(r);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t cur = queue[head];
    for (const std::size_t next : pm.fns[cur].callees) {
      if (parent[next] != npos) continue;
      parent[next] = cur;
      queue.push_back(next);
    }
  }
  return parent;
}

/// Renders the witness chain root -> ... -> fns[idx] (at most 8 hops).
inline std::string witness_chain(const ProgramModel& pm,
                                 const std::vector<std::size_t>& parent,
                                 std::size_t idx) {
  std::vector<std::string> names;
  std::size_t cur = idx;
  for (int hops = 0; hops < 8 && cur != npos; ++hops) {
    names.push_back(pm.fns[cur].facts.qualified);
    if (parent[cur] == cur) break;
    cur = parent[cur];
  }
  std::string s;
  for (std::size_t i = names.size(); i-- > 0;) {
    if (!s.empty()) s += " -> ";
    s += names[i];
  }
  return s;
}

// ---------------------------------------------------------------------------
// Interprocedural rules.
// ---------------------------------------------------------------------------

namespace pmdetail {

inline const std::vector<Allow>& allows_of(const std::vector<TreeFile>& files,
                                           const std::string& path) {
  static const std::vector<Allow> kEmpty;
  for (const TreeFile& f : files) {
    if (f.path == path && f.allows != nullptr) return *f.allows;
  }
  return kEmpty;
}

/// Root indices whose qualified name ends with any of `suffixes` ("::"-
/// anchored) or whose plain name equals a suffix without "::".
inline std::vector<std::size_t> roots_matching(
    const ProgramModel& pm, const std::vector<std::string>& suffixes) {
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    for (const std::string& s : suffixes) {
      const bool hit =
          s.find("::") == std::string::npos
              ? fn.facts.name == s
              : (fn.facts.qualified == s ||
                 fcrlint::detail::ends_with(fn.facts.qualified, "::" + s));
      if (hit) {
        roots.push_back(i);
        break;
      }
    }
  }
  return roots;
}

}  // namespace pmdetail

/// lockset: a read/write of an FCR_GUARDED_BY(m) member is flagged unless
/// the accessing function — or some transitive caller — holds or requires
/// m. Field/access matching is conservative: an unqualified (or this->)
/// access must come from a method of a related class; an access through a
/// named receiver requires the receiver's declared type to match the
/// guarded class, so a same-named member of an unrelated struct never
/// matches.
inline std::vector<Finding> check_lockset(const ProgramModel& pm,
                                          const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  // covered[mutex] = functions running with `mutex` held on every discovered
  // path: the holders themselves plus everything they (transitively) call.
  std::map<std::string, std::vector<std::size_t>> holders;
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    for (const std::string& l : pm.fns[i].facts.locks) holders[l].push_back(i);
  }
  std::map<std::string, std::vector<std::size_t>> covered;
  for (const auto& [mx, hs] : holders) covered[mx] = reach_parents(pm, hs);

  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (!fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/")) {
      continue;
    }
    std::set<std::string> reported;
    for (const Access& a : fn.facts.accesses) {
      bool eligible = false;
      bool ok = false;
      std::string mutex_name;
      for (const auto& [ffile, fld] : pm.fields) {
        if (fld.name != a.name) continue;
        const bool related = pmdetail::cls_related(fn.facts.cls, fld.cls);
        bool elig;
        if (!a.qualified || a.receiver == "this") {
          elig = related;
        } else {
          elig = !a.recv_type.empty() &&
                 a.recv_type == pmdetail::last_component(fld.cls);
        }
        if (!elig) continue;
        eligible = true;
        mutex_name = fld.mutex;
        const bool held =
            std::find(fn.facts.locks.begin(), fn.facts.locks.end(),
                      fld.mutex) != fn.facts.locks.end();
        const auto cov = covered.find(fld.mutex);
        const bool via_caller =
            cov != covered.end() && cov->second[i] != npos;
        if (held || via_caller) {
          ok = true;
          break;
        }
      }
      if (!eligible || ok) continue;
      if (!reported.insert(a.name).second) continue;
      if (allowed_on_line(pmdetail::allows_of(files, fn.file), "lockset",
                          a.line)) {
        continue;
      }
      out.push_back(
          {fn.file, a.line, "lockset",
           "'" + a.name + "' is FCR_GUARDED_BY(" + mutex_name +
               ") but no caller-visible path into '" + fn.facts.qualified +
               "' holds it — take fcr::MutexLock or annotate the function "
               "with FCR_REQUIRES(" + mutex_name + ")"});
    }
  }
  return out;
}

/// rng-lineage: ambient/defaulted Rng construction is banned everywhere in
/// src/ (outside util/rng.*), and seed-rooted streams may only be built
/// outside the execution closure — inside it every stream must come from a
/// split() chain, or trial replay silently forks.
inline std::vector<Finding> check_rng_lineage(
    const ProgramModel& pm, const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  const std::vector<std::size_t> roots = pmdetail::roots_matching(
      pm, {"run_execution", "ExecutionWorkspace::run",
           "ExecutionWorkspace::run_rounds",
           "ExecutionWorkspace::run_rounds_columnar"});
  const std::vector<std::size_t> parent = reach_parents(pm, roots);
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (!fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/") ||
        fcrlint::detail::starts_with(fn.file, "src/util/rng.")) {
      continue;
    }
    for (const RngSite& r : fn.facts.rngs) {
      std::string why;
      if (r.kind == RngSite::kAmbient) {
        why = "Rng '" + r.name +
              "' is default- or literal-seeded — every stream must derive "
              "from the trial's seeded base via split(<tag>)";
      } else if (r.kind == RngSite::kSeedRoot && parent[i] != npos) {
        why = "Rng '" + r.name +
              "' re-roots a seed inside the execution closure (" +
              witness_chain(pm, parent, i) +
              ") — derive it from the caller's stream via split(<tag>) so "
              "replay stays bit-identical";
      } else {
        continue;
      }
      if (allowed_on_line(pmdetail::allows_of(files, fn.file), "rng-lineage",
                          r.line)) {
        continue;
      }
      out.push_back({fn.file, r.line, "rng-lineage", why});
    }
  }
  return out;
}

/// hot-path-alloc: no allocation on any path reachable from either
/// steady-state round loop — the per-node virtual engine
/// (ExecutionWorkspace::run_rounds) or the columnar SoA engine
/// (ExecutionWorkspace::run_rounds_columnar), which pulls in every
/// columnar_decide/columnar_feedback implementation through the call
/// graph. Growth of a receiver that is reserve()d / clear()ed somewhere
/// in the tree is the blessed warm-capacity idiom and stays legal.
inline std::vector<Finding> check_hot_path_alloc(
    const ProgramModel& pm, const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  const std::vector<std::size_t> roots = pmdetail::roots_matching(
      pm, {"ExecutionWorkspace::run_rounds",
           "ExecutionWorkspace::run_rounds_columnar"});
  const std::vector<std::size_t> parent = reach_parents(pm, roots);
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (parent[i] == npos || !fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/")) {
      continue;
    }
    for (const AllocSite& a : fn.facts.allocs) {
      std::string what;
      switch (a.kind) {
        case AllocSite::kNew:
          what = "'new " + a.what + "'";
          break;
        case AllocSite::kMakeSmart:
          what = "smart-pointer allocation of '" + a.what + "'";
          break;
        case AllocSite::kGrowth:
          if (pm.reserved.count(a.what) != 0) continue;  // warm-capacity idiom
          what = "growth of '" + a.what +
                 "', which is never reserve()d/clear()ed anywhere in the tree";
          break;
        case AllocSite::kLocalGrowth:
          what = "append to unreserved function-local container '" + a.what + "'";
          break;
        case AllocSite::kLocalCtor:
          what = "sized construction of function-local container '" + a.what + "'";
          break;
        default:
          continue;
      }
      if (allowed_on_line(pmdetail::allows_of(files, fn.file),
                          "hot-path-alloc", a.line)) {
        continue;
      }
      out.push_back({fn.file, a.line, "hot-path-alloc",
                     what + " inside the zero-alloc steady state (reachable: " +
                         witness_chain(pm, parent, i) +
                         ") — hoist it into setup/teardown or reserve up "
                         "front"});
    }
  }
  return out;
}

/// error-provenance: throw sites reachable from ThreadPool task bodies
/// (functions that call for_each — their lambdas scan as part of the
/// enclosing body) must construct fcr::Error, not bare std:: exceptions.
inline std::vector<Finding> check_error_provenance(
    const ProgramModel& pm, const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  static const std::set<std::string_view> kStdExceptions = {
      "exception",     "runtime_error", "logic_error",   "invalid_argument",
      "out_of_range",  "length_error",  "domain_error",  "range_error",
      "overflow_error","underflow_error","bad_alloc",    "bad_cast",
      "bad_function_call",              "system_error"};
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    for (const CallSite& c : pm.fns[i].facts.calls) {
      const std::string last = pmdetail::last_component(c.callee);
      if (last == "for_each") {
        roots.push_back(i);
        break;
      }
    }
  }
  const std::vector<std::size_t> parent = reach_parents(pm, roots);
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (parent[i] == npos || !fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/")) {
      continue;
    }
    for (const ThrowSite& ts : fn.facts.throw_sites) {
      if (ts.head.empty()) continue;  // bare rethrow keeps provenance
      std::string head = ts.head;
      bool std_qualified = false;
      if (fcrlint::detail::starts_with(head, "std::")) {
        head = head.substr(5);
        std_qualified = true;
      }
      if (!std_qualified && kStdExceptions.count(head) == 0) continue;
      if (!std_qualified && kStdExceptions.count(head) != 0 &&
          head == "bad_alloc") {
        // fall through: bad_alloc is still a bare std exception
      }
      if (allowed_on_line(pmdetail::allows_of(files, fn.file),
                          "error-provenance", ts.line)) {
        continue;
      }
      out.push_back(
          {fn.file, ts.line, "error-provenance",
           "'throw " + ts.head + "' is reachable from a ThreadPool task "
           "body (" + witness_chain(pm, parent, i) +
               ") — construct fcr::Error (with trial provenance) so the "
               "campaign's failure report stays attributable"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// v4 path-sensitive rules.
// ---------------------------------------------------------------------------

/// One certified (or refused) columnar decision kernel, as emitted into
/// kernel_manifest.json for the SIMD-lanes follow-on to consume.
struct KernelRecord {
  std::string qualified;
  std::string file;
  int line = 1;
  std::vector<std::string> columns_read;
  std::vector<std::string> columns_written;
  /// Per-lane generator invocations per round, [min, max]; min < max means
  /// a round-uniform gate (all lanes draw or none do), which is still
  /// batchable. kCountSaturated means "unbounded".
  int draw_min = 0;
  int draw_max = 0;
  bool pure = true;
  /// The dispatch bit the engine's SIMD route keys on: pure AND a bounded
  /// per-lane draw budget. Mirrored by the hand-maintained allowlist in
  /// src/sim/kernel_certificates.hpp; the fcrlint_kernel_manifest ctest
  /// asserts the two stay in agreement.
  bool simd_eligible = false;
  std::vector<std::string> reasons;  ///< why not pure (even when allowed)
};

/// Findings from every interprocedural rule plus the kernel certificates.
struct TreeAnalysis {
  std::vector<Finding> findings;
  std::vector<KernelRecord> kernels;
};

namespace pmdetail {

/// True when `cls_last` is — or transitively derives from — `base_last`.
inline bool derives_from(const ProgramModel& pm, const std::string& cls_last,
                         const std::string& base_last) {
  std::vector<std::string> work = {cls_last};
  std::set<std::string> seen;
  while (!work.empty()) {
    const std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    if (cur == base_last) return true;
    const auto it = pm.bases.find(cur);
    if (it == pm.bases.end()) continue;
    for (const std::string& b : it->second) work.push_back(b);
  }
  return false;
}

inline const char* index_class_name(int c) {
  switch (c) {
    case ColAccess::kLane: return "lane-indexed";
    case ColAccess::kWord: return "word-indexed";
    case ColAccess::kWhole: return "whole-column";
    default: return "arbitrarily-indexed";
  }
}

/// Interprocedural draw totals: a function's own per-lane interval plus
/// every call site's contribution (the hull over the site's overload set).
/// Memoized; a recursive edge contributes nothing (its draws are already
/// counted once at the cycle head).
struct DrawTotals {
  const ProgramModel& pm;
  std::vector<int> state;  // 0 untouched, 1 visiting, 2 done
  std::vector<dataflow::CountRange> memo;
  explicit DrawTotals(const ProgramModel& m)
      : pm(m), state(m.fns.size(), 0), memo(m.fns.size()) {}
  dataflow::CountRange total(std::size_t i) {
    if (state[i] == 2) return memo[i];
    if (state[i] == 1) return {};
    state[i] = 1;
    const ProgramFunction& fn = pm.fns[i];
    dataflow::CountRange r{fn.facts.draw_min, fn.facts.draw_max};
    for (std::size_t ci = 0; ci < fn.facts.calls.size(); ++ci) {
      const auto& targets =
          ci < fn.callee_sites.size() ? fn.callee_sites[ci] : std::vector<std::size_t>{};
      if (targets.empty()) continue;
      dataflow::CountRange site{dataflow::kCountSaturated, 0};
      for (const std::size_t tgt : targets) {
        const dataflow::CountRange tr = total(tgt);
        site.min = std::min(site.min, tr.min);
        site.max = std::max(site.max, tr.max);
      }
      // A gated call may be skipped on some rounds: min drops to zero.
      if (fn.facts.calls[ci].gate > 0) site.min = 0;
      r.min = std::min(r.min + site.min, dataflow::kCountSaturated);
      r.max = std::min(r.max + site.max, dataflow::kCountSaturated);
    }
    state[i] = 2;
    memo[i] = r;
    return r;
  }
};

}  // namespace pmdetail

/// lane-purity: certifies every ColumnarAlgorithm::columnar_decide override
/// (and its transitive callees) for SIMD lane batching. A pure kernel may
/// touch element columns only at the current lane, word columns only at the
/// current word, may not take locks or reach virtual calls, and must draw a
/// path-invariant number of per-lane RNG values. Emits one KernelRecord per
/// override; violations also become findings unless allow-annotated (the
/// manifest stays honest either way — an allowed kernel is still impure).
inline TreeAnalysis check_lane_purity(const ProgramModel& pm,
                                      const std::vector<TreeFile>& files) {
  TreeAnalysis out;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (fn.facts.is_definition && fn.facts.name == "columnar_decide" &&
        pmdetail::derives_from(pm, pmdetail::last_component(fn.facts.cls),
                               "ColumnarAlgorithm")) {
      roots.push_back(i);
    }
  }
  pmdetail::DrawTotals totals(pm);
  std::set<std::tuple<std::string, int, std::string>> emitted;
  for (const std::size_t root : roots) {
    KernelRecord rec;
    rec.qualified = pm.fns[root].facts.qualified;
    rec.file = pm.fns[root].file;
    rec.line = pm.fns[root].facts.line;

    // Kernel closure: the override plus everything it can reach.
    std::vector<std::size_t> closure;
    {
      std::set<std::size_t> seen = {root};
      std::vector<std::size_t> work = {root};
      while (!work.empty()) {
        const std::size_t cur = work.back();
        work.pop_back();
        closure.push_back(cur);
        for (const std::size_t next : pm.fns[cur].callees) {
          if (seen.insert(next).second) work.push_back(next);
        }
      }
    }

    std::set<std::string> cols_read, cols_written;
    auto violate = [&](const std::string& file, int line,
                       const std::string& why) {
      rec.pure = false;
      rec.reasons.push_back(why);
      if (allowed_on_line(pmdetail::allows_of(files, file), "lane-purity",
                          line)) {
        return;
      }
      if (emitted.insert({file, line, why}).second) {
        out.findings.push_back({file, line, "lane-purity", why});
      }
    };
    for (const std::size_t i : closure) {
      const ProgramFunction& fn = pm.fns[i];
      const std::string in_kernel =
          " (in kernel '" + rec.qualified + "' via '" + fn.facts.qualified +
          "')";
      if (i != root && fn.facts.is_virtual) {
        violate(fn.file, fn.facts.line,
                "virtual call target '" + fn.facts.qualified +
                    "' reachable from a columnar decision kernel — lane "
                    "batching cannot devirtualize it" + in_kernel);
      }
      for (const std::string& l : fn.facts.locks) {
        violate(fn.file, fn.facts.line,
                "'" + fn.facts.qualified + "' takes or requires lock '" + l +
                    "' inside a columnar decision kernel" + in_kernel);
      }
      for (const ColAccess& c : fn.facts.cols) {
        (c.write != 0 ? cols_written : cols_read).insert(c.column);
        const bool word_col = extdetail::word_column(c.column);
        const int want = word_col ? ColAccess::kWord : ColAccess::kLane;
        if (c.index_class != want) {
          violate(fn.file, c.line,
                  std::string(c.write != 0 ? "write to" : "read of") +
                      " column '" + c.column + "' is " +
                      pmdetail::index_class_name(c.index_class) +
                      " — a lane-pure kernel must touch it only at the "
                      "current " + (word_col ? "word" : "lane") + in_kernel);
        }
      }
      for (const PurityIssue& p : fn.facts.purity) {
        violate(fn.file, p.line, p.what + in_kernel);
      }
      for (std::size_t ci = 0; ci < fn.facts.calls.size(); ++ci) {
        const CallSite& c = fn.facts.calls[ci];
        if (c.gate != 2 || ci >= fn.callee_sites.size()) continue;
        for (const std::size_t tgt : fn.callee_sites[ci]) {
          const dataflow::CountRange tr = totals.total(tgt);
          if (tr.max > 0) {
            violate(fn.file, c.line,
                    "call to drawing function '" +
                        pm.fns[tgt].facts.qualified +
                        "' is gated on a lane-varying condition — lanes "
                        "would consume different RNG counts" + in_kernel);
            break;
          }
        }
      }
    }
    const dataflow::CountRange dr = totals.total(root);
    rec.draw_min = dr.min;
    rec.draw_max = dr.max;
    if (dr.max >= dataflow::kCountSaturated) {
      // Unbounded consumption is its own impurity even if every individual
      // site looked benign.
      violate(rec.file, rec.line,
              "per-lane RNG consumption of kernel '" + rec.qualified +
                  "' is unbounded — lane batching needs a fixed draw budget");
    }
    rec.columns_read.assign(cols_read.begin(), cols_read.end());
    rec.columns_written.assign(cols_written.begin(), cols_written.end());
    rec.simd_eligible = rec.pure && rec.draw_max < dataflow::kCountSaturated;
    out.kernels.push_back(std::move(rec));
  }
  std::sort(out.kernels.begin(), out.kernels.end(),
            [](const KernelRecord& a, const KernelRecord& b) {
              return a.qualified < b.qualified;
            });
  return out;
}

/// definite-init: a container subscripted (or back()/front()/at()-read) in a
/// function that sizes it on only SOME paths to that read. Flags the flow
/// hazards computed per function by the must-initialized dataflow.
inline std::vector<Finding> check_definite_init(
    const ProgramModel& pm, const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  for (const ProgramFunction& fn : pm.fns) {
    if (!fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/")) {
      continue;
    }
    for (const InitHazard& h : fn.facts.init_hazards) {
      if (allowed_on_line(pmdetail::allows_of(files, fn.file),
                          "definite-init", h.line)) {
        continue;
      }
      out.push_back(
          {fn.file, h.line, "definite-init",
           "'" + h.name + "' is read here but sized (resize/assign/"
           "reserve) on only some paths into '" + fn.facts.qualified +
               "' — initialize it on every path before the first read"});
    }
  }
  return out;
}

/// lockset-path: the branch-aware upgrade of the v3 lockset rule. An access
/// to an FCR_GUARDED_BY(m) member is clean only when m is in the must-held
/// set AT THE ACCESS (scoped MutexLock extents, early unlocks and all CFG
/// paths accounted for), or the function is covered by a call site that
/// provably holds m. Conditional locks stop covering unconditional
/// accesses, and accesses after a scope's release are caught.
inline std::vector<Finding> check_lockset_path(
    const ProgramModel& pm, const std::vector<TreeFile>& files) {
  std::vector<Finding> out;
  // covered[m]: functions invoked from at least one call site where m is
  // held — everything they run (transitively) happens under m, since a
  // callee cannot release its caller's scoped lock.
  std::map<std::string, std::vector<std::size_t>> covered;
  {
    std::map<std::string, std::vector<std::size_t>> seeds;
    for (const ProgramFunction& fn : pm.fns) {
      for (std::size_t ci = 0; ci < fn.facts.calls.size(); ++ci) {
        if (ci >= fn.callee_sites.size()) break;
        for (const std::string& m : fn.facts.calls[ci].held) {
          for (const std::size_t tgt : fn.callee_sites[ci]) {
            seeds[m].push_back(tgt);
          }
        }
      }
    }
    for (auto& [m, s] : seeds) covered[m] = reach_parents(pm, s);
  }
  for (std::size_t i = 0; i < pm.fns.size(); ++i) {
    const ProgramFunction& fn = pm.fns[i];
    if (!fn.facts.is_definition ||
        !fcrlint::detail::starts_with(fn.file, "src/")) {
      continue;
    }
    std::set<std::pair<std::string, int>> reported;
    for (const Access& a : fn.facts.accesses) {
      bool eligible = false;
      bool ok = false;
      std::string mutex_name;
      for (const auto& [ffile, fld] : pm.fields) {
        if (fld.name != a.name) continue;
        bool elig;
        if (!a.qualified || a.receiver == "this") {
          elig = pmdetail::cls_related(fn.facts.cls, fld.cls);
        } else {
          elig = !a.recv_type.empty() &&
                 a.recv_type == pmdetail::last_component(fld.cls);
        }
        if (!elig) continue;
        eligible = true;
        mutex_name = fld.mutex;
        const bool held_here = std::find(a.held.begin(), a.held.end(),
                                         fld.mutex) != a.held.end();
        const auto cov = covered.find(fld.mutex);
        const bool via_caller = cov != covered.end() && cov->second[i] != npos;
        if (held_here || via_caller) {
          ok = true;
          break;
        }
      }
      if (!eligible || ok) continue;
      if (!reported.insert({a.name, a.line}).second) continue;
      if (allowed_on_line(pmdetail::allows_of(files, fn.file), "lockset-path",
                          a.line)) {
        continue;
      }
      out.push_back(
          {fn.file, a.line, "lockset-path",
           "'" + a.name + "' is FCR_GUARDED_BY(" + mutex_name +
               ") but on some path through '" + fn.facts.qualified +
               "' the mutex is not held at this access — widen the "
               "MutexLock scope or hoist the access under it"});
    }
  }
  return out;
}

/// Runs every interprocedural rule (four v3, three v4) over the tree's src/
/// files and certifies the columnar kernels.
inline TreeAnalysis analyze_tree(const std::vector<TreeFile>& files) {
  const ProgramModel pm = build_program_model(files);
  TreeAnalysis out = check_lane_purity(pm, files);
  auto append = [&out](std::vector<Finding> v) {
    out.findings.insert(out.findings.end(), v.begin(), v.end());
  };
  append(check_lockset(pm, files));
  append(check_rng_lineage(pm, files));
  append(check_hot_path_alloc(pm, files));
  append(check_error_provenance(pm, files));
  append(check_definite_init(pm, files));
  append(check_lockset_path(pm, files));
  return out;
}

/// Compatibility wrapper: findings only.
inline std::vector<Finding> check_model_rules(
    const std::vector<TreeFile>& files) {
  return analyze_tree(files).findings;
}

}  // namespace fcrlint::model
