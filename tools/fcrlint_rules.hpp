// fcrlint — fadingcr's project-specific linter: the per-file token rules.
//
// Generic static analyzers cannot enforce the invariants this repository's
// headline claims rest on (bit-identical serial/parallel results, exact SINR
// decision bits), so fcrlint checks them mechanically. Every rule runs on
// the real C++ token stream from fcrlint_lexer.hpp — no substring matching
// against masked text. The per-file analyses are:
//
//   determinism      — wall-clock and platform entropy sources (std::rand,
//                      std::random_device, time(), *_clock::now(), ...) are
//                      banned in src/ outside src/util/rng.*; all randomness
//                      must flow through fcr::Rng so runs replay from a seed.
//   sinr-float       — `float` is banned under src/sinr/: SINR feasibility
//                      margins sit near the decodability threshold beta and
//                      single-precision rounding flips verdicts.
//   ensure-arg       — every public-API .cpp in src/ must validate arguments
//                      with FCR_ENSURE_ARG or carry an explicit, reasoned
//                      allow annotation.
//   pragma-once      — every header carries #pragma once.
//   include-hygiene  — no parent-relative ("../") includes, no <bits/...>,
//                      no deprecated C headers (<math.h> → <cmath>).
//   allow-syntax     — allow annotations must name a known rule and give a
//                      non-empty reason (suppressions are documented).
//   layering         — src/ subdirectories form strict layers (util → stats
//                      → geom → radio → deploy → sinr → sim → core →
//                      lowerbound → algorithms → ext); an include may only
//                      point at the same or a lower layer, and the include
//                      graph must stay acyclic (checked tree-wide).
//   fp-accumulate    — floating-point reductions in src/sinr/ and src/sim/
//                      (std::accumulate/reduce, raw `+=` loops over doubles)
//                      are banned outside src/sinr/accumulate.hpp: every
//                      interference sum must go through the shared pairwise
//                      tree that keeps resolve/batch bit-identical.
//   lock-discipline  — bare std::mutex / std::condition_variable are banned
//                      in src/; concurrency code uses the Clang-thread-
//                      safety-annotated fcr::Mutex / fcr::CondVar /
//                      fcr::MutexLock from util/thread_annotations.hpp, and
//                      every fcr::Mutex must be referenced by at least one
//                      annotation (FCR_GUARDED_BY, FCR_REQUIRES, ...).
//   rng-flow         — replay-breaking Rng plumbing: copying a stream out of
//                      an Rng reference (instead of split()) or capturing an
//                      Rng by value in a lambda duplicates the stream and
//                      silently reuses randomness.
//   error-discipline — catch blocks in src/ must not swallow exceptions
//                      silently: the handler body must rethrow, wrap into
//                      the structured fcr::Error taxonomy, or record a
//                      TrialFailure — otherwise a faulted trial vanishes
//                      without provenance.
//
// Suppression: an allow annotation in a comment naming the rule and the
// reason, e.g. FCRLINT_ALLOW(ensure-arg): header-only module, no entry point.
// For the file-scoped ensure-arg and pragma-once rules the annotation may
// appear anywhere in the file; for line-scoped rules it must sit on the
// offending line or the line directly above it. Annotations inside string
// literals are ignored (strings are opaque tokens), and every occurrence of
// the marker in a comment must be well-formed.
//
// The engine is header-only and pure (paths + contents in, findings out) so
// tests/test_fcrlint.cpp can unit-test every rule against fixture inputs;
// tools/fcrlint.cpp adds the filesystem walk, SARIF output, diff filtering,
// caching, and the CLI. The shared vocabulary (Finding, kRules, allows)
// lives in fcrlint_core.hpp; the v3 interprocedural rules in
// fcrlint_model.hpp — lint_tree below stitches both halves together.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_core.hpp"
#include "fcrlint_lexer.hpp"
#include "fcrlint_model.hpp"

namespace fcrlint {

/// Bump when any per-file rule's behavior changes; feeds the cache
/// fingerprint (the catalogue itself is hashed separately by rule id).
inline constexpr int kRulesRev = 2;

namespace detail {

/// The strict src/ layer order, lowest first. A file in layer k may include
/// only layers <= k. Files directly under src/ (the fadingcr.hpp umbrella)
/// sit above every layer.
inline constexpr std::array<std::string_view, 12> kLayerOrder = {
    "util", "stats",      "geom",       "radio", "deploy", "sinr",
    "sim",  "core",       "lowerbound", "algorithms", "ext", "fabric"};

inline constexpr int kTopLayer = static_cast<int>(kLayerOrder.size());

/// Layer index of a src/ subdirectory name, or -1 if unknown.
inline int layer_of(std::string_view dir) {
  for (std::size_t i = 0; i < kLayerOrder.size(); ++i) {
    if (kLayerOrder[i] == dir) return static_cast<int>(i);
  }
  return -1;
}

/// Renders the layer order for messages: "util -> stats -> ... -> ext".
inline std::string layer_order_string() {
  std::string s;
  for (const std::string_view d : kLayerOrder) {
    if (!s.empty()) s += " -> ";
    s += d;
  }
  return s;
}

/// For "src/<dir>/<rest>" returns <dir>; for files directly under src/
/// returns "". Precondition: path starts with "src/".
inline std::string_view src_subdir(std::string_view path) {
  std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rest.substr(0, slash);
}

/// Deprecated C headers (for include-hygiene and the --fix engine, which
/// must agree on the list): <x.h> is flagged and rewritten to <cx>.
inline constexpr std::string_view kDeprecatedC[] = {
    "assert.h", "ctype.h",  "errno.h",  "float.h",    "inttypes.h",
    "limits.h", "locale.h", "math.h",   "setjmp.h",   "signal.h",
    "stdarg.h", "stddef.h", "stdint.h", "stdio.h",    "stdlib.h",
    "string.h", "time.h",   "wchar.h"};

}  // namespace detail

// ---------------------------------------------------------------------------
// Rules. Each takes the repo-relative path (generic '/' separators), the
// token stream, and the parsed allows; each returns its findings.
// ---------------------------------------------------------------------------

/// determinism: entropy/wall-clock sources are banned in src/ outside
/// src/util/rng.* — randomness must come from fcr::Rng (seeded, splittable).
inline std::vector<Finding> check_determinism(const std::string& path,
                                              const std::vector<Token>& toks,
                                              const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/") ||
      detail::starts_with(path, "src/util/rng.")) {
    return out;
  }
  struct Banned {
    std::string_view token;
    bool must_call;  // only flag when followed by '('
    std::string_view hint;
  };
  static constexpr Banned kBanned[] = {
      {"rand", true, "use fcr::Rng instead of the C PRNG"},
      {"srand", true, "seeding the C PRNG breaks replayability"},
      {"random_device", false, "platform entropy is not reproducible"},
      {"time", true, "wall-clock input makes runs non-replayable"},
      {"clock", true, "wall-clock input makes runs non-replayable"},
      {"gettimeofday", true, "wall-clock input makes runs non-replayable"},
      {"clock_gettime", true, "wall-clock input makes runs non-replayable"},
      {"now", true, "std::chrono::*::now() makes runs non-replayable"},
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    for (const Banned& b : kBanned) {
      if (toks[i].text != b.token) continue;
      if (b.must_call) {
        const std::size_t j = next_sig(toks, i);
        if (j == npos || !toks[j].punct("(")) continue;
      }
      const int line = toks[i].line;
      if (allowed_on_line(allows, "determinism", line)) continue;
      out.push_back({path, line, "determinism",
                     "non-deterministic source '" + std::string(b.token) +
                         "' — " + std::string(b.hint) +
                         " (all randomness must flow through fcr::Rng)"});
    }
  }
  return out;
}

/// sinr-float: single-precision arithmetic is banned in SINR feasibility
/// math; margins near the beta threshold flip under float rounding.
inline std::vector<Finding> check_sinr_float(const std::string& path,
                                             const std::vector<Token>& toks,
                                             const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/sinr/")) return out;
  for (const Token& t : toks) {
    if (!t.ident("float")) continue;
    if (allowed_on_line(allows, "sinr-float", t.line)) continue;
    out.push_back({path, t.line, "sinr-float",
                   "'float' in SINR math — use double; single-precision "
                   "rounding flips feasibility verdicts near beta"});
  }
  return out;
}

/// ensure-arg: public-API implementation files must validate their inputs.
inline std::vector<Finding> check_ensure_arg(const std::string& path,
                                             const std::vector<Token>& toks,
                                             const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/") || !detail::ends_with(path, ".cpp")) {
    return out;
  }
  for (const Token& t : toks) {
    if (t.ident("FCR_ENSURE_ARG")) return out;
  }
  if (allowed_anywhere(allows, "ensure-arg")) return out;
  out.push_back({path, 1, "ensure-arg",
                 "no FCR_ENSURE_ARG argument validation in this public API "
                 "implementation — validate entry-point arguments or annotate "
                 "with FCRLINT_ALLOW(ensure-arg): <reason>"});
  return out;
}

/// pragma-once: every header must carry #pragma once.
inline std::vector<Finding> check_pragma_once(const std::string& path,
                                              const std::vector<Token>& toks,
                                              const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::ends_with(path, ".hpp") && !detail::ends_with(path, ".h")) {
    return out;
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].punct("#") || !toks[i].directive) continue;
    const std::size_t j = next_sig(toks, i);
    if (j == npos || !toks[j].ident("pragma")) continue;
    const std::size_t k = next_sig(toks, j);
    if (k != npos && toks[k].ident("once")) return out;  // found it
  }
  if (!allowed_anywhere(allows, "pragma-once")) {
    out.push_back({path, 1, "pragma-once", "header is missing #pragma once"});
  }
  return out;
}

/// include-hygiene: no parent-relative includes, no <bits/...>, no
/// deprecated C headers. Operates on header-name tokens, so prose about
/// <math.h> in a trailing comment can no longer trip it (a v1 blind spot).
inline std::vector<Finding> check_include_hygiene(
    const std::string& path, const std::vector<Token>& toks,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kHeaderName) continue;
    if (allowed_on_line(allows, "include-hygiene", t.line)) continue;
    auto flag = [&](const std::string& msg) {
      out.push_back({path, t.line, "include-hygiene", msg});
    };
    const std::string_view text = t.text;
    if (text.size() >= 2 && text.front() == '"') {
      const std::string_view inner = text.substr(1, text.size() - 2);
      if (detail::starts_with(inner, "../") ||
          inner.find("/../") != std::string_view::npos) {
        flag("parent-relative include — include project headers by their "
             "src/-relative path");
      }
    }
    if (detail::starts_with(text, "<bits/")) {
      flag("<bits/...> is a libstdc++ internal — include the standard header");
    }
    for (const std::string_view dep : detail::kDeprecatedC) {
      if (text == "<" + std::string(dep) + ">") {
        flag("deprecated C header " + std::string(text) + " — use <c" +
             std::string(dep.substr(0, dep.size() - 2)) + ">");
      }
    }
  }
  return out;
}

/// layering (per-file half): an include from src/<a>/ may only name the same
/// or a lower layer. The cross-file half (cycle detection over the whole
/// include graph) lives in lint_tree.
inline std::vector<Finding> check_layering(const std::string& path,
                                           const std::vector<Token>& toks,
                                           const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/")) return out;
  const std::string_view src_dir = detail::src_subdir(path);
  const int src_layer =
      src_dir.empty() ? detail::kTopLayer : detail::layer_of(src_dir);
  if (src_layer == detail::kTopLayer) return out;  // umbrella sees everything
  if (src_layer < 0) {
    out.push_back({path, 1, "layering",
                   "directory src/" + std::string(src_dir) +
                       "/ is not in the layer order (" +
                       detail::layer_order_string() +
                       ") — add it to kLayerOrder in fcrlint_rules.hpp"});
    return out;
  }
  for (const Token& t : toks) {
    if (t.kind != TokKind::kHeaderName) continue;
    const std::string_view text = t.text;
    if (text.size() < 2 || text.front() != '"') continue;  // system header
    const std::string_view inner = text.substr(1, text.size() - 2);
    if (inner.find("..") != std::string_view::npos) continue;  // hygiene's job
    std::string_view target_dir;
    int target_layer;
    const std::size_t slash = inner.find('/');
    if (slash == std::string_view::npos) {
      // A bare name is a same-directory sibling include — always fine —
      // unless it names the src-root umbrella header.
      if (inner != "fadingcr.hpp") continue;
      target_dir = "<src root>";
      target_layer = detail::kTopLayer;
    } else {
      target_dir = inner.substr(0, slash);
      target_layer = detail::layer_of(target_dir);
      if (target_layer < 0) continue;  // not a src layer (e.g. local subdir)
    }
    if (target_layer <= src_layer) continue;
    if (allowed_on_line(allows, "layering", t.line)) continue;
    out.push_back(
        {path, t.line, "layering",
         "upward include: src/" + std::string(src_dir) + "/ (layer " +
             std::to_string(src_layer) + ") must not include '" +
             std::string(inner) + "' (layer " + std::to_string(target_layer) +
             ") — the layer order is " + detail::layer_order_string()});
  }
  return out;
}

/// fp-accumulate: floating-point reductions outside the canonical pairwise
/// path are banned in src/sinr/ and src/sim/. Flags std::accumulate-family
/// calls and `fp_var += ...` inside loop bodies (the running-sum pattern
/// whose result depends on evaluation order).
inline std::vector<Finding> check_fp_accumulate(
    const std::string& path, const std::vector<Token>& toks,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  const bool in_scope = (detail::starts_with(path, "src/sinr/") ||
                         detail::starts_with(path, "src/sim/")) &&
                        path != "src/sinr/accumulate.hpp";
  if (!in_scope) return out;

  // Pass 1: names declared with a floating-point type in this file
  // (`double s`, `float acc[4]`, range-for `double v : xs`, parameters,
  // and further same-type declarators: `double sx = 0.0, sy = 0.0;`).
  std::set<std::string, std::less<>> fp_vars;
  auto is_decl_end = [](const Token& t) {
    static constexpr std::string_view kDeclEnd[] = {";", "=", ",", ")",
                                                    "[", "{", ":"};
    for (const std::string_view e : kDeclEnd) {
      if (t.punct(e)) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("double") && !toks[i].ident("float")) continue;
    const std::size_t j = next_sig(toks, i);
    if (j == npos || toks[j].kind != TokKind::kIdent) continue;
    const std::size_t k = next_sig(toks, j);
    if (k == npos || !is_decl_end(toks[k])) continue;
    fp_vars.insert(toks[j].text);
    // Walk the rest of the declaration for `, next_name` declarators; a
    // candidate followed by another identifier means a differently-typed
    // parameter (`double a, int n`) and ends the walk.
    int depth = 0;
    for (std::size_t m = k; m < toks.size(); ++m) {
      const Token& t = toks[m];
      if (t.punct("(") || t.punct("[") || t.punct("{")) ++depth;
      else if (t.punct(")") || t.punct("]") || t.punct("}")) {
        if (--depth < 0) break;  // end of enclosing parameter list
      } else if (t.punct(";") && depth == 0) {
        break;
      } else if (t.punct(",") && depth == 0) {
        const std::size_t name = next_sig(toks, m);
        if (name == npos || toks[name].kind != TokKind::kIdent) break;
        const std::size_t after = next_sig(toks, name);
        if (after == npos || !is_decl_end(toks[after])) break;
        fp_vars.insert(toks[name].text);
      }
    }
  }

  // Pass 2: std accumulate-family calls (order- or precision-unsafe).
  static constexpr std::string_view kReducers[] = {
      "accumulate", "reduce", "transform_reduce", "inner_product"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    for (const std::string_view r : kReducers) {
      if (toks[i].text != r) continue;
      const std::size_t j = next_sig(toks, i);
      if (j == npos || !toks[j].punct("(")) continue;
      if (allowed_on_line(allows, "fp-accumulate", toks[i].line)) continue;
      out.push_back({path, toks[i].line, "fp-accumulate",
                     "'std::" + std::string(r) +
                         "' in SINR/simulation code — sum through "
                         "fcr::pairwise_sum (src/sinr/accumulate.hpp) so the "
                         "reduction tree stays fixed and bit-identical"});
    }
  }

  // Pass 3: loop-body regions, as [first, last] token-index intervals.
  std::vector<std::pair<std::size_t, std::size_t>> loops;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("for") && !toks[i].ident("while") &&
        !toks[i].ident("do")) {
      continue;
    }
    std::size_t body_start;
    if (toks[i].ident("do")) {
      body_start = next_sig(toks, i);
    } else {
      const std::size_t open = next_sig(toks, i);
      if (open == npos || !toks[open].punct("(")) continue;
      const std::size_t close = detail::match_forward(toks, open, "(", ")");
      if (close == npos) continue;
      body_start = next_sig(toks, close);
    }
    if (body_start == npos) continue;
    std::size_t body_end;
    if (toks[body_start].punct("{")) {
      body_end = detail::match_forward(toks, body_start, "{", "}");
    } else {
      // Single-statement body: up to the terminating ';' at paren depth 0.
      int paren = 0;
      body_end = npos;
      for (std::size_t j = body_start; j < toks.size(); ++j) {
        if (toks[j].punct("(")) ++paren;
        else if (toks[j].punct(")")) --paren;
        else if (toks[j].punct(";") && paren == 0) {
          body_end = j;
          break;
        }
      }
    }
    if (body_end == npos) continue;
    loops.emplace_back(body_start, body_end);
  }

  // Pass 4: `fp_var += ...` (optionally through a [subscript]) in a loop.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].punct("+=")) continue;
    const bool in_loop =
        std::any_of(loops.begin(), loops.end(), [&](const auto& r) {
          return r.first <= i && i <= r.second;
        });
    if (!in_loop) continue;
    std::size_t lhs = prev_sig(toks, i);
    if (lhs != npos && toks[lhs].punct("]")) {
      const std::size_t open = detail::match_backward(toks, lhs, "[", "]");
      if (open == npos) continue;
      lhs = prev_sig(toks, open);
    }
    if (lhs == npos || toks[lhs].kind != TokKind::kIdent) continue;
    if (fp_vars.find(toks[lhs].text) == fp_vars.end()) continue;
    if (allowed_on_line(allows, "fp-accumulate", toks[i].line)) continue;
    out.push_back({path, toks[i].line, "fp-accumulate",
                   "raw floating-point reduction '" + toks[lhs].text +
                       " += ...' in a loop — route the sum through "
                       "fcr::pairwise_sum (src/sinr/accumulate.hpp) to keep "
                       "serial/parallel results bit-identical"});
  }
  return out;
}

/// lock-discipline: concurrency primitives in src/ must be the annotated
/// fcr:: wrappers, and every fcr::Mutex must take part in at least one
/// thread-safety annotation so Clang's analysis has something to check.
inline std::vector<Finding> check_lock_discipline(
    const std::string& path, const std::vector<Token>& toks,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/")) return out;

  static constexpr std::string_view kStdSync[] = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "shared_mutex", "condition_variable", "condition_variable_any"};
  static constexpr std::string_view kAnnotationMacros[] = {
      "FCR_GUARDED_BY",      "FCR_PT_GUARDED_BY", "FCR_REQUIRES",
      "FCR_ACQUIRE",         "FCR_RELEASE",       "FCR_EXCLUDES",
      "FCR_ACQUIRED_BEFORE", "FCR_ACQUIRED_AFTER"};

  // Bare std:: primitives declared as variables/members.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    bool is_sync = false;
    for (const std::string_view s : kStdSync) {
      if (toks[i].text == s) {
        is_sync = true;
        break;
      }
    }
    if (!is_sync) continue;
    const std::size_t colons = prev_sig(toks, i);
    if (colons == npos || !toks[colons].punct("::")) continue;
    const std::size_t ns = prev_sig(toks, colons);
    if (ns == npos || !toks[ns].ident("std")) continue;
    const std::size_t name = next_sig(toks, i);
    if (name == npos || toks[name].kind != TokKind::kIdent) continue;
    const std::size_t after = next_sig(toks, name);
    if (after == npos || (!toks[after].punct(";") && !toks[after].punct("{") &&
                          !toks[after].punct("="))) {
      continue;
    }
    if (allowed_on_line(allows, "lock-discipline", toks[i].line)) continue;
    out.push_back({path, toks[i].line, "lock-discipline",
                   "bare std::" + toks[i].text + " '" + toks[name].text +
                       "' — use fcr::Mutex / fcr::CondVar / fcr::MutexLock "
                       "from util/thread_annotations.hpp so Clang thread-"
                       "safety analysis sees the capability"});
  }

  // fcr::Mutex declarations that no annotation references.
  std::set<std::string, std::less<>> annotated;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    bool is_macro = false;
    for (const std::string_view m : kAnnotationMacros) {
      if (toks[i].text == m) {
        is_macro = true;
        break;
      }
    }
    if (!is_macro) continue;
    const std::size_t open = next_sig(toks, i);
    if (open == npos || !toks[open].punct("(")) continue;
    const std::size_t close = detail::match_forward(toks, open, "(", ")");
    if (close == npos) continue;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdent) annotated.insert(toks[j].text);
    }
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("Mutex")) continue;
    const std::size_t name = next_sig(toks, i);
    if (name == npos || toks[name].kind != TokKind::kIdent) continue;
    const std::size_t after = next_sig(toks, name);
    if (after == npos || (!toks[after].punct(";") && !toks[after].punct("{") &&
                          !toks[after].punct("="))) {
      continue;
    }
    if (annotated.count(toks[name].text) != 0) continue;
    if (allowed_on_line(allows, "lock-discipline", toks[i].line)) continue;
    out.push_back({path, toks[i].line, "lock-discipline",
                   "fcr::Mutex '" + toks[name].text +
                       "' is never referenced by a thread-safety annotation — "
                       "guard its data with FCR_GUARDED_BY(" + toks[name].text +
                       ") (or FCR_REQUIRES/FCR_ACQUIRE on the functions that "
                       "lock it)"});
  }
  return out;
}

/// rng-flow: flags the two replay-breaking Rng plumbing patterns that type
/// checking cannot catch — copying a stream out of a shared reference
/// (instead of split()) and capturing an Rng by value in a lambda.
inline std::vector<Finding> check_rng_flow(const std::string& path,
                                           const std::vector<Token>& toks,
                                           const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/") ||
      detail::starts_with(path, "src/util/rng.")) {
    return out;
  }

  // Collect Rng-typed names: values (`Rng x`, `const Rng x = ...`) and
  // references (`Rng& rng`, `const Rng& rng`). Function names declared as
  // returning Rng can be over-collected; they cannot appear in the flagged
  // positions, so the noise is harmless.
  std::set<std::string, std::less<>> value_vars;
  std::set<std::string, std::less<>> ref_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("Rng")) continue;
    std::size_t j = next_sig(toks, i);
    if (j == npos) continue;
    bool is_ref = false;
    if (toks[j].punct("&")) {
      is_ref = true;
      j = next_sig(toks, j);
      if (j == npos) continue;
    }
    if (toks[j].kind != TokKind::kIdent) continue;
    const std::size_t after = next_sig(toks, j);
    if (after == npos) continue;
    static constexpr std::string_view kDeclEnd[] = {";", "=", ",",
                                                    ")", "{", "("};
    for (const std::string_view e : kDeclEnd) {
      if (!toks[after].punct(e)) continue;
      (is_ref ? ref_vars : value_vars).insert(toks[j].text);
      break;
    }
  }

  // Pattern 1: `<target> = <ref-var>;` or `Rng x(<ref-var>);` — a stream
  // copied out of a shared reference. The fix is .split(<tag>).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        ref_vars.find(toks[i].text) == ref_vars.end()) {
      continue;
    }
    const std::size_t after = next_sig(toks, i);
    const std::size_t before = prev_sig(toks, i);
    if (after == npos || before == npos) continue;
    bool copies = false;
    if (toks[before].punct("=") && toks[after].punct(";")) {
      // `target = rng;` — but `auto& r = rng;` / `Rng& r = rng;` only bind
      // a reference; skip when the target is declared as a reference.
      const std::size_t target = prev_sig(toks, before);
      if (target != npos && toks[target].kind == TokKind::kIdent) {
        const std::size_t amp = prev_sig(toks, target);
        copies = amp == npos || !toks[amp].punct("&");
      }
    } else if (toks[before].punct("(") && toks[after].punct(")")) {
      // `Rng x(rng);` — copy-construction from the shared reference. Bare
      // calls `f(rng)` pass by reference and stay legal, so require the
      // Rng-typed declaration shape.
      const std::size_t name = prev_sig(toks, before);
      if (name != npos && toks[name].kind == TokKind::kIdent) {
        const std::size_t type = prev_sig(toks, name);
        copies = type != npos && toks[type].ident("Rng");
      }
    }
    if (!copies) continue;
    if (allowed_on_line(allows, "rng-flow", toks[i].line)) continue;
    out.push_back({path, toks[i].line, "rng-flow",
                   "copying the shared Rng reference '" + toks[i].text +
                       "' duplicates its stream — derive an independent "
                       "child with " + toks[i].text + ".split(<tag>)"});
  }

  // Pattern 2: an Rng-typed variable captured by value in a lambda.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].punct("[")) continue;
    const std::size_t before = prev_sig(toks, i);
    if (before != npos) {
      const Token& p = toks[before];
      const bool postfix = p.kind == TokKind::kIdent || p.punct("]") ||
                           p.punct(")") || p.kind == TokKind::kNumber ||
                           p.kind == TokKind::kString;
      const bool keyword = p.ident("return") || p.ident("co_return") ||
                           p.ident("co_yield") || p.ident("case");
      if ((postfix && !keyword) || p.punct("[")) continue;  // subscript/attr
    }
    const std::size_t close = detail::match_forward(toks, i, "[", "]");
    if (close == npos) continue;
    const std::size_t first = next_sig(toks, i);
    if (first != npos && toks[first].punct("[")) continue;  // [[attribute]]
    // Split the capture list on top-level commas.
    std::size_t item_start = i + 1;
    int depth = 0;
    for (std::size_t j = i + 1; j <= close; ++j) {
      const Token& t = toks[j];
      if (t.punct("(") || t.punct("[") || t.punct("{")) ++depth;
      else if (t.punct(")") || t.punct("]") || t.punct("}")) {
        if (j != close) --depth;
      }
      if (j != close && !(t.punct(",") && depth == 0)) continue;
      // Item is toks[item_start, j). A leading '&' makes the whole item a
      // by-reference capture; otherwise flag an Rng-typed name that IS the
      // captured value — i.e. the item's last token, covering both the
      // plain capture [rng] and the bare init-capture copy [r = rng].
      // [r = rng.split(k)] captures a fresh child, so an Rng name followed
      // by more expression stays legal.
      const std::size_t lead = next_sig(toks, item_start - 1);
      const bool by_ref = lead != npos && lead < j && toks[lead].punct("&");
      for (std::size_t k = item_start; !by_ref && k < j; ++k) {
        if (toks[k].kind != TokKind::kIdent ||
            (value_vars.find(toks[k].text) == value_vars.end() &&
             ref_vars.find(toks[k].text) == ref_vars.end())) {
          continue;
        }
        if (next_sig(toks, k) != j) continue;  // not the captured value
        if (!allowed_on_line(allows, "rng-flow", toks[k].line)) {
          out.push_back(
              {path, toks[k].line, "rng-flow",
               "Rng '" + toks[k].text +
                   "' captured by value in a lambda — the frozen copy "
                   "replays identical randomness on every call; capture by "
                   "reference or init-capture a child via " + toks[k].text +
                   ".split(<tag>)"});
        }
        break;
      }
      item_start = j + 1;
    }
  }
  return out;
}

/// error-discipline: a catch handler in src/ must do SOMETHING visible with
/// the exception — rethrow it (bare or wrapped), convert it into the
/// structured fcr::Error taxonomy, record a TrialFailure, or stash it via
/// std::current_exception for later rethrow. A handler whose body mentions
/// none of these swallows the fault: the trial vanishes and the campaign's
/// failure report lies by omission. Deliberate best-effort handlers (e.g.
/// cleanup paths where failure is acceptable) take a line-scoped
/// FCRLINT_ALLOW(error-discipline): <reason>.
inline std::vector<Finding> check_error_discipline(
    const std::string& path, const std::vector<Token>& toks,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/")) return out;
  static constexpr std::string_view kHandled[] = {
      "throw",           "Error",
      "TrialFailure",    "current_exception",
      "rethrow_exception", "FCR_CHECK",
      "FCR_CHECK_MSG",   "FCR_ENSURE_ARG"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident("catch")) continue;
    const std::size_t open = next_sig(toks, i);
    if (open == npos || !toks[open].punct("(")) continue;
    const std::size_t close = detail::match_forward(toks, open, "(", ")");
    if (close == npos) continue;
    const std::size_t body = next_sig(toks, close);
    if (body == npos || !toks[body].punct("{")) continue;
    const std::size_t end = detail::match_forward(toks, body, "{", "}");
    if (end == npos) continue;
    bool handled = false;
    for (std::size_t j = body + 1; j < end && !handled; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      for (const std::string_view h : kHandled) {
        if (toks[j].text == h) {
          handled = true;
          break;
        }
      }
    }
    if (handled) continue;
    const int line = toks[i].line;
    if (allowed_on_line(allows, "error-discipline", line)) continue;
    out.push_back({path, line, "error-discipline",
                   "catch handler swallows the exception — rethrow, wrap it "
                   "into fcr::Error, or record a TrialFailure so the fault "
                   "keeps its provenance (suppress a deliberate best-effort "
                   "handler with FCRLINT_ALLOW(error-discipline): <reason>)"});
  }
  return out;
}

/// workspace-reset: the ExecutionWorkspace survives across executions, so
/// every MEMBER container (trailing-underscore names, per the style guide)
/// that gets appended to must be reset — clear()/assign()/resize() — some-
/// where in the same file. An append-only member would carry one run's
/// contents into the next and surface as a nondeterministic extra-node bug.
/// Locals and parameters (no trailing underscore) are out of scope: they
/// are born empty. Suppress a deliberate accumulator with
/// FCRLINT_ALLOW(workspace-reset): <reason>.
inline std::vector<Finding> check_workspace_reset(
    const std::string& path, const std::vector<Token>& toks,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (path.find("src/sim/workspace.") == std::string::npos) return out;

  struct Append {
    std::string name;
    int line;
  };
  std::vector<Append> appends;
  std::set<std::string, std::less<>> resets;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].punct(".")) continue;
    const std::size_t obj = prev_sig(toks, i);
    const std::size_t method = next_sig(toks, i);
    if (obj == npos || method == npos) continue;
    if (toks[obj].kind != TokKind::kIdent ||
        toks[method].kind != TokKind::kIdent) {
      continue;
    }
    if (toks[obj].text.empty() || toks[obj].text.back() != '_') continue;
    const std::size_t call = next_sig(toks, method);
    if (call == npos || !toks[call].punct("(")) continue;
    if (toks[method].ident("push_back") || toks[method].ident("emplace_back")) {
      appends.push_back({std::string(toks[obj].text), toks[method].line});
    } else if (toks[method].ident("clear") || toks[method].ident("assign") ||
               toks[method].ident("resize")) {
      resets.insert(std::string(toks[obj].text));
    }
  }

  std::set<std::string, std::less<>> reported;
  for (const Append& a : appends) {
    if (resets.find(a.name) != resets.end()) continue;
    if (!reported.insert(a.name).second) continue;  // one finding per member
    if (allowed_on_line(allows, "workspace-reset", a.line)) continue;
    out.push_back({path, a.line, "workspace-reset",
                   "member container '" + a.name +
                       "' is appended to but never clear()ed/assign()ed/"
                       "resize()d in this file — the workspace is reused "
                       "across executions, so stale elements survive into "
                       "the next run"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

namespace detail {

/// Shared per-file state so lint_tree lexes each file exactly once.
struct PreparedFile {
  std::string path;
  std::vector<Token> toks;
  std::vector<Allow> allows;
  std::vector<Finding> findings;  // allow-syntax findings from parsing
};

inline PreparedFile prepare(const std::string& path, std::string_view content) {
  PreparedFile f;
  f.path = path;
  f.toks = lex(content);
  f.allows = parse_allows(f.toks, path, f.findings);
  return f;
}

inline std::vector<Finding> run_file_rules(const PreparedFile& f) {
  std::vector<Finding> out = f.findings;
  auto append = [&out](std::vector<Finding> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(check_determinism(f.path, f.toks, f.allows));
  append(check_sinr_float(f.path, f.toks, f.allows));
  append(check_ensure_arg(f.path, f.toks, f.allows));
  append(check_pragma_once(f.path, f.toks, f.allows));
  append(check_include_hygiene(f.path, f.toks, f.allows));
  append(check_layering(f.path, f.toks, f.allows));
  append(check_fp_accumulate(f.path, f.toks, f.allows));
  append(check_lock_discipline(f.path, f.toks, f.allows));
  append(check_rng_flow(f.path, f.toks, f.allows));
  append(check_error_discipline(f.path, f.toks, f.allows));
  append(check_workspace_reset(f.path, f.toks, f.allows));
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Artifacts: everything the tree analyses need per file, derived purely from
// (path, content). Because artifacts are a pure function of the file bytes,
// the cache layer (fcrlint_cache.hpp) can persist them keyed by a content
// hash and a warm run never re-lexes an unchanged file. Cross-file findings
// (include cycles, the interprocedural model rules) are recomputed from the
// artifacts on every run — they depend on the whole tree, not one file.
// ---------------------------------------------------------------------------

/// One quoted include of a src/ file, as written (the text between quotes).
struct IncludeEdge {
  int line = 1;
  std::string inner;
};

struct FileArtifacts {
  std::string path;
  std::vector<Finding> findings;      ///< per-file rule findings, sorted
  std::vector<Allow> allows;
  std::vector<IncludeEdge> includes;  ///< quoted includes (src/ files only)
  bool has_model = false;
  model::FileModel model;             ///< populated for src/ files
};

/// Lexes one file and runs every per-file analysis: rule findings, allow
/// annotations, include edges, and the program-model extraction.
inline FileArtifacts prepare_artifacts(const std::string& path,
                                       std::string_view content) {
  detail::PreparedFile f = detail::prepare(path, content);
  FileArtifacts a;
  a.path = path;
  a.findings = detail::run_file_rules(f);
  if (detail::starts_with(path, "src/")) {
    for (const Token& t : f.toks) {
      if (t.kind == TokKind::kHeaderName && t.text.size() >= 2 &&
          t.text.front() == '"') {
        a.includes.push_back({t.line, t.text.substr(1, t.text.size() - 2)});
      }
    }
    a.model = model::extract(path, f.toks);
    a.has_model = true;
  }
  a.allows = std::move(f.allows);
  return a;
}

namespace detail {

/// Cross-file half of the layering rule: the src/ include graph must be
/// acyclic. Quoted includes are resolved src-relatively (bare names resolve
/// to the including file's directory); each back edge found by the DFS is
/// one finding at the offending #include.
inline std::vector<Finding> check_include_cycles(
    const std::vector<FileArtifacts>& files) {
  struct Edge {
    std::string target;
    int line = 1;
  };
  std::map<std::string, std::vector<Edge>> graph;
  std::map<std::string, const FileArtifacts*> by_path;
  for (const FileArtifacts& f : files) {
    if (!starts_with(f.path, "src/")) continue;
    by_path[f.path] = &f;
  }
  for (const auto& [path, file] : by_path) {
    std::vector<Edge>& edges = graph[path];
    for (const IncludeEdge& inc : file->includes) {
      std::string target;
      if (inc.inner.find('/') != std::string::npos) {
        target = "src/" + inc.inner;
      } else {
        const std::size_t dir_end = path.rfind('/');
        target = path.substr(0, dir_end + 1) + inc.inner;
      }
      if (by_path.count(target) != 0) edges.push_back({target, inc.line});
    }
  }

  std::vector<Finding> out;
  // 0 = white, 1 = on stack, 2 = done.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  // Recursive DFS via explicit lambda (the graph is tiny: src/ file count).
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    color[node] = 1;
    stack.push_back(node);
    for (const Edge& e : graph[node]) {
      const int c = color[e.target];
      if (c == 1) {
        // Back edge: the cycle is the stack suffix from e.target onwards.
        std::string cycle;
        bool in_cycle = false;
        for (const std::string& s : stack) {
          if (s == e.target) in_cycle = true;
          if (in_cycle) cycle += s + " -> ";
        }
        cycle += e.target;
        const FileArtifacts& f = *by_path[node];
        if (!allowed_on_line(f.allows, "layering", e.line)) {
          out.push_back({node, e.line, "layering",
                         "include cycle: " + cycle +
                             " — break the cycle or move the shared piece "
                             "into a lower layer"});
        }
      } else if (c == 0) {
        self(self, e.target);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [path, edges] : graph) {
    (void)edges;
    if (color[path] == 0) dfs(dfs, path);
  }
  return out;
}

}  // namespace detail

/// Runs every per-file rule on one file. `path` must be repo-relative with
/// '/' separators (e.g. "src/sinr/channel.cpp"). The interprocedural rules
/// need the whole tree and therefore run only in lint_tree/finalize_tree.
inline std::vector<Finding> lint_file(const std::string& path,
                                      std::string_view content) {
  return detail::run_file_rules(detail::prepare(path, content));
}

/// The tree verdict plus the lane-purity kernel certificates (the payload
/// of kernel_manifest.json).
struct TreeResult {
  std::vector<Finding> findings;
  std::vector<model::KernelRecord> kernels;
};

/// Combines per-file artifacts into the tree verdict: cached per-file
/// findings plus the cross-file analyses (include cycles, the seven
/// interprocedural model rules). Findings are sorted by (file, line, rule).
inline TreeResult finalize_tree_full(const std::vector<FileArtifacts>& files) {
  TreeResult out;
  for (const FileArtifacts& f : files) {
    out.findings.insert(out.findings.end(), f.findings.begin(),
                        f.findings.end());
  }
  const std::vector<Finding> cycles = detail::check_include_cycles(files);
  out.findings.insert(out.findings.end(), cycles.begin(), cycles.end());
  std::vector<model::TreeFile> tree;
  tree.reserve(files.size());
  for (const FileArtifacts& f : files) {
    if (!f.has_model) continue;
    tree.push_back({f.path, &f.model, &f.allows});
  }
  model::TreeAnalysis ta = model::analyze_tree(tree);
  out.findings.insert(out.findings.end(), ta.findings.begin(),
                      ta.findings.end());
  out.kernels = std::move(ta.kernels);
  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return out;
}

/// Findings-only wrapper around finalize_tree_full.
inline std::vector<Finding> finalize_tree(
    const std::vector<FileArtifacts>& files) {
  return finalize_tree_full(files).findings;
}

/// Runs the per-file rules on every input plus the cross-file analyses.
inline TreeResult lint_tree_full(const std::vector<FileInput>& files) {
  std::vector<FileArtifacts> artifacts;
  artifacts.reserve(files.size());
  for (const FileInput& f : files) {
    artifacts.push_back(prepare_artifacts(f.path, f.content));
  }
  return finalize_tree_full(artifacts);
}

/// Findings-only wrapper around lint_tree_full.
inline std::vector<Finding> lint_tree(const std::vector<FileInput>& files) {
  return lint_tree_full(files).findings;
}

}  // namespace fcrlint
