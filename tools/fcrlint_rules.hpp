// fcrlint — fadingcr's project-specific linter (rule engine).
//
// Generic static analyzers cannot enforce the invariants this repository's
// headline claims rest on (bit-identical serial/parallel results, double-only
// SINR arithmetic), so fcrlint checks them mechanically:
//
//   determinism      — wall-clock and platform entropy sources (std::rand,
//                      std::random_device, time(), *_clock::now(), ...) are
//                      banned in src/ outside src/util/rng.*; all randomness
//                      must flow through fcr::Rng so runs replay from a seed.
//   sinr-float       — `float` is banned under src/sinr/: SINR feasibility
//                      margins sit near the decodability threshold beta and
//                      single-precision rounding flips verdicts.
//   ensure-arg       — every public-API .cpp in src/ must validate arguments
//                      with FCR_ENSURE_ARG or carry an explicit, reasoned
//                      allow annotation.
//   pragma-once      — every header carries #pragma once.
//   include-hygiene  — no parent-relative ("../") includes, no <bits/...>,
//                      no deprecated C headers (<math.h> → <cmath>).
//   allow-syntax     — allow annotations must name a known rule and give a
//                      non-empty reason (suppressions are documented).
//
// Suppression: an allow annotation in a comment, written as the marker
// FCRLINT_ALLOW(ensure-arg): the reason the rule does not apply here
// (with the appropriate rule name). For the file-scoped ensure-arg and
// pragma-once rules the annotation may appear anywhere in the file; for
// line-scoped rules it must sit on the offending line or the line directly
// above it. Annotations inside string literals are ignored, and every
// occurrence of the marker in a comment must be well-formed.
//
// The engine is header-only and pure (path + content in, findings out) so
// tests/test_fcrlint.cpp can unit-test every rule against fixture inputs;
// tools/fcrlint.cpp adds the filesystem walk and CLI.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fcrlint {

struct Finding {
  std::string file;
  int line = 1;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

inline constexpr std::array<std::string_view, 6> kRuleNames = {
    "determinism",     "sinr-float",   "ensure-arg",
    "pragma-once",     "include-hygiene", "allow-syntax"};

inline bool is_known_rule(std::string_view rule) {
  return std::find(kRuleNames.begin(), kRuleNames.end(), rule) !=
         kRuleNames.end();
}

namespace detail {

inline bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace detail

/// Replaces the contents of comments (when `mask_comments`) and
/// string/character literals with spaces, preserving line structure, so
/// token scans cannot match inside them. Handles //, /*...*/, "...", '...',
/// and raw strings R"delim(...)delim".
inline std::string mask_literals(std::string_view src, bool mask_comments) {
  std::string out(src);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of an active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (mask_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (mask_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"' &&
                   (i == 0 || !detail::is_ident_char(src[i - 1]) ||
                    src[i - 1] == 'R')) {
          if (i > 0 && src[i - 1] == 'R' &&
              (i == 1 || !detail::is_ident_char(src[i - 2]))) {
            // Raw string: R"delim( ... )delim"
            std::size_t open = src.find('(', i + 1);
            if (open == std::string_view::npos) break;  // ill-formed; give up
            raw_delim = ")" + std::string(src.substr(i + 1, open - i - 1)) + "\"";
            for (std::size_t j = i + 1; j <= open; ++j) out[j] = ' ';
            i = open;
            state = State::kRaw;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && (i == 0 || !detail::is_ident_char(src[i - 1]))) {
          // Character literal (the ident-char guard skips digit separators
          // like 1'000'000).
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (mask_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (mask_comments) out[i] = out[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n' && mask_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Token-scan view: comments AND strings blanked.
inline std::string mask_comments_and_strings(std::string_view src) {
  return mask_literals(src, /*mask_comments=*/true);
}

/// Annotation-scan view: strings blanked, comments kept (allow annotations
/// live in comments; marker text inside string literals must not count).
inline std::string mask_strings(std::string_view src) {
  return mask_literals(src, /*mask_comments=*/false);
}

namespace detail {

inline int line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                         static_cast<std::ptrdiff_t>(pos), '\n'));
}

/// Finds the next whole-identifier occurrence of `token` at or after `from`.
inline std::size_t find_token(std::string_view text, std::string_view token,
                              std::size_t from = 0) {
  for (std::size_t pos = text.find(token, from); pos != std::string_view::npos;
       pos = text.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

/// True when `token` at `pos` is followed (ignoring whitespace) by `punct`.
inline bool followed_by(std::string_view text, std::size_t pos,
                        std::string_view token, char punct) {
  std::size_t i = pos + token.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  return i < text.size() && text[i] == punct;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

inline bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace detail

/// A parsed allow annotation (rule suppression with a documented reason).
struct Allow {
  int line = 1;
  std::string rule;
  std::string reason;
};

/// Extracts all allow annotations from the strings-masked content (see
/// mask_strings — comments are live, string literals are not); malformed
/// ones (unknown rule, missing reason) become allow-syntax findings.
inline std::vector<Allow> parse_allows(std::string_view raw,
                                       const std::string& file,
                                       std::vector<Finding>& out) {
  static constexpr std::string_view kMarker = "FCRLINT_ALLOW";
  std::vector<Allow> allows;
  for (std::size_t pos = raw.find(kMarker); pos != std::string_view::npos;
       pos = raw.find(kMarker, pos + kMarker.size())) {
    const int line = detail::line_of(raw, pos);
    std::size_t i = pos + kMarker.size();
    auto bad = [&](const char* why) {
      out.push_back({file, line, "allow-syntax",
                     std::string("malformed FCRLINT_ALLOW annotation: ") + why +
                         " — expected FCRLINT_ALLOW(<rule>): <reason>"});
    };
    if (i >= raw.size() || raw[i] != '(') {
      bad("missing '(<rule>)'");
      continue;
    }
    const std::size_t close = raw.find(')', i);
    const std::size_t eol = raw.find('\n', i);
    if (close == std::string_view::npos || (eol != std::string_view::npos && close > eol)) {
      bad("missing ')'");
      continue;
    }
    const std::string rule(raw.substr(i + 1, close - i - 1));
    if (!is_known_rule(rule)) {
      bad(("unknown rule '" + rule + "'").c_str());
      continue;
    }
    i = close + 1;
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
    if (i >= raw.size() || raw[i] != ':') {
      bad("missing ': <reason>'");
      continue;
    }
    ++i;
    const std::size_t end = raw.find('\n', i);
    std::string reason(raw.substr(i, end == std::string_view::npos ? end : end - i));
    const std::size_t first = reason.find_first_not_of(" \t");
    reason = first == std::string::npos ? std::string{} : reason.substr(first);
    if (reason.empty()) {
      bad("empty reason");
      continue;
    }
    allows.push_back({line, rule, reason});
  }
  return allows;
}

inline bool allowed_on_line(const std::vector<Allow>& allows,
                            std::string_view rule, int line) {
  return std::any_of(allows.begin(), allows.end(), [&](const Allow& a) {
    return a.rule == rule && (a.line == line || a.line == line - 1);
  });
}

inline bool allowed_anywhere(const std::vector<Allow>& allows,
                             std::string_view rule) {
  return std::any_of(allows.begin(), allows.end(),
                     [&](const Allow& a) { return a.rule == rule; });
}

// ---------------------------------------------------------------------------
// Rules. Each takes the repo-relative path (generic '/' separators), the
// masked content (comments/strings blanked), the raw content, and the parsed
// allows; each returns its findings.
// ---------------------------------------------------------------------------

/// determinism: entropy/wall-clock sources are banned in src/ outside
/// src/util/rng.* — randomness must come from fcr::Rng (seeded, splittable).
inline std::vector<Finding> check_determinism(const std::string& path,
                                              std::string_view masked,
                                              const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/") ||
      detail::starts_with(path, "src/util/rng.")) {
    return out;
  }
  struct Banned {
    std::string_view token;
    char must_follow;  // '\0' = token alone suffices
    std::string_view hint;
  };
  static constexpr Banned kBanned[] = {
      {"rand", '(', "use fcr::Rng instead of the C PRNG"},
      {"srand", '(', "seeding the C PRNG breaks replayability"},
      {"random_device", '\0', "platform entropy is not reproducible"},
      {"time", '(', "wall-clock input makes runs non-replayable"},
      {"clock", '(', "wall-clock input makes runs non-replayable"},
      {"gettimeofday", '(', "wall-clock input makes runs non-replayable"},
      {"clock_gettime", '(', "wall-clock input makes runs non-replayable"},
      {"now", '(', "std::chrono::*::now() makes runs non-replayable"},
  };
  for (const Banned& b : kBanned) {
    for (std::size_t pos = detail::find_token(masked, b.token);
         pos != std::string_view::npos;
         pos = detail::find_token(masked, b.token, pos + 1)) {
      if (b.must_follow != '\0' &&
          !detail::followed_by(masked, pos, b.token, b.must_follow)) {
        continue;
      }
      const int line = detail::line_of(masked, pos);
      if (allowed_on_line(allows, "determinism", line)) continue;
      out.push_back({path, line, "determinism",
                     "non-deterministic source '" + std::string(b.token) +
                         "' — " + std::string(b.hint) +
                         " (all randomness must flow through fcr::Rng)"});
    }
  }
  return out;
}

/// sinr-float: single-precision arithmetic is banned in SINR feasibility
/// math; margins near the beta threshold flip under float rounding.
inline std::vector<Finding> check_sinr_float(const std::string& path,
                                             std::string_view masked,
                                             const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/sinr/")) return out;
  for (std::size_t pos = detail::find_token(masked, "float");
       pos != std::string_view::npos;
       pos = detail::find_token(masked, "float", pos + 1)) {
    const int line = detail::line_of(masked, pos);
    if (allowed_on_line(allows, "sinr-float", line)) continue;
    out.push_back({path, line, "sinr-float",
                   "'float' in SINR math — use double; single-precision "
                   "rounding flips feasibility verdicts near beta"});
  }
  return out;
}

/// ensure-arg: public-API implementation files must validate their inputs.
inline std::vector<Finding> check_ensure_arg(const std::string& path,
                                             std::string_view masked,
                                             const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::starts_with(path, "src/") || !detail::ends_with(path, ".cpp")) {
    return out;
  }
  if (detail::find_token(masked, "FCR_ENSURE_ARG") != std::string_view::npos) {
    return out;
  }
  if (allowed_anywhere(allows, "ensure-arg")) return out;
  out.push_back({path, 1, "ensure-arg",
                 "no FCR_ENSURE_ARG argument validation in this public API "
                 "implementation — validate entry-point arguments or annotate "
                 "with FCRLINT_ALLOW(ensure-arg): <reason>"});
  return out;
}

/// pragma-once: every header must carry #pragma once.
inline std::vector<Finding> check_pragma_once(const std::string& path,
                                              std::string_view masked,
                                              const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  if (!detail::ends_with(path, ".hpp") && !detail::ends_with(path, ".h")) {
    return out;
  }
  std::size_t pos = 0;
  while (pos != std::string_view::npos) {
    const std::size_t hash = masked.find('#', pos);
    if (hash == std::string_view::npos) break;
    std::size_t i = hash + 1;
    while (i < masked.size() && (masked[i] == ' ' || masked[i] == '\t')) ++i;
    if (masked.compare(i, 6, "pragma") == 0) {
      std::size_t j = i + 6;
      while (j < masked.size() && (masked[j] == ' ' || masked[j] == '\t')) ++j;
      if (masked.compare(j, 4, "once") == 0) return out;  // found it
    }
    pos = hash + 1;
  }
  if (!allowed_anywhere(allows, "pragma-once")) {
    out.push_back({path, 1, "pragma-once",
                   "header is missing #pragma once"});
  }
  return out;
}

/// include-hygiene: no parent-relative includes, no <bits/...>, no
/// deprecated C headers.
inline std::vector<Finding> check_include_hygiene(
    const std::string& path, std::string_view masked, std::string_view raw,
    const std::vector<Allow>& allows) {
  std::vector<Finding> out;
  static constexpr std::string_view kDeprecatedC[] = {
      "assert.h", "ctype.h",  "errno.h",  "float.h",    "inttypes.h",
      "limits.h", "locale.h", "math.h",   "setjmp.h",   "signal.h",
      "stdarg.h", "stddef.h", "stdint.h", "stdio.h",    "stdlib.h",
      "string.h", "time.h",   "wchar.h"};
  std::size_t start = 0;
  int line = 0;
  while (start < masked.size()) {
    ++line;
    std::size_t end = masked.find('\n', start);
    if (end == std::string_view::npos) end = masked.size();
    std::string_view m = masked.substr(start, end - start);
    // The include path itself is a string/angle token; read it from raw.
    std::string_view r = raw.substr(start, end - start);
    start = end + 1;
    std::size_t i = m.find_first_not_of(" \t");
    if (i == std::string_view::npos || m[i] != '#') continue;
    ++i;
    while (i < m.size() && (m[i] == ' ' || m[i] == '\t')) ++i;
    if (m.compare(i, 7, "include") != 0) continue;
    if (allowed_on_line(allows, "include-hygiene", line)) continue;
    auto flag = [&](const std::string& msg) {
      out.push_back({path, line, "include-hygiene", msg});
    };
    if (r.find("\"../") != std::string_view::npos ||
        r.find("/../") != std::string_view::npos) {
      flag("parent-relative include — include project headers by their "
           "src/-relative path");
    }
    if (r.find("<bits/") != std::string_view::npos) {
      flag("<bits/...> is a libstdc++ internal — include the standard header");
    }
    for (const std::string_view dep : kDeprecatedC) {
      const std::string angled = "<" + std::string(dep) + ">";
      if (r.find(angled) != std::string_view::npos) {
        flag("deprecated C header " + angled + " — use <c" +
             std::string(dep.substr(0, dep.size() - 2)) + ">");
      }
    }
  }
  return out;
}

/// Runs every rule on one file. `path` must be repo-relative with '/'
/// separators (e.g. "src/sinr/channel.cpp").
inline std::vector<Finding> lint_file(const std::string& path,
                                      std::string_view content) {
  std::vector<Finding> out;
  const std::string masked = mask_comments_and_strings(content);
  const std::vector<Allow> allows = parse_allows(mask_strings(content), path, out);
  auto append = [&out](std::vector<Finding> f) {
    out.insert(out.end(), f.begin(), f.end());
  };
  append(check_determinism(path, masked, allows));
  append(check_sinr_float(path, masked, allows));
  append(check_ensure_arg(path, masked, allows));
  append(check_pragma_once(path, masked, allows));
  append(check_include_hygiene(path, masked, content, allows));
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

}  // namespace fcrlint
