// SARIF 2.1.0 output for fcrlint.
//
// Emits a minimal but schema-valid SARIF log: one run, the driver's rule
// catalogue (kRules), and one result per finding with a physical location
// (repo-relative URI + 1-based start line). GitHub's upload-sarif action
// turns these into inline PR annotations; CI validates the file against the
// published 2.1.0 schema before uploading.
//
// Header-only and pure (findings in, string out) so tests can check the
// serialization without touching the filesystem.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fcrlint_rules.hpp"

namespace fcrlint {

namespace sarifdetail {

/// JSON string escaping per RFC 8259: backslash, quote, and control
/// characters. fcrlint messages are ASCII, but escape defensively.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline int rule_index(std::string_view rule) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (kRules[i].id == rule) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sarifdetail

/// Serializes findings as a SARIF 2.1.0 log (pretty-printed, trailing
/// newline). `version_tag` names the tool version in the driver block.
inline std::string to_sarif(const std::vector<Finding>& findings,
                            std::string_view version_tag = "2.0") {
  using sarifdetail::json_escape;
  std::string s;
  s += "{\n";
  s += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  s += "  \"version\": \"2.1.0\",\n";
  s += "  \"runs\": [\n    {\n";
  s += "      \"tool\": {\n        \"driver\": {\n";
  s += "          \"name\": \"fcrlint\",\n";
  s += "          \"version\": \"" + std::string(version_tag) + "\",\n";
  s += "          \"informationUri\": "
       "\"https://github.com/fadingcr/fadingcr/blob/main/docs/ANALYSIS.md\",\n";
  s += "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    s += "            {\n";
    s += "              \"id\": \"" + std::string(kRules[i].id) + "\",\n";
    s += "              \"shortDescription\": { \"text\": \"" +
         json_escape(kRules[i].summary) + "\" },\n";
    s += "              \"defaultConfiguration\": { \"level\": \"error\" }\n";
    s += i + 1 < kRules.size() ? "            },\n" : "            }\n";
  }
  s += "          ]\n        }\n      },\n";
  s += "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    s += "        {\n";
    s += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
    const int idx = sarifdetail::rule_index(f.rule);
    if (idx >= 0) {
      s += "          \"ruleIndex\": " + std::to_string(idx) + ",\n";
    }
    s += "          \"level\": \"error\",\n";
    s += "          \"message\": { \"text\": \"" + json_escape(f.message) +
         "\" },\n";
    s += "          \"locations\": [\n            {\n";
    s += "              \"physicalLocation\": {\n";
    s += "                \"artifactLocation\": { \"uri\": \"" +
         json_escape(f.file) + "\" },\n";
    s += "                \"region\": { \"startLine\": " +
         std::to_string(f.line) + " }\n";
    s += "              }\n            }\n          ]\n";
    s += i + 1 < findings.size() ? "        },\n" : "        }\n";
  }
  s += "      ]\n    }\n  ]\n}\n";
  return s;
}

}  // namespace fcrlint
