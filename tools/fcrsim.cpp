// fcrsim — the everything CLI: compose any deployment x channel x algorithm
// from the library and run a trial batch, with optional CSV outputs for
// downstream plotting.
//
// Examples:
//   fcrsim --deployment uniform --n 256 --algorithm fading --trials 100
//   fcrsim --deployment chain --n 128 --span 1048576 --algorithm fading
//   fcrsim --deployment clusters --n 300 --algorithm decay --channel radio
//   fcrsim --deployment-file nodes.csv --algorithm fading --trace trace.csv
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "algorithms/registry.hpp"
#include "core/deployment_stats.hpp"
#include "core/fading_cr.hpp"
#include "core/knockout_forest.hpp"
#include "deploy/generators.hpp"
#include "deploy/io.hpp"
#include "ext/rayleigh.hpp"
#include "sim/campaign.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "sinr/validate.hpp"
#include "stats/bootstrap.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace fcr {
namespace {

DeploymentFactory make_deployment_factory(const CliParser& cli) {
  const std::string file = cli.get_string("deployment-file");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in.good()) {
      throw Error(ErrorCategory::kIo,
                  "cannot open deployment file '" + file + "'");
    }
    return fixed_deployment(read_deployment_csv(in));
  }
  const std::string kind = cli.get_string("deployment");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const double side = cli.get_double("side") > 0.0
                          ? cli.get_double("side")
                          : 2.0 * std::sqrt(static_cast<double>(n));
  if (kind == "uniform") {
    return [n, side](Rng& rng) {
      return uniform_square(n, side, rng).normalized();
    };
  }
  if (kind == "disk") {
    return [n, side](Rng& rng) {
      return uniform_disk(n, side / 2.0, rng).normalized();
    };
  }
  if (kind == "clusters") {
    const auto clusters = static_cast<std::size_t>(cli.get_int("clusters"));
    return [n, clusters, side](Rng& rng) {
      return thomas_clusters(n, clusters, side / 40.0, side, rng).normalized();
    };
  }
  if (kind == "chain") {
    const double span = cli.get_double("span");
    return [n, span](Rng& rng) {
      return exponential_chain(n, span, rng).normalized();
    };
  }
  if (kind == "ring") {
    return [n, side](Rng& rng) {
      return ring(n, side, 0.001, rng).normalized();
    };
  }
  if (kind == "multi-scale") {
    const auto levels = static_cast<std::size_t>(cli.get_int("levels"));
    return [levels, n](Rng& rng) {
      return multi_scale(levels, std::max<std::size_t>(2, n / levels), rng)
          .normalized();
    };
  }
  FCR_ENSURE_ARG(false, "unknown deployment kind: " << kind);
  return {};
}

ChannelFactory make_channel_factory(const CliParser& cli) {
  const std::string kind = cli.get_string("channel");
  const double alpha = cli.get_double("alpha");
  const double beta = cli.get_double("beta");
  const double noise = cli.get_double("noise");
  if (kind == "sinr") return sinr_channel_factory(alpha, beta, noise);
  if (kind == "rayleigh") {
    const double severity = cli.get_double("fading-severity");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    return [=](const Deployment& dep) -> std::unique_ptr<ChannelAdapter> {
      const SinrParams params =
          SinrParams::for_longest_link(alpha, beta, noise, dep.max_link());
      return std::make_unique<RayleighSinrAdapter>(params, severity,
                                                   Rng(seed ^ 0xFADEDFADEULL));
    };
  }
  if (kind == "radio") return radio_channel_factory(false);
  if (kind == "radio-cd") return radio_channel_factory(true);
  FCR_ENSURE_ARG(false, "unknown channel kind: " << kind);
  return {};
}

int run(int argc, const char* const* argv) {
  CliParser cli(
      "fcrsim: run any (deployment, channel, algorithm) combination from "
      "the fadingcr library and report completion statistics.");
  cli.add_flag("deployment", "uniform",
               "uniform | disk | clusters | chain | ring | multi-scale");
  cli.add_flag("deployment-file", "", "CSV file (x,y header) overriding --deployment");
  cli.add_flag("n", "128", "number of nodes");
  cli.add_flag("side", "0", "region side (0: auto 2*sqrt(n))");
  cli.add_flag("clusters", "8", "cluster count (clusters deployment)");
  cli.add_flag("span", "16384", "link ratio R (chain deployment)");
  cli.add_flag("levels", "8", "link classes (multi-scale deployment)");
  cli.add_flag("channel", "sinr", "sinr | rayleigh | radio | radio-cd");
  cli.add_flag("alpha", "3.0", "path-loss exponent");
  cli.add_flag("beta", "1.5", "SINR decoding threshold");
  cli.add_flag("noise", "1e-9", "ambient noise");
  cli.add_flag("fading-severity", "1.0", "Rayleigh severity (rayleigh channel)");
  cli.add_flag("algorithm", "fading",
               "registry key: fading | decay | decay-doubling | fast-decay | "
               "backoff | aloha | cd-leader | no-knockout");
  cli.add_flag("p", "0.2", "broadcast probability (constant-p algorithms)");
  cli.add_flag("trials", "100", "number of independent trials");
  cli.add_flag("seed", "20160725", "master seed");
  cli.add_flag("max-rounds", "1000000", "per-trial round budget");
  cli.add_flag("csv", "", "write per-trial results to this CSV file");
  cli.add_flag("threads", "1",
               "campaign worker threads (0 = hardware concurrency; any "
               "value but 1 selects campaign mode)");
  cli.add_flag("retries", "3",
               "campaign mode: attempts per trial before quarantine");
  cli.add_flag("checkpoint", "",
               "campaign mode: snapshot completed trials to this file "
               "(write-temp+rename, CRC-protected)");
  cli.add_flag("checkpoint-every", "16",
               "snapshot after this many new completions");
  cli.add_flag("resume", "false",
               "load --checkpoint before running; invalid or mismatched "
               "checkpoints fall back to a fresh campaign");
  cli.add_flag("round-budget", "0",
               "campaign watchdog: per-trial round budget (0 = off)");
  cli.add_flag("trace", "", "write the first trial's event trace to this CSV");
  cli.add_flag("deployment-out", "",
               "write the traced trial's deployment to this CSV "
               "(for fcrtrace --audit)");
  cli.add_flag("validate", "false",
               "audit the instance against the paper's model assumptions");
  cli.add_flag("describe", "false",
               "print the instance's structural statistics (link classes, "
               "nearest-neighbor distribution, density)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n(use --help for the flag list)\n";
    return 1;
  }
  if (cli.help_requested()) {
    cli.print_help(std::cout);
    return 0;
  }

  // Flag-combination sanity before any heavy lifting, so misuse dies with
  // a one-line config diagnosis instead of a stack of engine errors.
  if (cli.get_bool("resume") && cli.get_string("checkpoint").empty()) {
    throw Error(ErrorCategory::kConfig, "--resume requires --checkpoint <file>");
  }
  if (cli.get_int("retries") < 1) {
    throw Error(ErrorCategory::kConfig, "--retries must be at least 1");
  }
  if (cli.get_int("threads") < 0) {
    throw Error(ErrorCategory::kConfig, "--threads must be non-negative");
  }

  const DeploymentFactory deploy = make_deployment_factory(cli);
  const ChannelFactory channel = make_channel_factory(cli);
  const std::string algo_key = cli.get_string("algorithm");
  const double p = cli.get_double("p");
  const AlgorithmFactory algorithm = [algo_key, p](const Deployment& dep) {
    return make_algorithm(algo_key, dep.size(), p);
  };

  TrialConfig config;
  config.trials = static_cast<std::size_t>(cli.get_int("trials"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.engine.max_rounds =
      static_cast<std::uint64_t>(cli.get_int("max-rounds"));

  // Describe the instance once.
  {
    Rng probe_rng(config.seed);
    const Deployment probe = deploy(probe_rng);
    const auto ch = channel(probe);
    std::cout << "instance: n = " << probe.size() << ", R = "
              << probe.link_ratio() << " (" << probe.link_class_count()
              << " link classes), channel = " << ch->name()
              << ", algorithm = " << algorithm(probe)->name() << '\n';
    if (cli.get_bool("describe")) {
      std::cout << '\n' << to_string(describe(probe));
    }
    if (cli.get_bool("validate")) {
      const SinrParams audit_params = SinrParams::for_longest_link(
          cli.get_double("alpha"), cli.get_double("beta"),
          cli.get_double("noise"), probe.size() >= 2 ? probe.max_link() : 1.0);
      std::cout << "\nmodel audit (paper Section 2 assumptions):\n"
                << validate_model(probe, audit_params).to_string() << '\n';
    }
  }

  // Campaign mode (per-trial isolation, retry, checkpoint/resume) kicks in
  // whenever one of its knobs is used; the plain batch runner otherwise.
  const bool campaign_mode = !cli.get_string("checkpoint").empty() ||
                             cli.get_bool("resume") ||
                             cli.get_int("threads") != 1 ||
                             cli.get_int("round-budget") > 0;
  TrialSetResult result;
  if (campaign_mode) {
    CampaignConfig cc;
    cc.trial = config;
    cc.threads = static_cast<std::size_t>(cli.get_int("threads"));
    cc.retry.max_attempts = static_cast<std::size_t>(cli.get_int("retries"));
    cc.watchdog.round_budget =
        static_cast<std::uint64_t>(cli.get_int("round-budget"));
    cc.checkpoint.path = cli.get_string("checkpoint");
    cc.checkpoint.every =
        static_cast<std::size_t>(cli.get_int("checkpoint-every"));
    cc.checkpoint.resume = cli.get_bool("resume");
    std::ostringstream identity;
    identity << cli.get_string("deployment") << '/' << cli.get_string("channel")
             << '/' << algo_key << "/n=" << cli.get_int("n");
    cc.identity = identity.str();
    CampaignRunner runner(deploy, channel, algorithm, cc);
    const CampaignResult campaign = runner.run();
    result = campaign.result;
    if (campaign.restored > 0) {
      std::cout << "resumed: " << campaign.restored
                << " trial(s) restored from " << cc.checkpoint.path << '\n';
    }
    if (!campaign.checkpoint_rejected.empty()) {
      std::cout << "checkpoint rejected (" << campaign.checkpoint_rejected
                << "); starting fresh\n";
    }
    if (campaign.checkpoints_written > 0) {
      std::cout << "checkpoints written: " << campaign.checkpoints_written
                << '\n';
    }
    if (!campaign.failures.empty() || campaign.quarantined > 0) {
      std::cout << campaign.failure_report() << '\n';
    }
  } else {
    result = run_trials(deploy, channel, algorithm, config);
  }
  const BatchSummary s = result.summary();

  TablePrinter table({"metric", "value"});
  table.row({"trials", TablePrinter::fmt(static_cast<std::uint64_t>(result.trials))});
  table.row({"solved", TablePrinter::fmt(static_cast<std::uint64_t>(result.solved))});
  table.row({"solve rate", TablePrinter::fmt(result.solve_rate(), 4)});
  if (!result.rounds.empty()) {
    table.row({"median rounds", TablePrinter::fmt(s.median, 1)});
    table.row({"mean rounds", TablePrinter::fmt(s.mean, 2)});
    table.row({"p95 rounds", TablePrinter::fmt(s.p95, 1)});
    table.row({"max rounds", TablePrinter::fmt(s.max, 0)});
    Rng boot_rng(config.seed ^ 0xB007);
    const ConfidenceInterval ci =
        bootstrap_median_ci(to_doubles(result.rounds), boot_rng);
    std::ostringstream ci_str;
    ci_str << "[" << TablePrinter::fmt(ci.lo, 1) << ", "
           << TablePrinter::fmt(ci.hi, 1) << "]";
    table.row({"median 95% CI", ci_str.str()});
  }
  table.print(std::cout);

  if (const std::string csv_path = cli.get_string("csv"); !csv_path.empty()) {
    std::ofstream out(csv_path);
    FCR_ENSURE_ARG(out.good(), "cannot open CSV output: " << csv_path);
    CsvWriter csv(out, {"trial", "rounds"});
    for (std::size_t t = 0; t < result.rounds.size(); ++t) {
      csv.row({CsvWriter::num(static_cast<std::uint64_t>(t)),
               CsvWriter::num(result.rounds[t])});
    }
    std::cout << "wrote " << result.rounds.size() << " rows to " << csv_path
              << '\n';
  }

  if (const std::string trace_path = cli.get_string("trace");
      !trace_path.empty()) {
    Rng rng(config.seed);
    Rng deploy_rng = rng.split(0);
    const Deployment dep = deploy(deploy_rng);
    const auto ch = channel(dep);
    const auto algo = algorithm(dep);
    ExecutionTrace trace;
    EngineConfig ec = config.engine;
    run_execution(dep, *algo, *ch, ec, rng.split(1), trace.observer());
    std::ofstream out(trace_path);
    FCR_ENSURE_ARG(out.good(), "cannot open trace output: " << trace_path);
    trace.write_csv(out);
    std::cout << "wrote " << trace.rounds().size() << "-round trace to "
              << trace_path << '\n';
    if (const std::string dep_path = cli.get_string("deployment-out");
        !dep_path.empty()) {
      std::ofstream dep_out(dep_path);
      FCR_ENSURE_ARG(dep_out.good(),
                     "cannot open deployment output: " << dep_path);
      write_deployment_csv(dep, dep_out);
      std::cout << "wrote the traced deployment to " << dep_path << '\n';
    }
  }
  return 0;
}

}  // namespace
}  // namespace fcr

namespace {

const char* hint_for(fcr::ErrorCategory category) {
  switch (category) {
    case fcr::ErrorCategory::kConfig:
      return "use --help for the flag list";
    case fcr::ErrorCategory::kIo:
      return "check the path and permissions";
    case fcr::ErrorCategory::kCorrupt:
      return "delete the checkpoint file to start fresh";
    default:
      return "re-run with the same --seed to reproduce";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure exits with a one-line diagnosed error: the taxonomy
  // category (fcr::Error), plus an actionable hint.
  try {
    return fcr::run(argc, argv);
  } catch (const fcr::Error& e) {
    std::cerr << "fcrsim: " << e.what() << " (hint: " << hint_for(e.category())
              << ")\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "fcrsim: error[config]: " << e.what()
              << " (hint: " << hint_for(fcr::ErrorCategory::kConfig) << ")\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fcrsim: error[engine]: " << e.what() << '\n';
    return 1;
  }
}
