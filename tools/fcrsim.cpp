// fcrsim — the everything CLI: compose any deployment x channel x algorithm
// from the library and run a trial batch, with optional CSV outputs for
// downstream plotting.
//
// The composition flags are shared with fcrd through fabric::add_spec_flags
// (src/fabric/spec.hpp), and the factories are built by the same
// fabric::make_factories the worker fleet uses — one construction path, so
// a local run, a campaign, and a fabric-sharded campaign of the same spec
// are bit-identical by construction.
//
// Examples:
//   fcrsim --deployment uniform --n 256 --algorithm fading --trials 100
//   fcrsim --deployment chain --n 128 --span 1048576 --algorithm fading
//   fcrsim --deployment clusters --n 300 --algorithm decay --channel radio
//   fcrsim --deployment-file nodes.csv --algorithm fading --trace trace.csv
//   fcrsim --trials 60 --fabric-socket /tmp/fcr.sock   (+ fcrw workers)
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/deployment_stats.hpp"
#include "deploy/generators.hpp"
#include "deploy/io.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/spec.hpp"
#include "sim/campaign.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "sinr/validate.hpp"
#include "stats/bootstrap.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/table.hpp"

namespace fcr {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli(
      "fcrsim: run any (deployment, channel, algorithm) combination from "
      "the fadingcr library and report completion statistics.");
  fabric::add_spec_flags(cli);
  cli.add_flag("deployment-file", "", "CSV file (x,y header) overriding --deployment");
  cli.add_flag("csv", "", "write per-trial results to this CSV file");
  cli.add_flag("threads", "1",
               "campaign worker threads (0 = hardware concurrency; any "
               "value but 1 selects campaign mode)");
  cli.add_flag("checkpoint", "",
               "campaign mode: snapshot completed trials to this file "
               "(write-temp+rename, CRC-protected)");
  cli.add_flag("checkpoint-every", "16",
               "snapshot after this many new completions");
  cli.add_flag("resume", "false",
               "load --checkpoint before running; invalid or mismatched "
               "checkpoints fall back to a fresh campaign");
  cli.add_flag("fabric-socket", "",
               "campaign mode: shard trials over fcrw workers connected to "
               "this UNIX socket (degrades to local execution when no "
               "worker shows up)");
  cli.add_flag("fabric-lease-trials", "8",
               "fabric mode: trials per worker lease");
  cli.add_flag("trace", "", "write the first trial's event trace to this CSV");
  cli.add_flag("deployment-out", "",
               "write the traced trial's deployment to this CSV "
               "(for fcrtrace --audit)");
  cli.add_flag("validate", "false",
               "audit the instance against the paper's model assumptions");
  cli.add_flag("describe", "false",
               "print the instance's structural statistics (link classes, "
               "nearest-neighbor distribution, density)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n(use --help for the flag list)\n";
    return 1;
  }
  if (cli.help_requested()) {
    cli.print_help(std::cout);
    return 0;
  }

  // Flag-combination sanity before any heavy lifting, so misuse dies with
  // a one-line config diagnosis instead of a stack of engine errors.
  if (cli.get_bool("resume") && cli.get_string("checkpoint").empty()) {
    throw Error(ErrorCategory::kConfig, "--resume requires --checkpoint <file>");
  }
  if (cli.get_int("retries") < 1) {
    throw Error(ErrorCategory::kConfig, "--retries must be at least 1");
  }
  if (cli.get_int("threads") < 0) {
    throw Error(ErrorCategory::kConfig, "--threads must be non-negative");
  }
  const std::string fabric_socket = cli.get_string("fabric-socket");
  const std::string dep_file = cli.get_string("deployment-file");
  if (!fabric_socket.empty() && !dep_file.empty()) {
    throw Error(ErrorCategory::kConfig,
                "--fabric-socket cannot ship --deployment-file deployments "
                "to workers (the spec must be generative)");
  }

  const fabric::SweepSpec spec = fabric::spec_from_cli(cli);
  const fabric::Factories factories = fabric::make_factories(spec);
  DeploymentFactory deploy = factories.deploy;
  if (!dep_file.empty()) {
    std::ifstream in(dep_file);
    if (!in.good()) {
      throw Error(ErrorCategory::kIo,
                  "cannot open deployment file '" + dep_file + "'");
    }
    deploy = fixed_deployment(read_deployment_csv(in));
  }
  const ChannelFactory& channel = factories.channel;
  const AlgorithmFactory& algorithm = factories.algorithm;

  TrialConfig config;
  config.trials = spec.trials;
  config.seed = spec.seed;
  config.engine.max_rounds = spec.max_rounds;

  // Describe the instance once.
  {
    Rng probe_rng(config.seed);
    const Deployment probe = deploy(probe_rng);
    const auto ch = channel(probe);
    std::cout << "instance: n = " << probe.size() << ", R = "
              << probe.link_ratio() << " (" << probe.link_class_count()
              << " link classes), channel = " << ch->name()
              << ", algorithm = " << algorithm(probe)->name() << '\n';
    if (cli.get_bool("describe")) {
      std::cout << '\n' << to_string(describe(probe));
    }
    if (cli.get_bool("validate")) {
      const SinrParams audit_params = SinrParams::for_longest_link(
          spec.alpha, spec.beta, spec.noise,
          probe.size() >= 2 ? probe.max_link() : 1.0);
      std::cout << "\nmodel audit (paper Section 2 assumptions):\n"
                << validate_model(probe, audit_params).to_string() << '\n';
    }
  }

  // Campaign mode (per-trial isolation, retry, checkpoint/resume, fabric
  // sharding) kicks in whenever one of its knobs is used; the plain batch
  // runner otherwise.
  const bool campaign_mode = !cli.get_string("checkpoint").empty() ||
                             cli.get_bool("resume") ||
                             cli.get_int("threads") != 1 ||
                             cli.get_int("round-budget") > 0 ||
                             !fabric_socket.empty();
  TrialSetResult result;
  if (campaign_mode) {
    CampaignConfig cc = fabric::campaign_config(spec);
    cc.threads = static_cast<std::size_t>(cli.get_int("threads"));
    cc.checkpoint.path = cli.get_string("checkpoint");
    cc.checkpoint.every =
        static_cast<std::size_t>(cli.get_int("checkpoint-every"));
    cc.checkpoint.resume = cli.get_bool("resume");
    CampaignRunner runner(deploy, channel, algorithm, cc);
    CampaignResult campaign;
    if (!fabric_socket.empty()) {
      fabric::FabricConfig fc;
      fc.socket_path = fabric_socket;
      fc.spec = spec;
      fc.lease_trials =
          static_cast<std::size_t>(cli.get_int("fabric-lease-trials"));
      fabric::SocketBackend backend(fc);
      campaign = runner.run_with(backend);
      const auto& st = backend.stats();
      std::cout << "fabric: " << st.leases_granted << " lease(s) granted, "
                << st.results_merged << " merged, " << st.leases_expired
                << " expired, " << st.local_fallback_trials
                << " trial(s) run locally\n";
    } else {
      campaign = runner.run();
    }
    result = campaign.result;
    if (campaign.restored > 0) {
      std::cout << "resumed: " << campaign.restored
                << " trial(s) restored from " << cc.checkpoint.path << '\n';
    }
    if (!campaign.checkpoint_rejected.empty()) {
      std::cout << "checkpoint rejected (" << campaign.checkpoint_rejected
                << "); starting fresh\n";
    }
    if (campaign.checkpoints_written > 0) {
      std::cout << "checkpoints written: " << campaign.checkpoints_written
                << '\n';
    }
    if (!campaign.failures.empty() || campaign.quarantined > 0) {
      std::cout << campaign.failure_report() << '\n';
    }
  } else {
    result = run_trials(deploy, channel, algorithm, config);
  }
  const BatchSummary s = result.summary();

  TablePrinter table({"metric", "value"});
  table.row({"trials", TablePrinter::fmt(static_cast<std::uint64_t>(result.trials))});
  table.row({"solved", TablePrinter::fmt(static_cast<std::uint64_t>(result.solved))});
  table.row({"solve rate", TablePrinter::fmt(result.solve_rate(), 4)});
  if (!result.rounds.empty()) {
    table.row({"median rounds", TablePrinter::fmt(s.median, 1)});
    table.row({"mean rounds", TablePrinter::fmt(s.mean, 2)});
    table.row({"p95 rounds", TablePrinter::fmt(s.p95, 1)});
    table.row({"max rounds", TablePrinter::fmt(s.max, 0)});
    Rng boot_rng(config.seed ^ 0xB007);
    const ConfidenceInterval ci =
        bootstrap_median_ci(to_doubles(result.rounds), boot_rng);
    std::ostringstream ci_str;
    ci_str << "[" << TablePrinter::fmt(ci.lo, 1) << ", "
           << TablePrinter::fmt(ci.hi, 1) << "]";
    table.row({"median 95% CI", ci_str.str()});
  }
  table.print(std::cout);

  if (const std::string csv_path = cli.get_string("csv"); !csv_path.empty()) {
    std::ofstream out(csv_path);
    FCR_ENSURE_ARG(out.good(), "cannot open CSV output: " << csv_path);
    CsvWriter csv(out, {"trial", "rounds"});
    for (std::size_t t = 0; t < result.rounds.size(); ++t) {
      csv.row({CsvWriter::num(static_cast<std::uint64_t>(t)),
               CsvWriter::num(result.rounds[t])});
    }
    std::cout << "wrote " << result.rounds.size() << " rows to " << csv_path
              << '\n';
  }

  if (const std::string trace_path = cli.get_string("trace");
      !trace_path.empty()) {
    Rng rng(config.seed);
    Rng deploy_rng = rng.split(0);
    const Deployment dep = deploy(deploy_rng);
    const auto ch = channel(dep);
    const auto algo = algorithm(dep);
    ExecutionTrace trace;
    EngineConfig ec = config.engine;
    run_execution(dep, *algo, *ch, ec, rng.split(1), trace.observer());
    std::ofstream out(trace_path);
    FCR_ENSURE_ARG(out.good(), "cannot open trace output: " << trace_path);
    trace.write_csv(out);
    std::cout << "wrote " << trace.rounds().size() << "-round trace to "
              << trace_path << '\n';
    if (const std::string dep_path = cli.get_string("deployment-out");
        !dep_path.empty()) {
      std::ofstream dep_out(dep_path);
      FCR_ENSURE_ARG(dep_out.good(),
                     "cannot open deployment output: " << dep_path);
      write_deployment_csv(dep, dep_out);
      std::cout << "wrote the traced deployment to " << dep_path << '\n';
    }
  }
  return 0;
}

}  // namespace
}  // namespace fcr

namespace {

const char* hint_for(fcr::ErrorCategory category) {
  switch (category) {
    case fcr::ErrorCategory::kConfig:
      return "use --help for the flag list";
    case fcr::ErrorCategory::kIo:
      return "check the path and permissions";
    case fcr::ErrorCategory::kCorrupt:
      return "delete the checkpoint file to start fresh";
    default:
      return "re-run with the same --seed to reproduce";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure exits with a one-line diagnosed error: the taxonomy
  // category (fcr::Error), plus an actionable hint.
  try {
    fcr::failpoint::arm_from_env();
    return fcr::run(argc, argv);
  } catch (const fcr::Error& e) {
    std::cerr << "fcrsim: " << e.what() << " (hint: " << hint_for(e.category())
              << ")\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "fcrsim: error[config]: " << e.what()
              << " (hint: " << hint_for(fcr::ErrorCategory::kConfig) << ")\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fcrsim: error[engine]: " << e.what() << '\n';
    return 1;
  }
}
