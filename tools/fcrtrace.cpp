// fcrtrace — offline trace tooling: load an event trace (and its
// deployment), print statistics, and audit the trace against the SINR
// physics it claims to have run under.
//
//   fcrsim --n 64 --trace t.csv          # produce a trace (and keep nodes)
//   fcrtrace --trace t.csv --deployment d.csv --audit
#include <fstream>
#include <iostream>

#include "deploy/io.hpp"
#include "sim/audit.hpp"
#include "sim/trace.hpp"
#include "sinr/channel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace fcr {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("fcrtrace: statistics and SINR-consistency audit for "
                "recorded execution traces.");
  cli.add_flag("trace", "", "trace CSV (round,event,node,sender)");
  cli.add_flag("deployment", "", "deployment CSV (x,y) — required for --audit");
  cli.add_flag("audit", "false", "re-verify every event against the SINR model");
  cli.add_flag("strict", "true",
               "audit completeness too (disable for stochastic channels)");
  cli.add_flag("alpha", "3.0", "path-loss exponent used by the recording");
  cli.add_flag("beta", "1.5", "SINR threshold used by the recording");
  cli.add_flag("noise", "1e-9", "noise used by the recording");
  cli.add_flag("margin", "2.0", "single-hop power margin used by the recording");
  cli.add_flag("max-violations", "10", "violations to print before truncating");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n(use --help for the flag list)\n";
    return 1;
  }
  if (cli.help_requested()) {
    cli.print_help(std::cout);
    return 0;
  }

  const std::string trace_path = cli.get_string("trace");
  FCR_ENSURE_ARG(!trace_path.empty(), "--trace is required");
  std::ifstream trace_in(trace_path);
  FCR_ENSURE_ARG(trace_in.good(), "cannot open trace: " << trace_path);
  const ExecutionTrace trace = read_trace_csv(trace_in);

  TablePrinter stats({"metric", "value"});
  stats.row({"rounds", TablePrinter::fmt(
                           static_cast<std::uint64_t>(trace.rounds().size()))});
  stats.row({"transmissions",
             TablePrinter::fmt(
                 static_cast<std::uint64_t>(trace.total_transmissions()))});
  stats.row({"receptions",
             TablePrinter::fmt(
                 static_cast<std::uint64_t>(trace.total_receptions()))});
  stats.row({"first solo round",
             TablePrinter::fmt(trace.first_solo_round())});
  const auto per_node = trace.transmissions_per_node();
  std::size_t peak = 0;
  for (const std::size_t c : per_node) peak = std::max(peak, c);
  stats.row({"peak tx by one node",
             TablePrinter::fmt(static_cast<std::uint64_t>(peak))});
  stats.print(std::cout);

  if (!cli.get_bool("audit")) return 0;

  const std::string dep_path = cli.get_string("deployment");
  FCR_ENSURE_ARG(!dep_path.empty(), "--audit requires --deployment");
  std::ifstream dep_in(dep_path);
  FCR_ENSURE_ARG(dep_in.good(), "cannot open deployment: " << dep_path);
  const Deployment dep = read_deployment_csv(dep_in);

  const SinrParams params = SinrParams::for_longest_link(
      cli.get_double("alpha"), cli.get_double("beta"), cli.get_double("noise"),
      dep.size() >= 2 ? dep.max_link() : 1.0, cli.get_double("margin"));
  const SinrChannel channel(params);

  const AuditReport report =
      audit_trace(trace, dep, channel, cli.get_bool("strict"));
  std::cout << "\naudit: " << report.rounds_checked << " rounds, "
            << report.receptions_checked << " receptions, "
            << report.violations.size() << " violation(s)\n";
  const auto limit =
      static_cast<std::size_t>(cli.get_int("max-violations"));
  for (std::size_t i = 0; i < report.violations.size() && i < limit; ++i) {
    std::cout << "  round " << report.violations[i].round << ": "
              << report.violations[i].what << '\n';
  }
  if (report.violations.size() > limit) {
    std::cout << "  ... " << report.violations.size() - limit << " more\n";
  }
  return report.clean() ? 0 : 2;
}

}  // namespace
}  // namespace fcr

int main(int argc, char** argv) {
  try {
    return fcr::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fcrtrace: " << e.what() << '\n';
    return 1;
  }
}
