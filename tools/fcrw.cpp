// fcrw — a campaign fabric worker.
//
// Connects to a fcrd (or fcrsim --fabric-socket) coordinator, requests
// leases, computes them through the same run_shard every backend uses, and
// reports results until the coordinator says Shutdown. Safe to kill at any
// moment: the lease machinery recomputes whatever this process was holding,
// bit-identically.
//
//   fcrw --socket /tmp/fcr.sock --name fcrw#1
#include <iostream>
#include <sstream>

#include <unistd.h>

#include "fabric/worker.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace fcr {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli(
      "fcrw: campaign fabric worker — computes trial leases for a fcrd "
      "coordinator.");
  cli.add_flag("socket", "", "coordinator's UNIX socket path (required)");
  cli.add_flag("name", "", "worker identity for provenance (default fcrw#<pid>)");
  cli.add_flag("heartbeat-ms", "100", "lease renewal cadence");
  cli.add_flag("io-timeout-ms", "2000", "wait for grant/ack before retrying");
  cli.add_flag("connect-retry-ms", "100", "delay between connection attempts");
  cli.add_flag("connect-attempts", "50", "dials before giving up");
  cli.add_flag("max-resends", "8", "result re-sends before moving on");
  cli.add_flag("die-after-entries", "0",
               "test hook: crash (abandon work, exit nonzero) after this "
               "many completed trials (0 = never)");
  cli.add_flag("max-leases", "0", "exit after N leases (0 = until Shutdown)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n(use --help for the flag list)\n";
    return 1;
  }
  if (cli.help_requested()) {
    cli.print_help(std::cout);
    return 0;
  }
  if (cli.get_string("socket").empty()) {
    throw Error(ErrorCategory::kConfig, "--socket is required");
  }

  fabric::WorkerConfig wc;
  wc.socket_path = cli.get_string("socket");
  wc.name = cli.get_string("name");
  if (wc.name.empty()) {
    std::ostringstream name;
    name << "fcrw#" << ::getpid();
    wc.name = name.str();
  }
  wc.heartbeat_ms = static_cast<std::uint64_t>(cli.get_int("heartbeat-ms"));
  wc.io_timeout_ms = static_cast<std::uint64_t>(cli.get_int("io-timeout-ms"));
  wc.connect_retry_ms =
      static_cast<std::uint64_t>(cli.get_int("connect-retry-ms"));
  wc.connect_attempts =
      static_cast<std::size_t>(cli.get_int("connect-attempts"));
  wc.max_resends = static_cast<std::size_t>(cli.get_int("max-resends"));
  wc.die_after_entries =
      static_cast<std::size_t>(cli.get_int("die-after-entries"));
  wc.max_leases = static_cast<std::size_t>(cli.get_int("max-leases"));

  fabric::WorkerStats stats;
  const bool clean = fabric::run_worker(wc, &stats);
  std::cout << wc.name << ": " << stats.leases << " lease(s), "
            << stats.trials << " trial(s), " << stats.resends
            << " resend(s), " << stats.reconnects << " reconnect(s)"
            << (clean ? "" : " [abandoned]") << '\n';
  return clean ? 0 : 2;
}

}  // namespace
}  // namespace fcr

int main(int argc, char** argv) {
  try {
    fcr::failpoint::arm_from_env();
    return fcr::run(argc, argv);
  } catch (const fcr::Error& e) {
    std::cerr << "fcrw: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fcrw: error[engine]: " << e.what() << '\n';
    return 1;
  }
}
