# CTest script: --fix round-trip. Stage a tree with the two mechanically
# fixable defects (header missing #pragma once, deprecated C header
# includes), run `fcrlint --fix` twice, and require:
#   1. the first pass rewrites the files (pragma inserted after the doc
#      comment, <math.h> -> <cmath>, <stdlib.h> -> <cstdlib>);
#   2. the second pass is a no-op — byte-identical files (idempotency);
#   3. a plain lint of the fixed tree reports zero findings.
#
# Expected -D definitions: FCRLINT (binary), WORKDIR.
if(NOT FCRLINT OR NOT WORKDIR)
  message(FATAL_ERROR "fix_check.cmake needs -DFCRLINT, -DWORKDIR")
endif()

set(stage "${WORKDIR}/fix_stage")
file(REMOVE_RECURSE "${stage}")
file(MAKE_DIRECTORY "${stage}/src/util")

# Header: leading doc comment, no pragma, deprecated C include. The fix must
# insert the pragma AFTER the comment block and before the include.
file(WRITE "${stage}/src/util/fixme.hpp"
"// doc comment block that must stay first
// (the pragma goes after it)
#include <math.h>

inline double fixme_twice(double x) { return 2.0 * std::sqrt(x); }
")

# Implementation file: deprecated C headers only (no pragma rule for .cpp).
file(WRITE "${stage}/src/util/fixme.cpp"
"// FCRLINT_ALLOW(ensure-arg): fixture exercises only the include rewrite
#include \"util/fixme.hpp\"
#include <stdlib.h>
#include <string.h>

int fixme_len(const char* s) { return static_cast<int>(std::strlen(s)); }
")

# An FCRLINT_ALLOW'd deprecated include must survive --fix untouched: the
# fix engine honours suppressions exactly like the reporting rule does.
file(WRITE "${stage}/src/util/keep.cpp"
"// FCRLINT_ALLOW(ensure-arg): fixture
// FCRLINT_ALLOW(include-hygiene): exercising that --fix honours allows
#include <time.h>

int keep_zero() { return 0; }
")

execute_process(
  COMMAND "${FCRLINT}" --root "${stage}" --quiet --fix src
  RESULT_VARIABLE fix1_rc
  OUTPUT_VARIABLE fix1_out)
# Exit 0 expected: after fixing, the staged tree lints clean.
if(NOT fix1_rc EQUAL 0)
  message(FATAL_ERROR "first --fix pass exited ${fix1_rc}:\n${fix1_out}")
endif()
if(NOT fix1_out MATCHES "fixed src/util/fixme.hpp")
  message(FATAL_ERROR "first pass did not report fixing fixme.hpp:\n${fix1_out}")
endif()

file(READ "${stage}/src/util/fixme.hpp" hpp_after)
file(READ "${stage}/src/util/fixme.cpp" cpp_after)
file(READ "${stage}/src/util/keep.cpp" keep_after)
if(NOT hpp_after MATCHES "the pragma goes after it.\n#pragma once\n#include <cmath>")
  message(FATAL_ERROR "fixme.hpp not fixed as expected:\n${hpp_after}")
endif()
if(hpp_after MATCHES "math\\.h")
  message(FATAL_ERROR "fixme.hpp still includes <math.h>:\n${hpp_after}")
endif()
if(NOT cpp_after MATCHES "<cstdlib>" OR NOT cpp_after MATCHES "<cstring>")
  message(FATAL_ERROR "fixme.cpp includes not rewritten:\n${cpp_after}")
endif()
if(NOT keep_after MATCHES "<time\\.h>")
  message(FATAL_ERROR "--fix rewrote an FCRLINT_ALLOW'd include:\n${keep_after}")
endif()

# Second pass: must not touch anything.
execute_process(
  COMMAND "${FCRLINT}" --root "${stage}" --quiet --fix src
  RESULT_VARIABLE fix2_rc
  OUTPUT_VARIABLE fix2_out)
if(NOT fix2_rc EQUAL 0)
  message(FATAL_ERROR "second --fix pass exited ${fix2_rc}:\n${fix2_out}")
endif()
if(fix2_out MATCHES "fixed ")
  message(FATAL_ERROR "--fix is not idempotent:\n${fix2_out}")
endif()
file(READ "${stage}/src/util/fixme.hpp" hpp_again)
file(READ "${stage}/src/util/fixme.cpp" cpp_again)
if(NOT hpp_after STREQUAL hpp_again OR NOT cpp_after STREQUAL cpp_again)
  message(FATAL_ERROR "second --fix pass changed file contents")
endif()

# Fixed tree lints clean without --fix.
execute_process(
  COMMAND "${FCRLINT}" --root "${stage}" --quiet src
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "fixed tree still has findings:\n${lint_out}")
endif()

message(STATUS "fix round-trip OK: idempotent, allows honoured, tree clean")
