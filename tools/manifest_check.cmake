# Kernel-manifest contract: a whole-tree fcrlint run with --kernel-manifest
# must certify every shipped columnar kernel. Validates the emitted JSON
# structurally — schema tag, one entry per registry algorithm with a
# columnar port, no impure or SIMD-ineligible kernels, bounded per-lane
# draw intervals — and cross-checks the engine's dispatch allowlist
# (src/sim/kernel_certificates.hpp): the set of kernels the SIMD route
# accepts must equal the set fcrlint certifies, so a kernel losing its
# purity certificate cannot stay routed to the lane engine.
# Run under ctest as fcrlint_kernel_manifest.
#
# Inputs: -DFCRLINT=<binary> -DSOURCE_DIR=<repo root> -DWORKDIR=<scratch>

function(fail msg)
  message(FATAL_ERROR "fcrlint_kernel_manifest: ${msg}")
endfunction()

set(manifest ${WORKDIR}/kernel_manifest.json)
execute_process(
  COMMAND ${FCRLINT} --root ${SOURCE_DIR} --kernel-manifest ${manifest} src
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  fail("tree run exited ${rc}:\n${out}${err}")
endif()
if(NOT EXISTS ${manifest})
  fail("--kernel-manifest did not write ${manifest}")
endif()
file(READ ${manifest} json)

string(FIND "${json}" "\"schema\": \"fcrlint-kernel-manifest/1\"" pos)
if(pos EQUAL -1)
  fail("schema tag missing from manifest:\n${json}")
endif()

# Every columnar kernel in the registry appears, certified pure.
set(registry_kernels
    fcr::BinaryExponentialBackoff::columnar_decide
    fcr::DecayDoubling::columnar_decide
    fcr::DecayKnownN::columnar_decide
    fcr::FadingContentionResolution::columnar_decide
    fcr::FastDecay::columnar_decide
    fcr::NoKnockoutControl::columnar_decide
    fcr::SiftWindow::columnar_decide
    fcr::SlottedAloha::columnar_decide)
foreach(kernel IN LISTS registry_kernels)
  string(FIND "${json}" "\"${kernel}\"" pos)
  if(pos EQUAL -1)
    fail("kernel ${kernel} missing from manifest")
  endif()
endforeach()

string(FIND "${json}" "\"pure\": false" pos)
if(NOT pos EQUAL -1)
  fail("manifest contains a decertified kernel:\n${json}")
endif()
string(FIND "${json}" "\"simd_eligible\": false" pos)
if(NOT pos EQUAL -1)
  fail("manifest contains a SIMD-ineligible kernel:\n${json}")
endif()
string(REGEX MATCHALL "\"pure\": true" pure_tags "${json}")
list(LENGTH pure_tags pure_count)
if(NOT pure_count EQUAL 8)
  fail("expected 8 pure kernels, found ${pure_count}")
endif()
string(REGEX MATCHALL "\"simd_eligible\": true" simd_tags "${json}")
list(LENGTH simd_tags simd_count)
if(NOT simd_count EQUAL 8)
  fail("expected 8 simd_eligible kernels, found ${simd_count}")
endif()

# Dispatcher agreement: the allowlist the engine compiles in must be
# exactly the manifest's certified kernel set.
set(allowlist ${SOURCE_DIR}/src/sim/kernel_certificates.hpp)
if(NOT EXISTS ${allowlist})
  fail("dispatch allowlist ${allowlist} missing")
endif()
file(READ ${allowlist} allowlist_src)
string(REGEX MATCHALL "\"(fcr::[A-Za-z0-9_:]+)\"" allow_quoted
       "${allowlist_src}")
set(allow_names "")
foreach(q IN LISTS allow_quoted)
  string(REGEX REPLACE "\"" "" q "${q}")
  list(APPEND allow_names "${q}")
endforeach()
list(REMOVE_DUPLICATES allow_names)
list(LENGTH allow_names allow_count)
if(NOT allow_count EQUAL 8)
  fail("expected 8 allowlisted kernels in kernel_certificates.hpp, found "
       "${allow_count}: ${allow_names}")
endif()
string(REGEX MATCHALL "\"kernel\": \"([^\"]+)\"" manifest_entries "${json}")
set(manifest_names "")
foreach(entry IN LISTS manifest_entries)
  string(REGEX REPLACE "\"kernel\": \"([^\"]+)\"" "\\1" name "${entry}")
  list(APPEND manifest_names "${name}")
endforeach()
foreach(name IN LISTS allow_names)
  list(FIND manifest_names "${name}" idx)
  if(idx EQUAL -1)
    fail("allowlisted kernel ${name} is not in the fcrlint manifest — "
         "remove it from kernel_certificates.hpp or restore its purity")
  endif()
endforeach()
foreach(name IN LISTS manifest_names)
  list(FIND allow_names "${name}" idx)
  if(idx EQUAL -1)
    fail("certified kernel ${name} is missing from "
         "kernel_certificates.hpp — the SIMD route would skip it")
  endif()
endforeach()
