# Kernel-manifest contract: a whole-tree fcrlint run with --kernel-manifest
# must certify every shipped columnar kernel. Validates the emitted JSON
# structurally — schema tag, one entry per registry algorithm with a
# columnar port, no impure kernels, and bounded per-lane draw intervals.
# Run under ctest as fcrlint_kernel_manifest.
#
# Inputs: -DFCRLINT=<binary> -DSOURCE_DIR=<repo root> -DWORKDIR=<scratch>

function(fail msg)
  message(FATAL_ERROR "fcrlint_kernel_manifest: ${msg}")
endfunction()

set(manifest ${WORKDIR}/kernel_manifest.json)
execute_process(
  COMMAND ${FCRLINT} --root ${SOURCE_DIR} --kernel-manifest ${manifest} src
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  fail("tree run exited ${rc}:\n${out}${err}")
endif()
if(NOT EXISTS ${manifest})
  fail("--kernel-manifest did not write ${manifest}")
endif()
file(READ ${manifest} json)

string(FIND "${json}" "\"schema\": \"fcrlint-kernel-manifest/1\"" pos)
if(pos EQUAL -1)
  fail("schema tag missing from manifest:\n${json}")
endif()

# Every columnar kernel in the registry appears, certified pure.
foreach(kernel
    fcr::SlottedAloha::columnar_decide
    fcr::NoKnockoutControl::columnar_decide
    fcr::DecayKnownN::columnar_decide
    fcr::DecayDoubling::columnar_decide
    fcr::FastDecay::columnar_decide
    fcr::BinaryExponentialBackoff::columnar_decide
    fcr::FadingContentionResolution::columnar_decide)
  string(FIND "${json}" "\"${kernel}\"" pos)
  if(pos EQUAL -1)
    fail("kernel ${kernel} missing from manifest")
  endif()
endforeach()

string(FIND "${json}" "\"pure\": false" pos)
if(NOT pos EQUAL -1)
  fail("manifest contains a decertified kernel:\n${json}")
endif()
string(REGEX MATCHALL "\"pure\": true" pure_tags "${json}")
list(LENGTH pure_tags pure_count)
if(NOT pure_count EQUAL 7)
  fail("expected 7 pure kernels, found ${pure_count}")
endif()
