# CTest script: run fcrlint in --sarif mode over the repo's tests/fcrlint
# fixture directory (which deliberately contains findings) and check that
# the emitted log is well-formed SARIF 2.1.0.
#
# The structural check runs through python3's json module when available:
# it verifies the schema URI, version, driver rule catalogue, and that every
# result carries a ruleId known to the driver plus a physical location. The
# authoritative schema validation (check-jsonschema against the published
# sarif-2.1.0 schema) runs in CI, where the tool can be installed; this test
# keeps a local guard so a malformed emitter fails fast everywhere.
#
# Expected -D definitions: FCRLINT (binary), SOURCE_DIR, WORKDIR.
if(NOT FCRLINT OR NOT SOURCE_DIR OR NOT WORKDIR)
  message(FATAL_ERROR "sarif_check.cmake needs -DFCRLINT, -DSOURCE_DIR, -DWORKDIR")
endif()

set(sarif_file "${WORKDIR}/fcrlint_check.sarif")
file(REMOVE "${sarif_file}")

# The fixture walk lints tests/fcrlint itself; .txt fixtures are not scanned,
# so this run is clean — what matters is that the SARIF envelope (catalogue,
# empty results array) is still emitted and valid. Then a second run over a
# staged copy with a real extension produces findings to serialize.
set(staged "${WORKDIR}/sarif_stage/src/sim")
file(REMOVE_RECURSE "${WORKDIR}/sarif_stage")
file(MAKE_DIRECTORY "${staged}")
file(READ "${SOURCE_DIR}/tests/fcrlint/bad_determinism.cpp.txt" bad_src)
file(WRITE "${staged}/bad_determinism.cpp" "${bad_src}")

execute_process(
  COMMAND "${FCRLINT}" --root "${WORKDIR}/sarif_stage" --quiet
          --sarif "${sarif_file}" src
  RESULT_VARIABLE lint_rc)
# Findings are expected (exit 1). Anything else is a harness failure.
if(NOT lint_rc EQUAL 1)
  message(FATAL_ERROR "fcrlint over the staged fixture exited ${lint_rc}, expected 1")
endif()
if(NOT EXISTS "${sarif_file}")
  message(FATAL_ERROR "fcrlint --sarif did not write ${sarif_file}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(NOT PYTHON3)
  message(STATUS "python3 not found; checked only that the SARIF file exists")
  return()
endif()

execute_process(
  COMMAND "${PYTHON3}" -c "
import json, sys
with open(sys.argv[1], encoding='utf-8') as f:
    doc = json.load(f)
assert doc['version'] == '2.1.0', doc['version']
assert 'sarif-2.1.0' in doc['\$schema'], doc['\$schema']
run = doc['runs'][0]
driver = run['tool']['driver']
assert driver['name'] == 'fcrlint'
rule_ids = [r['id'] for r in driver['rules']]
assert len(rule_ids) == len(set(rule_ids)) and len(rule_ids) >= 10, rule_ids
results = run['results']
assert results, 'staged fixture must produce findings'
for r in results:
    assert r['ruleId'] in rule_ids, r['ruleId']
    assert r['ruleIndex'] == rule_ids.index(r['ruleId'])
    loc = r['locations'][0]['physicalLocation']
    assert loc['artifactLocation']['uri']
    assert loc['region']['startLine'] >= 1
    assert r['message']['text']
print('sarif structure OK:', len(results), 'result(s),', len(rule_ids), 'rule(s)')
" "${sarif_file}"
  RESULT_VARIABLE py_rc)
if(NOT py_rc EQUAL 0)
  message(FATAL_ERROR "SARIF structural validation failed")
endif()
