# CTest driver: fcrsim records a trace + deployment; fcrtrace must audit it
# clean (exit code 0).
execute_process(
  COMMAND ${FCRSIM} --n 32 --trials 1
          --trace ${WORKDIR}/rt_trace.csv
          --deployment-out ${WORKDIR}/rt_dep.csv
  RESULT_VARIABLE sim_result)
if(NOT sim_result EQUAL 0)
  message(FATAL_ERROR "fcrsim failed: ${sim_result}")
endif()

execute_process(
  COMMAND ${FCRTRACE} --trace ${WORKDIR}/rt_trace.csv
          --deployment ${WORKDIR}/rt_dep.csv --audit
  RESULT_VARIABLE trace_result)
if(NOT trace_result EQUAL 0)
  message(FATAL_ERROR "fcrtrace audit failed: ${trace_result}")
endif()
